//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Storage is `BTreeMap`-backed on purpose: iteration order is the sorted
//! key order, so the canonical snapshot is byte-stable without a separate
//! sort pass and no randomized hasher ever touches the data (the lint's
//! no-default-hashmap rule covers this crate).

use crate::canonical::CanonicalWriter;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default latency bucket upper bounds, in integer nanoseconds:
/// 1/2/5-per-decade from 1 ms to 10 s. Observations above the last bound
/// land in the overflow bucket.
pub const LATENCY_BOUNDS_NS: [u64; 13] = [
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// A fixed-bucket integer histogram. `buckets[i]` counts observations
/// `<= bounds[i]` (and greater than the previous bound); `overflow`
/// counts observations above the last bound. All units are integers —
/// nanoseconds for latencies — so snapshots are exactly reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: Arc::new(bounds.to_vec()),
            buckets: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// A histogram with the default latency bounds
    /// ([`LATENCY_BOUNDS_NS`]).
    pub fn latency_default() -> Histogram {
        Histogram::new(&LATENCY_BOUNDS_NS)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        match self.bounds.partition_point(|&b| b < value) {
            i if i < self.buckets.len() => self.buckets[i] += 1,
            _ => self.overflow += 1,
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, aligned with [`Histogram::bounds`].
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Add another histogram's observations into this one. Returns false
    /// (and leaves `self` unchanged) when the bucket bounds differ.
    pub fn merge_from(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        true
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
}

/// A clonable, thread-safe metrics registry. Clones share storage, so a
/// handle can be passed to every layer of the stack and merged snapshots
/// read from any of them.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut RegistryInner) -> R) -> R {
        // A panic while holding this lock poisons only bookkeeping;
        // recover the data rather than propagating the poison.
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Add `delta` to a named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|i| *i.counters.entry(name.to_string()).or_insert(0) += delta);
    }

    /// Current value of a counter (zero when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|i| i.counters.get(name).copied().unwrap_or(0))
    }

    /// Set a named gauge.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.with(|i| {
            i.gauges.insert(name.to_string(), value);
        });
    }

    /// Current value of a gauge (zero when never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.with(|i| i.gauges.get(name).copied().unwrap_or(0))
    }

    /// Record an observation into a named histogram with the default
    /// latency buckets.
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, value, &LATENCY_BOUNDS_NS);
    }

    /// Record an observation into a named histogram, creating it with the
    /// given bounds on first use (later calls reuse the existing bounds).
    pub fn observe_with(&self, name: &str, value: u64, bounds: &[u64]) {
        self.with(|i| {
            i.hists
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value)
        });
    }

    /// A copy of a named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with(|i| i.hists.get(name).cloned())
    }

    /// Merge another registry into this one: counters and histogram
    /// buckets add, gauges take the other registry's value.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        // Snapshot `other` first so self/other aliasing the same storage
        // cannot deadlock (merging a registry into itself doubles
        // counters, which callers have no reason to do but must not hang).
        let (counters, gauges, hists) =
            other.with(|o| (o.counters.clone(), o.gauges.clone(), o.hists.clone()));
        self.with(|i| {
            for (k, v) in counters {
                *i.counters.entry(k).or_insert(0) += v;
            }
            for (k, v) in gauges {
                i.gauges.insert(k, v);
            }
            for (k, h) in hists {
                match i.hists.get_mut(&k) {
                    Some(mine) => {
                        mine.merge_from(&h);
                    }
                    None => {
                        i.hists.insert(k, h);
                    }
                }
            }
        });
    }

    /// The canonical metrics snapshot: sorted keys, integer units, one
    /// metric per line. Two runs that recorded the same values produce
    /// byte-identical snapshots — the determinism tests diff this.
    ///
    /// ```text
    /// counter cache.exact.hits 12
    /// gauge qoe.accuracy_ppm 940000
    /// hist qoe.latency_ns count=9 sum=81000000 buckets=0,3,6,...,0 overflow=0
    /// ```
    pub fn canonical(&self) -> String {
        self.with(|i| {
            let mut w = CanonicalWriter::new();
            for (name, v) in &i.counters {
                w.word("counter").word(name).word(&v.to_string()).end_line();
            }
            for (name, v) in &i.gauges {
                w.word("gauge").word(name).word(&v.to_string()).end_line();
            }
            for (name, h) in &i.hists {
                let buckets: Vec<String> = h.buckets().iter().map(|b| b.to_string()).collect();
                w.word("hist")
                    .word(name)
                    .field("count", h.count())
                    .field("sum", h.sum())
                    .field("buckets", buckets.join(","))
                    .field("overflow", h.overflow())
                    .end_line();
            }
            w.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[10, 20, 50]);
        // Exactly on a bound lands in that bound's bucket…
        h.observe(10);
        // …one above it spills into the next…
        h.observe(11);
        h.observe(20);
        // …zero goes in the first bucket, and above-last is overflow.
        h.observe(0);
        h.observe(51);
        assert_eq!(h.buckets(), &[2, 2, 0]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10 + 11 + 20 + 51);
    }

    #[test]
    fn histogram_default_latency_bounds_cover_sim_scales() {
        let mut h = Histogram::latency_default();
        h.observe(999_999); // just under 1 ms → first bucket
        h.observe(1_000_000); // exactly 1 ms → first bucket (inclusive)
        h.observe(10_000_000_000); // exactly 10 s → last bucket
        h.observe(10_000_000_001); // above → overflow
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(*h.buckets().last().unwrap(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_merge_requires_matching_bounds() {
        let mut a = Histogram::new(&[10, 20]);
        let mut b = Histogram::new(&[10, 20]);
        a.observe(5);
        b.observe(15);
        b.observe(100);
        assert!(a.merge_from(&b));
        assert_eq!(a.buckets(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
        let c = Histogram::new(&[1, 2, 3]);
        assert!(!a.merge_from(&c), "mismatched bounds must refuse to merge");
        assert_eq!(a.count(), 3, "refused merge must not change counts");
    }

    #[test]
    fn registry_merge_adds_counters_and_buckets() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter_add("x.hits", 2);
        b.counter_add("x.hits", 3);
        b.counter_add("x.misses", 1);
        a.gauge_set("g", 1);
        b.gauge_set("g", 9);
        a.observe_with("lat", 5, &[10, 20]);
        b.observe_with("lat", 15, &[10, 20]);
        b.observe_with("only_b", 1, &[10]);
        a.merge_from(&b);
        assert_eq!(a.counter("x.hits"), 5);
        assert_eq!(a.counter("x.misses"), 1);
        assert_eq!(a.gauge("g"), 9, "gauges take the merged-in value");
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets(), &[1, 1]);
        assert_eq!(a.histogram("only_b").unwrap().count(), 1);
        // `b` is untouched by the merge.
        assert_eq!(b.counter("x.hits"), 3);
    }

    #[test]
    fn canonical_snapshot_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.gauge_set("mid", -3);
        r.observe_with("lat", 7, &[10, 20]);
        let snap = r.canonical();
        let a = snap.find("a.first").unwrap();
        let z = snap.find("z.last").unwrap();
        assert!(a < z, "counters must be key-sorted:\n{snap}");
        assert!(snap.contains("gauge mid -3"));
        assert!(snap.contains("hist lat count=1 sum=7 buckets=1,0 overflow=0"));
        assert_eq!(snap, r.canonical(), "snapshot must be reproducible");
    }

    #[test]
    fn clones_share_storage() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter_add("n", 1);
        r2.counter_add("n", 1);
        assert_eq!(r.counter("n"), 2);
    }
}

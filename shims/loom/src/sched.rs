//! The cooperative scheduler behind [`crate::model`].
//!
//! Exactly one entity is ever executing: either the controller (the
//! thread that called [`crate::model`]) or one task (a real OS thread
//! running model code). Hand-off happens through one mutex + condvar
//! pair: a task parks at each synchronization point after declaring the
//! operation it is about to perform, the controller picks the next task
//! among those whose declared operation can proceed, and the chosen task
//! applies its operation's effect on the model-level resource table
//! before running on to its next point.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Sentinel panic payload used to unwind parked tasks when a schedule is
/// torn down early (assertion failure in a sibling task, deadlock, …).
pub(crate) struct AbortRun;

/// A synchronization operation a task declares before performing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Blocking mutex acquire: schedulable only while the mutex is free.
    MutexLock(usize),
    /// Non-blocking acquire: always schedulable, may fail.
    MutexTryLock(usize),
    /// Mutex release: always schedulable.
    MutexUnlock(usize),
    /// Shared rwlock acquire: schedulable while no writer holds it.
    RwRead(usize),
    /// Exclusive rwlock acquire: schedulable while nobody holds it.
    RwWrite(usize),
    /// Shared release.
    RwUnlockRead(usize),
    /// Exclusive release.
    RwUnlockWrite(usize),
    /// An atomic memory operation (load/store/rmw): always schedulable.
    Atomic,
    /// Thread spawn: always schedulable.
    Spawn,
    /// Join on another task: schedulable once that task finished.
    Join(usize),
}

/// Model-level state of one lock.
#[derive(Debug)]
enum Resource {
    Mutex { held: bool },
    Rw { readers: usize, writer: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Finished,
}

struct Task {
    status: Status,
    /// The operation this task is parked on (`None` for a task that was
    /// spawned but has not yet reached its first synchronization point).
    pending: Option<Op>,
}

/// One controller choice: which schedulable task ran, out of how many.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    pub(crate) chosen: usize,
    pub(crate) alternatives: usize,
}

/// Everything a finished schedule reports back to the explorer.
pub(crate) struct RunOutcome {
    pub(crate) decisions: Vec<Decision>,
    pub(crate) trace: Vec<usize>,
    pub(crate) failure: Option<String>,
}

struct State {
    tasks: Vec<Task>,
    resources: Vec<Resource>,
    /// `Some(id)`: task `id` holds the execution token. `None`: the
    /// controller's turn.
    current: Option<usize>,
    decisions: Vec<Decision>,
    replay: Vec<usize>,
    depth: usize,
    preemptions: usize,
    last_running: Option<usize>,
    abort: bool,
    failure: Option<String>,
    trace: Vec<usize>,
    /// Bumped once per schedule so lazily registered resources from a
    /// previous run are never confused with this run's.
    pub(crate) generation: u64,
    /// Real thread handles to reap at the end of the schedule.
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// What kind of model-level resource to register.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResourceKind {
    Mutex,
    Rw,
}

pub(crate) struct Scheduler {
    state: StdMutex<State>,
    cv: Condvar,
    preemption_bound: Option<usize>,
    max_steps: usize,
    seed: u64,
}

// ------------------------------------------------------------ thread ctx --

thread_local! {
    static CTX: std::cell::RefCell<Option<TaskCtx>> = const { std::cell::RefCell::new(None) };
}

/// Identity of the current model task, if this OS thread is running one.
#[derive(Clone)]
pub(crate) struct TaskCtx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) id: usize,
}

pub(crate) fn current_ctx() -> Option<TaskCtx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<TaskCtx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

impl Scheduler {
    pub(crate) fn new(preemption_bound: Option<usize>, max_steps: usize, seed: u64) -> Scheduler {
        Scheduler {
            state: StdMutex::new(State {
                tasks: Vec::new(),
                resources: Vec::new(),
                current: None,
                decisions: Vec::new(),
                replay: Vec::new(),
                depth: 0,
                preemptions: 0,
                last_running: None,
                abort: false,
                failure: None,
                trace: Vec::new(),
                generation: 0,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_steps,
            seed,
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn wait<'a>(&self, g: StdMutexGuard<'a, State>) -> StdMutexGuard<'a, State> {
        match self.cv.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    // ----------------------------------------------------- task protocol --

    /// Declare `op`, park until the controller schedules this task, then
    /// apply the operation's effect. Returns the operation outcome
    /// (meaningful for `MutexTryLock`: `false` = would block).
    pub(crate) fn op_point(&self, me: usize, op: Op) -> bool {
        if std::thread::panicking() {
            // Unwinding — typically a lock guard dropping while a failed
            // schedule tears down. Apply release effects directly (no
            // scheduling decision; the run is over anyway) so the model
            // resource table stays consistent for the remaining guards.
            let mut st = self.lock();
            let ok = Self::apply(&mut st, op);
            self.cv.notify_all();
            return ok;
        }
        let mut st = self.lock();
        st.tasks[me].pending = Some(op);
        st.current = None;
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortRun);
            }
            if st.current == Some(me) {
                break;
            }
            st = self.wait(st);
        }
        st.tasks[me].pending = None;
        Self::apply(&mut st, op)
    }

    /// Park a freshly spawned task until the controller first schedules it.
    fn wait_first(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortRun);
            }
            if st.current == Some(me) {
                return;
            }
            st = self.wait(st);
        }
    }

    /// Mark `me` finished (recording a non-abort panic as the schedule's
    /// failure) and hand the token back to the controller.
    fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.tasks[me].status = Status::Finished;
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            st.abort = true;
        }
        st.current = None;
        self.cv.notify_all();
    }

    /// Register a new task (spawned mid-run); returns its id.
    pub(crate) fn register_task(&self) -> usize {
        let mut st = self.lock();
        st.tasks.push(Task {
            status: Status::Runnable,
            pending: None,
        });
        st.tasks.len() - 1
    }

    /// Register a model-level lock; returns its resource id.
    pub(crate) fn register_resource(&self, kind: ResourceKind) -> usize {
        let mut st = self.lock();
        st.resources.push(match kind {
            ResourceKind::Mutex => Resource::Mutex { held: false },
            ResourceKind::Rw => Resource::Rw {
                readers: 0,
                writer: false,
            },
        });
        st.resources.len() - 1
    }

    /// The current schedule's generation (for lazy resource re-binding).
    pub(crate) fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Record a real OS thread to be reaped when the schedule ends.
    fn track_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().handles.push(h);
    }

    /// Spawn the real thread backing model task `id`.
    pub(crate) fn spawn_task<F, T>(
        self: &Arc<Self>,
        id: usize,
        f: F,
        slot: Arc<StdMutex<Option<Result<T, String>>>>,
    ) where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let sched = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            set_ctx(Some(TaskCtx {
                sched: Arc::clone(&sched),
                id,
            }));
            sched.wait_first(id);
            let result = catch_unwind(AssertUnwindSafe(f));
            set_ctx(None);
            match result {
                Ok(v) => {
                    if let Ok(mut s) = slot.lock() {
                        *s = Some(Ok(v));
                    }
                    sched.finish(id, None);
                }
                Err(payload) => {
                    if payload.is::<AbortRun>() {
                        sched.finish(id, None);
                    } else {
                        let msg = panic_message(payload.as_ref());
                        if let Ok(mut s) = slot.lock() {
                            *s = Some(Err(msg.clone()));
                        }
                        sched.finish(id, Some(msg));
                    }
                }
            }
        });
        self.track_handle(handle);
    }

    // ------------------------------------------------------- op semantics --

    /// Can `op` proceed given the resource table?
    fn op_enabled(st: &State, op: Op) -> bool {
        match op {
            Op::MutexLock(r) => matches!(st.resources[r], Resource::Mutex { held: false }),
            Op::RwRead(r) => matches!(st.resources[r], Resource::Rw { writer: false, .. }),
            Op::RwWrite(r) => matches!(
                st.resources[r],
                Resource::Rw {
                    readers: 0,
                    writer: false
                }
            ),
            Op::Join(t) => st.tasks[t].status == Status::Finished,
            Op::MutexTryLock(_)
            | Op::MutexUnlock(_)
            | Op::RwUnlockRead(_)
            | Op::RwUnlockWrite(_)
            | Op::Atomic
            | Op::Spawn => true,
        }
    }

    /// Apply `op`'s effect. Returns `false` only for a failed try-lock.
    fn apply(st: &mut State, op: Op) -> bool {
        match op {
            Op::MutexLock(r) | Op::MutexTryLock(r) => match &mut st.resources[r] {
                Resource::Mutex { held } => {
                    if *held {
                        debug_assert!(matches!(op, Op::MutexTryLock(_)));
                        false
                    } else {
                        *held = true;
                        true
                    }
                }
                Resource::Rw { .. } => unreachable!("mutex op on rwlock resource"),
            },
            Op::MutexUnlock(r) => match &mut st.resources[r] {
                Resource::Mutex { held } => {
                    *held = false;
                    true
                }
                Resource::Rw { .. } => unreachable!("mutex op on rwlock resource"),
            },
            Op::RwRead(r) | Op::RwUnlockRead(r) => match &mut st.resources[r] {
                Resource::Rw { readers, .. } => {
                    if matches!(op, Op::RwRead(_)) {
                        *readers += 1;
                    } else {
                        *readers -= 1;
                    }
                    true
                }
                Resource::Mutex { .. } => unreachable!("rwlock op on mutex resource"),
            },
            Op::RwWrite(r) | Op::RwUnlockWrite(r) => match &mut st.resources[r] {
                Resource::Rw { writer, .. } => {
                    *writer = matches!(op, Op::RwWrite(_));
                    true
                }
                Resource::Mutex { .. } => unreachable!("rwlock op on mutex resource"),
            },
            Op::Atomic | Op::Spawn | Op::Join(_) => true,
        }
    }

    // ------------------------------------------------------- controller --

    /// Tasks that could be scheduled right now.
    fn schedulable(st: &State) -> Vec<usize> {
        (0..st.tasks.len())
            .filter(|&i| {
                st.tasks[i].status == Status::Runnable
                    && st.tasks[i]
                        .pending
                        .map(|op| Self::op_enabled(st, op))
                        .unwrap_or(true)
            })
            .collect()
    }

    /// Deterministic per-depth rotation so different seeds enumerate
    /// schedules in different (but individually stable) orders.
    fn rotation(&self, depth: usize, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(depth as u64);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x as usize) % len
    }

    /// Run one schedule of `f` to completion, replaying `replay` and then
    /// defaulting to the first schedulable task at each new decision.
    pub(crate) fn run_once<F>(self: &Arc<Self>, f: &Arc<F>, replay: Vec<usize>) -> RunOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        // Reset per-schedule state and register the root task.
        {
            let mut st = self.lock();
            debug_assert!(st.handles.is_empty());
            st.tasks.clear();
            st.resources.clear();
            st.decisions.clear();
            st.replay = replay;
            st.depth = 0;
            st.preemptions = 0;
            st.last_running = None;
            st.abort = false;
            st.failure = None;
            st.trace.clear();
            st.generation = st.generation.wrapping_add(1);
            st.tasks.push(Task {
                status: Status::Runnable,
                pending: None,
            });
        }
        let root = Arc::clone(f);
        let root_slot: Arc<StdMutex<Option<Result<(), String>>>> = Arc::new(StdMutex::new(None));
        self.spawn_task(0, move || root(), root_slot);

        loop {
            let mut st = self.lock();
            while st.current.is_some() {
                st = self.wait(st);
            }
            if st.tasks.iter().all(|t| t.status == Status::Finished) {
                break;
            }
            if st.abort {
                // Tear-down: parked tasks unwind via AbortRun when woken.
                self.cv.notify_all();
                st = self.wait(st);
                drop(st);
                continue;
            }
            let schedulable = Self::schedulable(&st);
            if schedulable.is_empty() {
                let held: Vec<String> = st
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Runnable)
                    .map(|(i, t)| format!("task {i} waiting on {:?}", t.pending))
                    .collect();
                st.failure = Some(format!(
                    "deadlock: no schedulable task ({})",
                    held.join("; ")
                ));
                st.abort = true;
                self.cv.notify_all();
                continue;
            }
            if st.depth >= self.max_steps {
                st.failure = Some(format!(
                    "schedule exceeded {} steps (livelock or unbounded loop?)",
                    self.max_steps
                ));
                st.abort = true;
                self.cv.notify_all();
                continue;
            }

            // Preemption bounding: once the budget is spent, keep running
            // the previous task for as long as it stays schedulable.
            let mut candidates = schedulable.clone();
            if let (Some(bound), Some(last)) = (self.preemption_bound, st.last_running) {
                if st.preemptions >= bound && candidates.contains(&last) {
                    candidates = vec![last];
                }
            }
            let rot = self.rotation(st.depth, candidates.len());
            candidates.rotate_left(rot);

            let alternatives = candidates.len();
            let rank = st.replay.get(st.depth).copied().unwrap_or(0);
            assert!(
                rank < alternatives,
                "model replay diverged (the checked closure is nondeterministic \
                 given a fixed schedule): depth {} rank {} alternatives {}",
                st.depth,
                rank,
                alternatives
            );
            let task = candidates[rank];
            st.decisions.push(Decision {
                chosen: rank,
                alternatives,
            });
            st.depth += 1;
            if let Some(last) = st.last_running {
                if last != task && schedulable.contains(&last) {
                    st.preemptions += 1;
                }
            }
            st.last_running = Some(task);
            st.trace.push(task);
            st.current = Some(task);
            self.cv.notify_all();
        }

        // All tasks finished: reap the real threads, then report.
        let handles = {
            let mut st = self.lock();
            std::mem::take(&mut st.handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut st = self.lock();
        RunOutcome {
            decisions: std::mem::take(&mut st.decisions),
            trace: std::mem::take(&mut st.trace),
            failure: st.failure.take(),
        }
    }
}

//! Distance metrics over feature vectors.
//!
//! CoIC's recognition lookup declares a cache hit when the distance between
//! the query descriptor and a cached descriptor falls under a threshold;
//! these are the metrics that threshold is measured in.

use crate::features::FeatureVec;

/// Squared Euclidean distance (cheapest; monotone in [`l2`]).
pub fn l2_sq(a: &FeatureVec, b: &FeatureVec) -> f32 {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum()
}

/// Euclidean distance.
pub fn l2(a: &FeatureVec, b: &FeatureVec) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Inner product.
pub fn dot(a: &FeatureVec, b: &FeatureVec) -> f32 {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .sum()
}

/// Cosine distance `1 - cos(a, b)` in `[0, 2]`. Zero vectors are treated as
/// maximally distant (distance 1) rather than undefined.
pub fn cosine(a: &FeatureVec, b: &FeatureVec) -> f32 {
    let na = a.l2_norm();
    let nb = b.l2_norm();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    (1.0 - dot(a, b) / (na * nb)).clamp(0.0, 2.0)
}

/// The metric CoIC's approximate cache lookup uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance.
    L2,
    /// Cosine distance.
    Cosine,
}

impl Metric {
    /// Evaluate this metric.
    pub fn eval(self, a: &FeatureVec, b: &FeatureVec) -> f32 {
        match self {
            Metric::L2 => l2(a, b),
            Metric::Cosine => cosine(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    #[test]
    fn l2_basics() {
        assert_eq!(l2(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])), 5.0);
        assert_eq!(l2_sq(&v(&[1.0]), &v(&[4.0])), 9.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a = v(&[0.3, -0.7, 2.0]);
        assert_eq!(l2(&a, &a), 0.0);
        assert!(cosine(&a, &a) < 1e-6);
    }

    #[test]
    fn symmetry() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[-1.0, 0.5, 9.0]);
        assert_eq!(l2(&a, &b), l2(&b, &a));
        assert_eq!(cosine(&a, &b), cosine(&b, &a));
    }

    #[test]
    fn triangle_inequality_l2() {
        let a = v(&[0.0, 0.0]);
        let b = v(&[1.0, 1.0]);
        let c = v(&[2.0, 0.0]);
        assert!(l2(&a, &c) <= l2(&a, &b) + l2(&b, &c) + 1e-6);
    }

    #[test]
    fn cosine_range_and_orthogonality() {
        let x = v(&[1.0, 0.0]);
        let y = v(&[0.0, 1.0]);
        let neg = v(&[-1.0, 0.0]);
        assert!((cosine(&x, &y) - 1.0).abs() < 1e-6);
        assert!((cosine(&x, &neg) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = v(&[0.2, 0.5, -0.1]);
        let b = v(&[1.0, -2.0, 0.3]);
        let scaled = v(&[10.0, -20.0, 3.0]);
        assert!((cosine(&a, &b) - cosine(&a, &scaled)).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_max_distance() {
        let z = v(&[0.0, 0.0]);
        let a = v(&[1.0, 0.0]);
        assert_eq!(cosine(&z, &a), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = l2(&v(&[1.0]), &v(&[1.0, 2.0]));
    }

    #[test]
    fn metric_enum_dispatch() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        assert_eq!(Metric::L2.eval(&a, &b), 2.0f32.sqrt());
        assert!((Metric::Cosine.eval(&a, &b) - 1.0).abs() < 1e-6);
    }
}

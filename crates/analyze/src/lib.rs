//! `coic-analyze`: the in-tree static analysis pass that enforces the
//! workspace's sans-IO and concurrency invariants.
//!
//! The architecture keeps every decision — scheduling, caching,
//! admission — inside pure, deterministic crates and pushes I/O and real
//! time to the edges (`netrun`, `cli`). Nothing in the language enforces
//! that split, so this crate does: it lexes every `.rs` file in the
//! workspace (no rustc, no external deps) and runs rules from a
//! checked-in `analyze/rules.toml`.
//!
//! Per-file, token-level rules:
//!
//! * `forbidden-path` — e.g. `std::net` or `Instant::now` in sans-IO
//!   crates;
//! * `no-unwrap` — `.unwrap()` / `.expect()` outside `#[cfg(test)]`;
//! * `crate-attr` — required inner attributes such as
//!   `#![forbid(unsafe_code)]`;
//! * `no-index-hot-path` — bracket indexing on hot paths (the
//!   `members[peer]` panic class);
//! * `paired-call` — an acquire call must be settled by a matching
//!   release in the same function (slot/grant leak class);
//! * `protocol-conformance` — the `Msg` wire enum's tags stay unique and
//!   dense and every variant has encode and decode arms.
//!
//! Workspace-level rules (need every matched file at once; run only
//! under [`lint_root`]):
//!
//! * `lock-order-graph` — a global lock-acquisition graph; any cycle is
//!   a finding with the witnessing `file:line` chain;
//! * `telemetry-registry` — every counter/event name literal must be
//!   declared in `analyze/telemetry.toml`, declarations must be live,
//!   and paired counter↔event names must move together.
//!
//! Always on: a rule exempting a path no workspace file matches is
//! itself a finding (`dead-exemption`) — stale carve-outs silently
//! widen a rule's blind spot.
//!
//! The crate also ships a runtime companion: `run_trace_check` (the
//! `coic analyze trace` subcommand) verifies declarative invariants
//! from `analyze/trace_invariants.toml` against a seeded run's
//! decision-trace JSONL and metrics dump — see [`trace`].
//!
//! Violations report file, line, rule id, and reason. A finding can be
//! suppressed in place with a justified escape hatch on the same line or
//! the line above:
//!
//! ```text
//! // lint: allow(no-wall-clock, the wall-clock adapter is the one place real time enters)
//! ```
//!
//! A malformed or reason-less directive is itself a finding
//! (`malformed-allow-directive`) — silent rot of suppressions is worse
//! than noise.

#![forbid(unsafe_code)]

mod checks;
mod glob;
mod json;
mod lexer;
mod lockgraph;
mod rules;
mod semantic;
mod telemetry;
mod toml;
pub mod trace;

pub use rules::{parse_rules, Rule, RuleKind};
pub use trace::run_trace_check;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule id (citable in `// lint: allow(id, reason)`).
    pub rule: String,
    /// What went wrong and why the rule exists.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule id attached to broken `lint: allow` comments.
pub const MALFORMED_ALLOW: &str = "malformed-allow-directive";

/// A parsed `// lint: allow(rule-id, reason)` directive.
struct AllowDirective {
    rule: String,
    line: u32,
}

/// Extract allow directives from comments; malformed ones (missing id,
/// missing reason, bad syntax) become findings instead of suppressions.
fn parse_allows(
    rel_path: &str,
    comments: &[lexer::Comment],
    out: &mut Vec<Finding>,
) -> Vec<AllowDirective> {
    let mut allows = Vec::new();
    for comment in comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let body = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
            .and_then(|r| r.strip_suffix(')'));
        let parsed = body
            .and_then(|b| b.split_once(','))
            .and_then(|(id, reason)| {
                let id = id.trim();
                let reason = reason.trim();
                let id_ok = !id.is_empty()
                    && id
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
                (id_ok && !reason.is_empty()).then(|| (id.to_string(), reason))
            });
        match parsed {
            Some((rule, _reason)) => allows.push(AllowDirective {
                rule,
                line: comment.line,
            }),
            None => out.push(Finding {
                file: rel_path.to_string(),
                line: comment.line,
                rule: MALFORMED_ALLOW.to_string(),
                message: format!(
                    "expected `lint: allow(rule-id, reason)`, got `lint:{rest}` \
                     (a reason is required)",
                    rest = if rest.is_empty() { "" } else { " " }.to_string() + rest,
                ),
            }),
        }
    }
    allows
}

/// Does an allow directive cover a finding? Same line, or the line
/// directly above (a comment on its own line).
fn allowed(finding: &Finding, allows: &[AllowDirective]) -> bool {
    allows
        .iter()
        .any(|a| a.rule == finding.rule && (a.line == finding.line || a.line + 1 == finding.line))
}

/// Lint one file's source text against `rules`. `rel_path` is the
/// workspace-relative path used both for rule scoping and in findings.
/// Workspace-level kinds are skipped here — they need every matched
/// file and only run under [`lint_root`].
pub fn lint_source(rel_path: &str, source: &str, rules: &[Rule]) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut out = Vec::new();
    let allows = parse_allows(rel_path, &lexed.comments, &mut out);
    let mut raw = Vec::new();
    for rule in rules.iter().filter(|r| r.applies_to(rel_path)) {
        checks::run_rule(rule, rel_path, &lexed, &mut raw);
    }
    out.extend(raw.into_iter().filter(|f| !allowed(f, &allows)));
    out.sort();
    out
}

/// Recursively collect `.rs` files under `root`, skipping build output
/// and VCS internals. Paths come back workspace-relative, `/`-separated,
/// sorted — the scan order never depends on directory enumeration order.
pub fn collect_rust_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    // `fixtures` trees hold deliberately-violating lint test inputs.
    const SKIP_DIRS: [&str; 4] = ["target", ".git", "node_modules", "fixtures"];
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Workspace-relative `/`-separated form of `path` under `root`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Rule id of the built-in dead-exemption config check.
pub const DEAD_EXEMPTION: &str = "dead-exemption";

/// One lexed workspace file, ready for per-file and workspace passes.
struct FileRec {
    rel: String,
    lexed: lexer::Lexed,
    allows: Vec<AllowDirective>,
}

/// Lint every `.rs` file under `root` against the rules file at
/// `rules_path`: per-file rules, then workspace-level passes
/// (lock-order graph, telemetry registry), then the built-in
/// dead-exemption config audit. Findings are sorted (file, line, rule).
pub fn lint_root(root: &Path, rules_path: &Path) -> Result<Vec<Finding>, String> {
    let rules_src = std::fs::read_to_string(rules_path)
        .map_err(|e| format!("{}: {e}", rules_path.display()))?;
    let rules = parse_rules(&rules_src).map_err(|e| format!("{}: {e}", rules_path.display()))?;
    let rules_rel = relative(root, rules_path);

    // Lex every file once; workspace passes and per-file rules share the
    // token streams.
    let mut findings = Vec::new(); // malformed-allow: never suppressible
    let mut files = Vec::new();
    for path in collect_rust_files(root)? {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = relative(root, &path);
        let lexed = lexer::lex(&source);
        let allows = parse_allows(&rel, &lexed.comments, &mut findings);
        files.push(FileRec { rel, lexed, allows });
    }

    let mut raw = Vec::new();
    for rec in &files {
        for rule in rules
            .iter()
            .filter(|r| !r.kind.is_workspace() && r.applies_to(&rec.rel))
        {
            checks::run_rule(rule, &rec.rel, &rec.lexed, &mut raw);
        }
    }

    for rule in rules.iter().filter(|r| r.kind.is_workspace()) {
        match &rule.kind {
            RuleKind::LockOrderGraph {
                declared,
                receivers,
            } => {
                let mut edges = lockgraph::Edges::new();
                for rec in files.iter().filter(|rec| rule.applies_to(&rec.rel)) {
                    lockgraph::collect_edges(&rec.rel, &rec.lexed.tokens, receivers, &mut edges);
                }
                lockgraph::declared_edges(declared, &rules_rel, rule.line, &mut edges);
                lockgraph::report_cycles(rule, &mut edges, &mut raw);
            }
            RuleKind::TelemetryRegistry { registry } => {
                let reg_path = root.join(registry);
                let reg_src = std::fs::read_to_string(&reg_path)
                    .map_err(|e| format!("{}: {e}", reg_path.display()))?;
                let reg = telemetry::parse_registry(&reg_src)
                    .map_err(|e| format!("{}: {e}", reg_path.display()))?;
                let matched: Vec<(&str, &lexer::Lexed)> = files
                    .iter()
                    .filter(|rec| rule.applies_to(&rec.rel))
                    .map(|rec| (rec.rel.as_str(), &rec.lexed))
                    .collect();
                telemetry::run(rule, &reg, registry, &matched, &mut raw);
            }
            _ => unreachable!("is_workspace() covers exactly these kinds"),
        }
    }

    // Config audit: an exempt glob no collected file matches is dead —
    // it either outlived a rename or never matched at all, and either
    // way it hides what the author thought was covered.
    for rule in &rules {
        for g in &rule.exempt {
            if !files.iter().any(|rec| glob::glob_match(g, &rec.rel)) {
                raw.push(Finding {
                    file: rules_rel.clone(),
                    line: rule.line,
                    rule: DEAD_EXEMPTION.to_string(),
                    message: format!(
                        "rule `{}` exempts `{g}` but no workspace file matches it \
                         (remove the stale carve-out)",
                        rule.id
                    ),
                });
            }
        }
    }

    // In-place allows suppress workspace findings too: lookup is by the
    // finding's file, so a justified escape hatch works the same whether
    // the rule ran per-file or globally.
    for f in raw {
        let allows = files
            .iter()
            .find(|rec| rec.rel == f.file)
            .map(|rec| rec.allows.as_slice())
            .unwrap_or(&[]);
        if !allowed(&f, allows) {
            findings.push(f);
        }
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Entry point shared by the standalone binary and the `coic lint`
/// subcommand: lint, print findings to `out`, return whether the tree is
/// clean.
pub fn run_lint(root: &Path, rules_path: &Path, out: &mut dyn fmt::Write) -> Result<bool, String> {
    let findings = lint_root(root, rules_path)?;
    for finding in &findings {
        writeln!(out, "{finding}").map_err(|e| e.to_string())?;
    }
    if findings.is_empty() {
        writeln!(out, "lint clean").map_err(|e| e.to_string())?;
    } else {
        writeln!(out, "{} finding(s)", findings.len()).map_err(|e| e.to_string())?;
    }
    Ok(findings.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &str = r#"
[[rule]]
id = "no-std-net"
kind = "forbidden-path"
patterns = ["std::net"]
reason = "sans-IO"
paths = ["src/**"]
exempt = ["src/io/**"]
"#;

    #[test]
    fn scoping_and_suppression() {
        let rules = parse_rules(RULES).unwrap();
        let code = "use std::net::TcpStream;\n";
        assert_eq!(lint_source("src/core.rs", code, &rules).len(), 1);
        // Exempt path: no finding.
        assert_eq!(lint_source("src/io/listener.rs", code, &rules), []);
        // Out of scope entirely.
        assert_eq!(lint_source("tests/net.rs", code, &rules), []);
        // Same-line allow.
        let same = "use std::net::TcpStream; // lint: allow(no-std-net, test fixture)\n";
        assert_eq!(lint_source("src/core.rs", same, &rules), []);
        // Line-above allow.
        let above = "// lint: allow(no-std-net, test fixture)\nuse std::net::TcpStream;\n";
        assert_eq!(lint_source("src/core.rs", above, &rules), []);
        // Wrong rule id does not suppress.
        let wrong = "// lint: allow(other-rule, nope)\nuse std::net::TcpStream;\n";
        assert_eq!(lint_source("src/core.rs", wrong, &rules).len(), 1);
        // Two lines above does not suppress.
        let far = "// lint: allow(no-std-net, too far)\n\nuse std::net::TcpStream;\n";
        assert_eq!(lint_source("src/core.rs", far, &rules).len(), 1);
    }

    #[test]
    fn malformed_allow_is_a_finding() {
        let rules = parse_rules(RULES).unwrap();
        for bad in [
            "// lint: allow(no-std-net)\n",      // no reason
            "// lint: allow()\n",                // nothing
            "// lint: allow no-std-net, x\n",    // no parens
            "// lint: allow(bad id!, reason)\n", // bad id chars
        ] {
            let got = lint_source("src/core.rs", bad, &rules);
            assert_eq!(got.len(), 1, "{bad:?} -> {got:?}");
            assert_eq!(got[0].rule, MALFORMED_ALLOW, "{bad:?}");
        }
        // Ordinary comments mentioning lint are left alone.
        assert_eq!(
            lint_source("src/core.rs", "// the lint pass checks this\n", &rules),
            []
        );
    }

    #[test]
    fn findings_are_sorted_and_printable() {
        let rules = parse_rules(RULES).unwrap();
        let code = "fn b() { std::net::x(); }\nfn a() { std::net::y(); }\n";
        let got = lint_source("src/core.rs", code, &rules);
        assert_eq!(got.len(), 2);
        assert!(got[0].line < got[1].line);
        let shown = got[0].to_string();
        assert!(shown.starts_with("src/core.rs:1: [no-std-net]"), "{shown}");
    }
}

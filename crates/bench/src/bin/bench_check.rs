//! Bench regression gate: compare a fresh `BENCH_edge.json` against the
//! committed baseline and exit nonzero on regression.
//!
//! ```text
//! bench_check --baseline bench/baseline.json --current BENCH_edge.json \
//!             [--tolerance 0.25] [--min-speedup 1.2] \
//!             [--live BENCH_live.json] [--live-tolerance 1.5]
//! ```
//!
//! With `--live`, a `coic bench --load` report is additionally held to
//! the live-scale gate ([`check_live_gate`]): zero hung requests in
//! every cell, every cell completed its stream, and the event loop's
//! p99 at the largest shared connection count within `--live-tolerance`
//! of the threads driver. That comparison is within one run on one
//! host, so no committed baseline is involved.
//!
//! Direction-aware: only *worse* results fail (throughput below the band,
//! p50 above it, sharded-vs-mutex speedup under the floor). Absolute
//! numbers drift with host speed, so CI runs a wide band (±25%) plus the
//! machine-independent speedup ratio; tighter gating against a
//! locally-refreshed baseline is a developer workflow (see
//! EXPERIMENTS.md).
//!
//! The *current* report is additionally held to the snapshot-index
//! acceptance gate ([`check_approx_gate`]): the default snapshot family
//! must beat the mutex baseline on p95 and throughput at every thread
//! count, and every snapshot family's hit ratio is pinned to the linear
//! scan. That comparison is within one run on one host, so no tolerance
//! band applies.

use coic_bench::load::{check_live_gate, LiveReport};
use coic_bench::perf::{check_approx_gate, check_regression, BenchReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    baseline: Option<PathBuf>,
    current: Option<PathBuf>,
    tolerance: f64,
    min_speedup: f64,
    live: Option<PathBuf>,
    live_tolerance: f64,
}

fn parse_args() -> Result<Opts, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 0.25;
    let mut min_speedup = 1.2;
    let mut live = None;
    let mut live_tolerance = 1.5;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || {
            args.next()
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(val()?)),
            "--current" => current = Some(PathBuf::from(val()?)),
            "--tolerance" => {
                tolerance = val()?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance: {e}"))?
            }
            "--min-speedup" => {
                min_speedup = val()?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --min-speedup: {e}"))?
            }
            "--live" => live = Some(PathBuf::from(val()?)),
            "--live-tolerance" => {
                live_tolerance = val()?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --live-tolerance: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if baseline.is_none() && live.is_none() {
        return Err("--baseline/--current (or --live) is required".into());
    }
    if baseline.is_some() != current.is_some() {
        return Err("--baseline and --current must be given together".into());
    }
    Ok(Opts {
        baseline,
        current,
        tolerance,
        min_speedup,
        live,
        live_tolerance,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_check: {e}");
            eprintln!(
                "usage: bench_check --baseline <json> --current <json> \
                 [--tolerance 0.25] [--min-speedup 1.2] \
                 [--live BENCH_live.json] [--live-tolerance 1.5]"
            );
            return ExitCode::from(2);
        }
    };
    let mut verdict = coic_bench::perf::RegressionReport::default();
    let mut cells_compared = 0;
    if let (Some(bpath), Some(cpath)) = (&opts.baseline, &opts.current) {
        let baseline = match BenchReport::load(bpath) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_check: baseline: {e}");
                return ExitCode::from(2);
            }
        };
        let current = match BenchReport::load(cpath) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_check: current: {e}");
                return ExitCode::from(2);
            }
        };
        println!(
            "bench_check: baseline rev {} vs current rev {} \
             (tolerance ±{:.0}%, min speedup {:.2})",
            baseline.git_rev,
            current.git_rev,
            opts.tolerance * 100.0,
            opts.min_speedup
        );
        cells_compared = baseline.results.len();
        verdict = check_regression(&baseline, &current, opts.tolerance, opts.min_speedup);
        let approx = check_approx_gate(&current);
        verdict.failures.extend(approx.failures);
        verdict.notes.extend(approx.notes);
    }
    // The live-scale gate is within-run (one host, one process), so it
    // needs no committed baseline: zero hung requests everywhere and
    // evloop p99 no worse than live_tolerance x threads at the largest
    // shared connection count.
    if let Some(path) = &opts.live {
        match LiveReport::load(path) {
            Ok(live) => {
                let lv = check_live_gate(&live, opts.live_tolerance);
                verdict.failures.extend(lv.failures);
                verdict.notes.extend(lv.notes);
            }
            Err(e) => verdict.failures.push(format!("live report: {e}")),
        }
    }
    for note in &verdict.notes {
        println!("  ok: {note}");
    }
    if verdict.failures.is_empty() {
        println!("bench_check: PASS ({cells_compared} cells compared)");
        ExitCode::SUCCESS
    } else {
        for failure in &verdict.failures {
            eprintln!("  REGRESSION: {failure}");
        }
        eprintln!("bench_check: FAIL ({} regressions)", verdict.failures.len());
        ExitCode::FAILURE
    }
}

//! Fixture: enum, tag map, decode arms, and encode coverage all agree.
//! Tag 0's arm decodes an optional sub-field with a nested match — the
//! pass must not read those inner `0 =>`/`1 =>` arms as wire tags.
//! Never compiled.

pub enum Msg {
    Hello { proto: u8 },
    Data(Vec<u8>),
    Bye,
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 0,
            Msg::Data { .. } => 1,
            Msg::Bye => 2,
        }
    }

    fn encode(&self) {
        match self {
            Msg::Hello { .. } | Msg::Data { .. } => {}
            Msg::Bye => {}
        }
    }

    fn decode(tag: u8, buf: &mut Buf) -> Result<Msg, WireError> {
        Ok(match tag {
            0 => {
                let proto = match buf.get_u8() {
                    0 => 1,
                    v => v,
                };
                Msg::Hello { proto }
            }
            1 => Msg::Data(buf.take_rest()),
            2 => Msg::Bye,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

//! Application scenario generators.
//!
//! Each generator reproduces one of the paper's motivating workloads as a
//! typed request trace:
//!
//! * [`SafeDrivingAr`] — §1.2 insight 1: recognition of shared landmarks
//!   (two safe-driving apps see the same stop sign),
//! * [`ArenaMultiplayer`] — insight 2: rendering shared 3D avatars
//!   (Pokemon-Go players in the same place),
//! * [`VrVideo`] — insight 3: panoramic frames shared by co-watching users.

use crate::arrivals::{ArrivalProcess, Poisson};
use crate::mobility::{ContentId, Population, UserId, ZoneId, ZoneModel};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a request asks the system to do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Recognize the object `class` from a fresh camera observation; the
    /// observation perturbation is seeded by `view_seed`.
    Recognition {
        /// Object class to observe.
        class: u32,
        /// Seed for the per-request viewpoint jitter.
        view_seed: u64,
    },
    /// Load 3D model `model_id` of roughly `size_bytes`.
    RenderLoad {
        /// Identifier of the model (procgen seed).
        model_id: u64,
        /// Requested model size in bytes.
        size_bytes: u64,
    },
    /// Fetch panoramic frame `frame_id`.
    Panorama {
        /// Identifier of the frame (synthesis seed).
        frame_id: u64,
    },
}

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Issuing user.
    pub user: UserId,
    /// Zone (edge) the user is attached to.
    pub zone: ZoneId,
    /// Virtual issue time in nanoseconds.
    pub at_ns: u64,
    /// The work requested.
    pub kind: RequestKind,
}

/// A generated trace plus its redundancy summary.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Total requests.
    pub requests: usize,
    /// Distinct content items referenced.
    pub unique_contents: usize,
}

/// Compute the redundancy summary of a trace.
pub fn summarize(trace: &[Request]) -> TraceSummary {
    let mut contents = std::collections::HashSet::new();
    for r in trace {
        let c: ContentId = match r.kind {
            RequestKind::Recognition { class, .. } => class as ContentId,
            RequestKind::RenderLoad { model_id, .. } => model_id,
            RequestKind::Panorama { frame_id } => frame_id,
        };
        contents.insert((std::mem::discriminant(&r.kind), c));
    }
    TraceSummary {
        requests: trace.len(),
        unique_contents: contents.len(),
    }
}

fn merge_sorted(mut reqs: Vec<Request>) -> Vec<Request> {
    reqs.sort_by_key(|r| (r.at_ns, r.user.0));
    reqs
}

/// Safe-driving AR: recognition-heavy trace over zone-local landmark pools.
#[derive(Debug, Clone)]
pub struct SafeDrivingAr {
    /// Users and their zones.
    pub population: Population,
    /// Zone content model (landmark classes per zone).
    pub zones: ZoneModel,
    /// Per-user request rate.
    pub rate_per_sec: f64,
    /// Zipf skew over each zone's landmark pool.
    pub zipf_s: f64,
    /// Requests to generate in total.
    pub total_requests: usize,
}

impl SafeDrivingAr {
    /// Generate the trace.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reqs = Vec::with_capacity(self.total_requests);
        let n_users = self.population.len();
        let per_user = self.total_requests.div_ceil(n_users);
        for u in 0..n_users {
            let user = UserId(u as u32);
            let zone = self.population.zone_of(user);
            let pool = self.zones.pool(zone);
            let zipf = Zipf::new(pool.len(), self.zipf_s);
            let mut arrivals = Poisson::new(self.rate_per_sec);
            let mut t = 0u64;
            for _ in 0..per_user {
                t += arrivals.next_gap_ns(&mut rng);
                let class = pool[zipf.sample(&mut rng)] as u32;
                reqs.push(Request {
                    user,
                    zone,
                    at_ns: t,
                    kind: RequestKind::Recognition {
                        class,
                        view_seed: rng.random::<u64>(),
                    },
                });
            }
        }
        let mut reqs = merge_sorted(reqs);
        reqs.truncate(self.total_requests);
        reqs
    }
}

/// Arena multiplayer: render-load trace over shared avatar models.
#[derive(Debug, Clone)]
pub struct ArenaMultiplayer {
    /// Users and their zones.
    pub population: Population,
    /// Avatar models available, as (model id, size in bytes).
    pub models: Vec<(u64, u64)>,
    /// Zipf skew over avatar popularity.
    pub zipf_s: f64,
    /// Per-user request rate.
    pub rate_per_sec: f64,
    /// Requests to generate in total.
    pub total_requests: usize,
}

impl ArenaMultiplayer {
    /// Generate the trace.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        assert!(!self.models.is_empty(), "need at least one model");
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(self.models.len(), self.zipf_s);
        let mut reqs = Vec::with_capacity(self.total_requests);
        let n_users = self.population.len();
        let per_user = self.total_requests.div_ceil(n_users);
        for u in 0..n_users {
            let user = UserId(u as u32);
            let zone = self.population.zone_of(user);
            let mut arrivals = Poisson::new(self.rate_per_sec);
            let mut t = 0u64;
            for _ in 0..per_user {
                t += arrivals.next_gap_ns(&mut rng);
                let (model_id, size_bytes) = self.models[zipf.sample(&mut rng)];
                reqs.push(Request {
                    user,
                    zone,
                    at_ns: t,
                    kind: RequestKind::RenderLoad {
                        model_id,
                        size_bytes,
                    },
                });
            }
        }
        let mut reqs = merge_sorted(reqs);
        reqs.truncate(self.total_requests);
        reqs
    }
}

/// VR video: co-watching users request the panorama frame at their current
/// playhead, so users watching the same video at the same time request the
/// same frames.
#[derive(Debug, Clone)]
pub struct VrVideo {
    /// Users and their zones.
    pub population: Population,
    /// Frame period of the video (e.g. 33 ms for 30 fps).
    pub frame_interval_ns: u64,
    /// How far apart (in frames) user playheads start, uniformly drawn in
    /// `0..=max_start_skew_frames`. Zero = perfectly synchronized viewers.
    pub max_start_skew_frames: u64,
    /// Sub-frame arrival stagger between users, ns (real co-watching
    /// clients are offset by device and network jitter even when their
    /// playheads show the same frame).
    pub user_stagger_ns: u64,
    /// Frames each user fetches.
    pub frames_per_user: usize,
}

impl VrVideo {
    /// Generate the trace.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        assert!(
            self.frame_interval_ns > 0,
            "frame interval must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reqs = Vec::new();
        for u in 0..self.population.len() {
            let user = UserId(u as u32);
            let zone = self.population.zone_of(user);
            let skew = if self.max_start_skew_frames == 0 {
                0
            } else {
                rng.random_range(0..=self.max_start_skew_frames)
            };
            for f in 0..self.frames_per_user as u64 {
                let frame_id = skew + f;
                reqs.push(Request {
                    user,
                    zone,
                    // The +u keeps the sort stable even with zero stagger.
                    at_ns: frame_id * self.frame_interval_ns
                        + u as u64 * self.user_stagger_ns
                        + u as u64,
                    kind: RequestKind::Panorama { frame_id },
                });
            }
        }
        merge_sorted(reqs)
    }
}

/// Flash crowd: a steady background load punctuated by a synchronized burst
/// in which every user requests from a small hot content pool at a much
/// higher rate (a breaking-news or stadium-event spike). The burst is what
/// drives an edge past its service capacity, so this is the canonical input
/// for exercising admission control and brownout shedding.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Users and their zones.
    pub population: Population,
    /// Per-user request rate outside the burst window.
    pub base_rate_per_sec: f64,
    /// Multiplier applied to every user's rate inside the burst window.
    pub burst_multiplier: f64,
    /// Burst start, virtual ns.
    pub burst_start_ns: u64,
    /// Burst duration, virtual ns.
    pub burst_len_ns: u64,
    /// Size of the hot content pool requested during the burst (the crowd
    /// converges on few items, so redundancy stays high under overload).
    pub hot_contents: usize,
    /// Zipf skew over the hot pool during the burst and over a wider pool
    /// (`hot_contents * 8`) outside it.
    pub zipf_s: f64,
    /// Trace horizon, virtual ns; generation stops at this time.
    pub horizon_ns: u64,
}

impl FlashCrowd {
    /// Generate the trace.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        assert!(self.hot_contents > 0, "need a non-empty hot pool");
        assert!(self.burst_multiplier >= 1.0, "burst must not slow users");
        let mut rng = StdRng::seed_from_u64(seed);
        let burst_end = self.burst_start_ns.saturating_add(self.burst_len_ns);
        let hot = Zipf::new(self.hot_contents, self.zipf_s);
        let cold = Zipf::new(self.hot_contents * 8, self.zipf_s);
        let mut reqs = Vec::new();
        for u in 0..self.population.len() {
            let user = UserId(u as u32);
            let zone = self.population.zone_of(user);
            let mut base = Poisson::new(self.base_rate_per_sec);
            let mut burst = Poisson::new(self.base_rate_per_sec * self.burst_multiplier);
            let mut t = 0u64;
            loop {
                let in_burst = t >= self.burst_start_ns && t < burst_end;
                let gap = if in_burst {
                    burst.next_gap_ns(&mut rng)
                } else {
                    base.next_gap_ns(&mut rng)
                };
                t += gap;
                if t >= self.horizon_ns {
                    break;
                }
                let in_burst = t >= self.burst_start_ns && t < burst_end;
                let frame_id = if in_burst {
                    hot.sample(&mut rng) as u64
                } else {
                    cold.sample(&mut rng) as u64
                };
                reqs.push(Request {
                    user,
                    zone,
                    at_ns: t,
                    kind: RequestKind::Panorama { frame_id },
                });
            }
        }
        merge_sorted(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Population {
        Population::round_robin(8, 2)
    }

    #[test]
    fn safe_driving_trace_shape() {
        let gen = SafeDrivingAr {
            population: pop(),
            zones: ZoneModel::new(2, 10, 0.3, 5),
            rate_per_sec: 10.0,
            zipf_s: 0.9,
            total_requests: 100,
        };
        let trace = gen.generate(1);
        assert_eq!(trace.len(), 100);
        // Sorted by time.
        assert!(trace.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // All recognition.
        assert!(trace
            .iter()
            .all(|r| matches!(r.kind, RequestKind::Recognition { .. })));
        // Redundancy: far fewer unique classes than requests.
        let s = summarize(&trace);
        assert!(s.unique_contents < s.requests / 2);
    }

    #[test]
    fn safe_driving_is_deterministic() {
        let gen = SafeDrivingAr {
            population: pop(),
            zones: ZoneModel::new(2, 10, 0.3, 5),
            rate_per_sec: 10.0,
            zipf_s: 0.9,
            total_requests: 50,
        };
        assert_eq!(gen.generate(1), gen.generate(1));
        assert_ne!(gen.generate(1), gen.generate(2));
    }

    #[test]
    fn arena_trace_uses_model_palette() {
        let models = vec![(1u64, 100_000u64), (2, 200_000), (3, 400_000)];
        let gen = ArenaMultiplayer {
            population: pop(),
            models: models.clone(),
            zipf_s: 1.0,
            rate_per_sec: 5.0,
            total_requests: 60,
        };
        let trace = gen.generate(3);
        assert_eq!(trace.len(), 60);
        for r in &trace {
            match r.kind {
                RequestKind::RenderLoad {
                    model_id,
                    size_bytes,
                } => assert!(models.contains(&(model_id, size_bytes))),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn synchronized_vr_viewers_share_frames() {
        let gen = VrVideo {
            population: Population::colocated(4, ZoneId(0)),
            frame_interval_ns: 33_000_000,
            max_start_skew_frames: 0,
            user_stagger_ns: 0,
            frames_per_user: 25,
        };
        let trace = gen.generate(0);
        let s = summarize(&trace);
        assert_eq!(s.requests, 100);
        assert_eq!(s.unique_contents, 25); // 4 users × same 25 frames
    }

    #[test]
    fn flash_crowd_burst_raises_rate_and_concentrates_content() {
        let gen = FlashCrowd {
            population: Population::colocated(16, ZoneId(0)),
            base_rate_per_sec: 20.0,
            burst_multiplier: 10.0,
            burst_start_ns: 500_000_000,
            burst_len_ns: 500_000_000,
            hot_contents: 8,
            zipf_s: 1.0,
            horizon_ns: 2_000_000_000,
        };
        let trace = gen.generate(7);
        assert!(trace.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let burst_end = gen.burst_start_ns + gen.burst_len_ns;
        let in_burst: Vec<&Request> = trace
            .iter()
            .filter(|r| r.at_ns >= gen.burst_start_ns && r.at_ns < burst_end)
            .collect();
        let outside: Vec<&Request> = trace
            .iter()
            .filter(|r| r.at_ns < gen.burst_start_ns || r.at_ns >= burst_end)
            .collect();
        // The burst window is 1/3 of the out-of-burst span but carries far
        // more requests than either surrounding segment combined.
        assert!(in_burst.len() > outside.len());
        // Burst requests converge on the hot pool.
        for r in &in_burst {
            match r.kind {
                RequestKind::Panorama { frame_id } => assert!(frame_id < 8),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Determinism.
        assert_eq!(gen.generate(7), gen.generate(7));
        assert_ne!(gen.generate(7), gen.generate(8));
    }

    #[test]
    fn skewed_vr_viewers_share_fewer_frames() {
        let sync = VrVideo {
            population: Population::colocated(4, ZoneId(0)),
            frame_interval_ns: 33_000_000,
            max_start_skew_frames: 0,
            user_stagger_ns: 0,
            frames_per_user: 25,
        };
        let skewed = VrVideo {
            max_start_skew_frames: 100,
            ..sync.clone()
        };
        let a = summarize(&sync.generate(1)).unique_contents;
        let b = summarize(&skewed.generate(1)).unique_contents;
        assert!(b > a);
    }
}

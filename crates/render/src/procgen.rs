//! Procedural model generators.
//!
//! Figure 2b sweeps "3D models differed in size"; these generators produce
//! valid meshes at any target size — primitives for the rasterizer tests,
//! a subdividable terrain for size sweeps, and a composite "avatar" (the
//! Pokemon-style shared character of the paper's multiplayer example).

use crate::math::Vec3;
use crate::mesh::{Mesh, Vertex};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn v(pos: Vec3) -> Vertex {
    Vertex {
        pos,
        normal: Vec3::ZERO,
    }
}

/// Unit cube centred at the origin (24 vertices for hard edges).
pub fn cube() -> Mesh {
    let mut vertices = Vec::with_capacity(24);
    let mut indices = Vec::with_capacity(36);
    // Each face: normal axis, two tangent axes, sign.
    let faces: [(Vec3, Vec3, Vec3); 6] = [
        (
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ),
        (
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 0.0),
        ),
        (
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
        ),
        (
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ),
        (
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        ),
        (
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
        ),
    ];
    for (n, t, b) in faces {
        let base = vertices.len() as u32;
        for (su, sv) in [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)] {
            let pos = (n + t * su + b * sv) * 0.5;
            vertices.push(Vertex { pos, normal: n });
        }
        indices.extend_from_slice(&[base, base + 1, base + 2, base, base + 2, base + 3]);
    }
    Mesh::new("cube", vertices, indices)
}

/// UV sphere of radius 1 with `stacks × slices` quads.
///
/// # Panics
/// Panics if `stacks < 2` or `slices < 3`.
pub fn uv_sphere(stacks: u32, slices: u32) -> Mesh {
    assert!(stacks >= 2 && slices >= 3, "degenerate sphere tessellation");
    let mut vertices = Vec::new();
    for i in 0..=stacks {
        let phi = std::f32::consts::PI * i as f32 / stacks as f32;
        for j in 0..=slices {
            let theta = std::f32::consts::TAU * j as f32 / slices as f32;
            let pos = Vec3::new(phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin());
            vertices.push(Vertex { pos, normal: pos });
        }
    }
    let ring = slices + 1;
    let mut indices = Vec::new();
    for i in 0..stacks {
        for j in 0..slices {
            let a = i * ring + j;
            let b = a + ring;
            // Wound so (v1-v0)×(v2-v0) points outward.
            indices.extend_from_slice(&[a, a + 1, b, a + 1, b + 1, b]);
        }
    }
    Mesh::new("uv_sphere", vertices, indices)
}

/// Icosphere of radius 1: an icosahedron subdivided `subdivisions` times
/// (each level quadruples the triangle count), vertices projected onto the
/// unit sphere. More uniform triangle sizes than [`uv_sphere`] and no pole
/// degeneracies.
///
/// # Panics
/// Panics if `subdivisions > 6` (past that the mesh explodes to millions
/// of triangles — use [`terrain`]/[`model_of_size`] for size sweeps).
pub fn icosphere(subdivisions: u32) -> Mesh {
    assert!(subdivisions <= 6, "icosphere subdivision too deep");
    // Icosahedron: vertices are cyclic permutations of (0, ±1, ±φ).
    let phi = (1.0 + 5.0f32.sqrt()) / 2.0;
    let base = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ];
    let mut positions: Vec<Vec3> = base
        .iter()
        .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
        .collect();
    // Faces wound so (v1-v0)×(v2-v0) points outward.
    let mut faces: Vec<[u32; 3]> = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    for _ in 0..subdivisions {
        let mut midpoints: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        let mut midpoint = |a: u32, b: u32, positions: &mut Vec<Vec3>| -> u32 {
            let key = (a.min(b), a.max(b));
            *midpoints.entry(key).or_insert_with(|| {
                let m = (positions[a as usize] + positions[b as usize]) * 0.5;
                positions.push(m.normalized());
                positions.len() as u32 - 1
            })
        };
        let mut next = Vec::with_capacity(faces.len() * 4);
        for [a, b, c] in faces {
            let ab = midpoint(a, b, &mut positions);
            let bc = midpoint(b, c, &mut positions);
            let ca = midpoint(c, a, &mut positions);
            next.push([a, ab, ca]);
            next.push([b, bc, ab]);
            next.push([c, ca, bc]);
            next.push([ab, bc, ca]);
        }
        faces = next;
    }
    let vertices: Vec<Vertex> = positions
        .into_iter()
        .map(|pos| Vertex { pos, normal: pos })
        .collect();
    let indices: Vec<u32> = faces.into_iter().flatten().collect();
    Mesh::new(format!("icosphere_s{subdivisions}"), vertices, indices)
}

/// Open cylinder of radius 1, height 2, `segments` sides.
///
/// # Panics
/// Panics if `segments < 3`.
pub fn cylinder(segments: u32) -> Mesh {
    assert!(segments >= 3, "degenerate cylinder tessellation");
    let mut vertices = Vec::new();
    for j in 0..=segments {
        let theta = std::f32::consts::TAU * j as f32 / segments as f32;
        let n = Vec3::new(theta.cos(), 0.0, theta.sin());
        vertices.push(Vertex {
            pos: n + Vec3::new(0.0, 1.0, 0.0),
            normal: n,
        });
        vertices.push(Vertex {
            pos: n + Vec3::new(0.0, -1.0, 0.0),
            normal: n,
        });
    }
    let mut indices = Vec::new();
    for j in 0..segments {
        let a = 2 * j;
        // Wound so (v1-v0)×(v2-v0) points outward.
        indices.extend_from_slice(&[a, a + 2, a + 1, a + 2, a + 3, a + 1]);
    }
    Mesh::new("cylinder", vertices, indices)
}

/// Heightfield terrain over an `n × n` vertex grid with value-noise
/// elevations; `n` directly controls model size (vertices = n², so CMF
/// bytes grow quadratically in `n`).
///
/// # Panics
/// Panics if `n < 2`.
pub fn terrain(n: u32, seed: u64, height_scale: f32) -> Mesh {
    assert!(n >= 2, "terrain grid needs at least 2x2 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    // Coarse lattice of random elevations, bilinearly interpolated, two
    // octaves — smooth but non-trivial geometry.
    let coarse = 8usize;
    let lattice: Vec<f32> = (0..(coarse + 1) * (coarse + 1))
        .map(|_| rng.random::<f32>())
        .collect();
    let sample = |u: f32, v: f32| -> f32 {
        let x = u * coarse as f32;
        let y = v * coarse as f32;
        let xi = (x as usize).min(coarse - 1);
        let yi = (y as usize).min(coarse - 1);
        let fx = x - xi as f32;
        let fy = y - yi as f32;
        let at = |i: usize, j: usize| lattice[j * (coarse + 1) + i];
        at(xi, yi) * (1.0 - fx) * (1.0 - fy)
            + at(xi + 1, yi) * fx * (1.0 - fy)
            + at(xi, yi + 1) * (1.0 - fx) * fy
            + at(xi + 1, yi + 1) * fx * fy
    };
    let mut vertices = Vec::with_capacity((n * n) as usize);
    for j in 0..n {
        for i in 0..n {
            let u = i as f32 / (n - 1) as f32;
            let w = j as f32 / (n - 1) as f32;
            let h = sample(u, w) + 0.5 * sample(u * 2.0 % 1.0, w * 2.0 % 1.0);
            vertices.push(v(Vec3::new(u * 2.0 - 1.0, h * height_scale, w * 2.0 - 1.0)));
        }
    }
    let mut indices = Vec::new();
    for j in 0..n - 1 {
        for i in 0..n - 1 {
            let a = j * n + i;
            let b = a + n;
            indices.extend_from_slice(&[a, b, a + 1, a + 1, b, b + 1]);
        }
    }
    let mut mesh = Mesh::new(format!("terrain_{n}_{seed}"), vertices, indices);
    mesh.recompute_normals();
    mesh
}

/// A composite "avatar": sphere head on a cylinder body on a cube base.
/// `detail` scales tessellation (and therefore size).
///
/// # Panics
/// Panics if `detail == 0`.
pub fn avatar(detail: u32) -> Mesh {
    assert!(detail > 0, "avatar detail must be positive");
    let mut vertices = Vec::new();
    let mut indices = Vec::new();
    let mut append = |part: &Mesh, scale: Vec3, offset: Vec3| {
        let base = vertices.len() as u32;
        for vert in &part.vertices {
            vertices.push(Vertex {
                pos: Vec3::new(
                    vert.pos.x * scale.x + offset.x,
                    vert.pos.y * scale.y + offset.y,
                    vert.pos.z * scale.z + offset.z,
                ),
                normal: vert.normal,
            });
        }
        indices.extend(part.indices.iter().map(|i| i + base));
    };
    append(
        &uv_sphere(6 * detail, 8 * detail),
        Vec3::new(0.5, 0.5, 0.5),
        Vec3::new(0.0, 1.6, 0.0),
    );
    append(
        &cylinder(8 * detail),
        Vec3::new(0.4, 0.5, 0.4),
        Vec3::new(0.0, 0.6, 0.0),
    );
    append(&cube(), Vec3::new(1.0, 0.2, 1.0), Vec3::new(0.0, -0.1, 0.0));
    let mut mesh = Mesh::new(format!("avatar_d{detail}"), vertices, indices);
    mesh.recompute_normals();
    mesh
}

/// Generate a terrain whose serialized CMF size is approximately
/// `target_bytes` (within a few percent for targets ≥ ~10 kB).
///
/// CMF stores 24 bytes/vertex + 4 bytes/index + fixed overhead; a terrain
/// with n² vertices has ~6n² index entries, so bytes ≈ n²·(24 + 24).
pub fn model_of_size(target_bytes: u64, seed: u64) -> Mesh {
    let per_vertex = 24.0 + 24.0;
    let n = ((target_bytes as f64 / per_vertex).sqrt()).max(2.0) as u32;
    terrain(n.max(2), seed, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_valid() {
        for m in [
            cube(),
            uv_sphere(8, 12),
            icosphere(2),
            cylinder(16),
            terrain(16, 1, 0.5),
            avatar(1),
        ] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn cube_counts() {
        let c = cube();
        assert_eq!(c.vertices.len(), 24);
        assert_eq!(c.triangle_count(), 12);
    }

    #[test]
    fn sphere_vertices_on_unit_sphere() {
        let s = uv_sphere(8, 12);
        for vert in &s.vertices {
            assert!((vert.pos.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn terrain_is_deterministic_per_seed() {
        assert_eq!(terrain(16, 7, 0.5), terrain(16, 7, 0.5));
        assert_ne!(terrain(16, 7, 0.5), terrain(16, 8, 0.5));
    }

    #[test]
    fn terrain_size_scales_quadratically() {
        let small = terrain(16, 1, 0.5);
        let big = terrain(32, 1, 0.5);
        let ratio = big.byte_size() as f64 / small.byte_size() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn avatar_detail_scales_size() {
        assert!(avatar(2).byte_size() > 2 * avatar(1).byte_size());
    }

    #[test]
    fn model_of_size_hits_target() {
        for target in [50_000u64, 500_000, 5_000_000] {
            let m = model_of_size(target, 3);
            let actual = m.byte_size();
            let ratio = actual as f64 / target as f64;
            assert!(
                (0.7..1.3).contains(&ratio),
                "target {target}, got {actual} (ratio {ratio})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "degenerate sphere")]
    fn degenerate_sphere_rejected() {
        let _ = uv_sphere(1, 3);
    }

    #[test]
    fn icosphere_counts_and_radius() {
        // 20 × 4^s faces; vertices on the unit sphere.
        for s in 0..3u32 {
            let m = icosphere(s);
            assert_eq!(m.triangle_count(), 20 * 4usize.pow(s));
            for v in &m.vertices {
                assert!((v.pos.length() - 1.0).abs() < 1e-5);
            }
        }
        // Subdivision shares midpoints: V = 10·4^s + 2 (Euler).
        assert_eq!(icosphere(0).vertices.len(), 12);
        assert_eq!(icosphere(1).vertices.len(), 42);
        assert_eq!(icosphere(2).vertices.len(), 162);
    }

    #[test]
    fn closed_meshes_wind_outward() {
        // For convex closed meshes centred at the origin, every face's
        // geometric normal (v1-v0)×(v2-v0) must point away from the centre —
        // the rasterizer's backface culling depends on this convention.
        for m in [cube(), uv_sphere(8, 12), icosphere(2), cylinder(12)] {
            let mut bad = 0;
            for tri in m.indices.chunks_exact(3) {
                let a = m.vertices[tri[0] as usize].pos;
                let b = m.vertices[tri[1] as usize].pos;
                let c = m.vertices[tri[2] as usize].pos;
                let n = (b - a).cross(c - a);
                let center = (a + b + c) * (1.0 / 3.0);
                // Pole/cap triangles collapse to a point up to float noise;
                // ignore anything with vanishing area.
                if n.dot(center) <= 0.0 && n.length() > 1e-6 {
                    bad += 1;
                }
            }
            assert_eq!(bad, 0, "{}: {bad} inward-facing triangles", m.name);
        }
    }
}

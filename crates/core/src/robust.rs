//! Fault-tolerance policies, re-exported from the sans-IO [`crate::engine`].
//!
//! This module is a compatibility facade: the retry policy, circuit
//! breaker, and robustness counters moved into the engine so a single,
//! clock-agnostic implementation serves both the simulator and the live
//! TCP stack. Existing `crate::robust::` paths keep working.

pub use crate::engine::breaker::{BreakerState, CircuitBreaker};
pub use crate::engine::retry::RetryPolicy;
pub use crate::engine::stats::{RobustnessSnapshot, RobustnessStats};

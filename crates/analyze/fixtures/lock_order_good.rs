//! Fixture: every nesting follows the declared order (cache first),
//! or releases the second lock before re-acquiring the first.

fn insert(shard: &Shard) {
    let mut guard = shard.cache.write();
    let pending = std::mem::take(&mut *shard.touches.lock());
    for key in pending {
        guard.touch(&key);
    }
}

fn lookup(shard: &Shard, key: u64) -> bool {
    let guard = shard.cache.read();
    if let Some(mut queue) = shard.touches.try_lock() {
        queue.push(key);
    }
    guard.contains(&key)
}

fn sequential(shard: &Shard) -> usize {
    let n = {
        let queue = shard.touches.lock();
        queue.len()
    };
    let guard = shard.cache.read();
    guard.len() + n
}

fn explicit_release(shard: &Shard) -> usize {
    let queue = shard.touches.lock();
    let pending = queue.len();
    drop(queue);
    let guard = shard.cache.read();
    guard.len() + pending
}

//! Retry policy: capped exponential backoff with deterministic jitter.
//!
//! The policy is pure — backoff is a function of `(seed, req, attempt)` —
//! so two identically-seeded runs back off identically, which is what lets
//! the simulator and the live driver traverse the same decision sequence.
//! It is *consumed* only by [`super::client::ClientEngine`]; drivers never
//! compute backoffs themselves.

use std::time::Duration;

/// Capped exponential backoff with seeded jitter, governing how a client
/// retries one request before giving up on the cooperative path.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per request on a given path (first try included).
    pub max_attempts: u32,
    /// Backoff before the second try; doubles per subsequent try.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away (0.0 = none, 0.5 = up to
    /// half). Jitter desynchronizes clients hammering a recovering edge.
    pub jitter_frac: f64,
    /// Seed for deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            jitter_frac: 0.3,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after a failed `attempt` (0-based) of request
    /// `req_id`. Deterministic in `(seed, req_id, attempt)`.
    pub fn backoff(&self, req_id: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        if self.jitter_frac <= 0.0 {
            return exp;
        }
        let unit = self.jitter_unit(req_id, attempt);
        let scale = 1.0 - self.jitter_frac * unit;
        exp.mul_f64(scale.clamp(0.0, 1.0))
    }

    /// Backoff honoring a server-supplied retry-after hint (ns) when one
    /// is present — e.g. from `Msg::Overloaded` — instead of the local
    /// exponential schedule. The hint is authoritative as a *floor*: the
    /// same deterministic `(seed, req_id, attempt)` jitter stream that
    /// [`RetryPolicy::backoff`] draws from *extends* it by up to
    /// `jitter_frac`, so a crowd of shed clients does not return in one
    /// synchronized wave the moment the hint expires. `max_backoff` is
    /// deliberately not applied to the hinted path: the server knows its
    /// own recovery horizon better than our local cap does. With no hint
    /// this is exactly `backoff`.
    pub fn backoff_with_hint(&self, req_id: u64, attempt: u32, hint_ns: Option<u64>) -> Duration {
        let Some(hint_ns) = hint_ns else {
            return self.backoff(req_id, attempt);
        };
        let hint = Duration::from_nanos(hint_ns);
        if self.jitter_frac <= 0.0 {
            return hint;
        }
        let unit = self.jitter_unit(req_id, attempt);
        hint.mul_f64(1.0 + (self.jitter_frac * unit).clamp(0.0, 1.0))
    }

    /// The deterministic jitter draw in `[0, 1)` for these coordinates —
    /// SplitMix64-style avalanche over `(seed, req_id, attempt)`.
    fn jitter_unit(&self, req_id: u64, attempt: u32) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A policy with no backoff at all: `tries` attempts, immediate
    /// retransmission. This is the simulator's legacy timeout behavior.
    pub fn immediate(tries: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: tries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_frac: 0.0,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let b0 = p.backoff(1, 0);
        let b1 = p.backoff(1, 1);
        let b2 = p.backoff(1, 2);
        assert_eq!(b0, Duration::from_millis(20));
        assert_eq!(b1, Duration::from_millis(40));
        assert_eq!(b2, Duration::from_millis(80));
        assert_eq!(p.backoff(1, 30), p.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter_frac: 0.5,
            seed: 9,
            ..RetryPolicy::default()
        };
        for attempt in 0..5 {
            for req in 0..50u64 {
                let a = p.backoff(req, attempt);
                let b = p.backoff(req, attempt);
                assert_eq!(a, b, "jitter not deterministic");
                let nominal = RetryPolicy {
                    jitter_frac: 0.0,
                    ..p.clone()
                }
                .backoff(req, attempt);
                assert!(a <= nominal && a >= nominal.mul_f64(0.5));
            }
        }
        // Different requests actually get different jitter.
        let spread: std::collections::HashSet<_> =
            (0..20u64).map(|r| p.backoff(r, 1).as_nanos()).collect();
        assert!(spread.len() > 10);
    }

    #[test]
    fn hint_overrides_the_schedule_and_jitter_only_extends_it() {
        let p = RetryPolicy {
            jitter_frac: 0.5,
            seed: 9,
            ..RetryPolicy::default()
        };
        let hint_ns = 2_000_000_000u64; // 2 s, well past max_backoff
        for attempt in 0..4 {
            for req in 0..50u64 {
                let a = p.backoff_with_hint(req, attempt, Some(hint_ns));
                let b = p.backoff_with_hint(req, attempt, Some(hint_ns));
                assert_eq!(a, b, "hinted jitter not deterministic");
                let hint = Duration::from_nanos(hint_ns);
                assert!(a >= hint, "the hint is a floor: {a:?} < {hint:?}");
                assert!(a <= hint.mul_f64(1.5), "jitter over-extended {a:?}");
            }
        }
        // The cap does not clamp a hint longer than max_backoff.
        assert!(p.backoff_with_hint(1, 0, Some(hint_ns)) > p.max_backoff);
        // Different clients de-synchronize their return to the edge.
        let spread: std::collections::HashSet<_> = (0..20u64)
            .map(|r| p.backoff_with_hint(r, 0, Some(hint_ns)).as_nanos())
            .collect();
        assert!(spread.len() > 10);
        // Without a hint it is exactly the local schedule.
        for attempt in 0..4 {
            assert_eq!(p.backoff_with_hint(7, attempt, None), p.backoff(7, attempt));
        }
        // And a jitter-free policy returns the hint verbatim.
        let flat = RetryPolicy {
            jitter_frac: 0.0,
            ..p
        };
        assert_eq!(
            flat.backoff_with_hint(3, 1, Some(hint_ns)),
            Duration::from_nanos(hint_ns)
        );
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let p = RetryPolicy::immediate(4, 3);
        assert_eq!(p.max_attempts, 4);
        for a in 0..4 {
            assert_eq!(p.backoff(9, a), Duration::ZERO);
        }
    }
}

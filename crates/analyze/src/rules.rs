//! Rule configuration: the checked-in `rules.toml` schema.
//!
//! ```toml
//! version = 1
//!
//! [[rule]]
//! id = "no-std-net"              # cited in findings and allow() comments
//! kind = "forbidden-path"        # see RuleKind
//! patterns = ["std::net"]        # token sequences (forbidden-path)
//! reason = "sans-IO: ..."        # human explanation shown per finding
//! paths = ["crates/*/src/**"]    # globs the rule applies to
//! exempt = ["crates/cli/**"]     # globs carved out again
//! ```
//!
//! Kinds and their extra keys:
//! * `forbidden-path` — `patterns`: token sequences that must not appear.
//! * `no-unwrap` — `methods` (optional, default `["unwrap", "expect"]`):
//!   method calls banned outside `#[cfg(test)]` / `#[test]` items.
//! * `crate-attr` — `attr`: an inner attribute (e.g. `forbid(unsafe_code)`)
//!   every matched file must carry.
//! * `lock-order` — `first`/`then`: receiver fields that must always be
//!   acquired in that order when both locks are held.

use crate::lexer;
use crate::toml::{self, Table};

/// What a rule checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleKind {
    /// Token sequences that must not appear in code.
    ForbiddenPath {
        /// Each pattern, pre-lexed into its token texts.
        patterns: Vec<Vec<String>>,
        /// Whether matches inside `#[cfg(test)]` / `#[test]` items count.
        /// Defaults to false: timing tests may read real clocks, but e.g.
        /// socket bans set it to true — tests of sans-IO crates must stay
        /// sans-IO as well.
        include_tests: bool,
    },
    /// `.unwrap()` / `.expect()` (configurable) outside test code.
    NoUnwrap {
        /// Banned method names.
        methods: Vec<String>,
    },
    /// A required inner attribute, e.g. `forbid(unsafe_code)`.
    CrateAttr {
        /// The attribute body, pre-lexed into token texts.
        attr_tokens: Vec<String>,
        /// Human-readable form for messages.
        attr_text: String,
    },
    /// Lock-acquisition order between two receiver fields.
    LockOrder {
        /// The receiver that must be acquired first.
        first: String,
        /// The receiver that may only be acquired while `first`-held or
        /// alone — never the other way around.
        then: String,
    },
}

/// One configured rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Identifier cited in findings and `// lint: allow(id, why)`.
    pub id: String,
    /// Human explanation attached to findings.
    pub reason: String,
    /// Globs selecting the files this rule applies to.
    pub paths: Vec<String>,
    /// Globs carved back out of `paths`.
    pub exempt: Vec<String>,
    /// The check itself.
    pub kind: RuleKind,
}

impl Rule {
    /// Does this rule apply to `rel_path`?
    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.paths
            .iter()
            .any(|p| crate::glob::glob_match(p, rel_path))
            && !self
                .exempt
                .iter()
                .any(|p| crate::glob::glob_match(p, rel_path))
    }
}

/// Parse a rules file. Unknown kinds, missing ids, and schema errors all
/// fail parsing — a broken config must not silently lint nothing.
pub fn parse_rules(source: &str) -> Result<Vec<Rule>, String> {
    let doc = toml::parse(source)?;
    let tables = doc.tables.get("rule").map(Vec::as_slice).unwrap_or(&[]);
    if tables.is_empty() {
        return Err("rules file defines no [[rule]] tables".into());
    }
    let mut rules = Vec::new();
    for (i, table) in tables.iter().enumerate() {
        rules.push(parse_rule(table).map_err(|e| format!("[[rule]] #{}: {e}", i + 1))?);
    }
    let mut ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != rules.len() {
        return Err("duplicate rule ids".into());
    }
    Ok(rules)
}

fn get_str(table: &Table, key: &str) -> Result<String, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key `{key}` must be a string"))
}

fn get_str_array(table: &Table, key: &str) -> Result<Vec<String>, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing key `{key}`"))?
        .as_str_array()
        .map(<[String]>::to_vec)
        .ok_or_else(|| format!("key `{key}` must be an array of strings"))
}

fn opt_str_array(table: &Table, key: &str) -> Result<Vec<String>, String> {
    match table.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_str_array()
            .map(<[String]>::to_vec)
            .ok_or_else(|| format!("key `{key}` must be an array of strings")),
    }
}

/// Lex a pattern/attribute string into its token texts.
fn lex_tokens(text: &str) -> Result<Vec<String>, String> {
    let lexed = lexer::lex(text);
    if lexed.tokens.is_empty() {
        return Err(format!("`{text}` contains no tokens"));
    }
    Ok(lexed.tokens.into_iter().map(|t| t.text).collect())
}

fn parse_rule(table: &Table) -> Result<Rule, String> {
    let id = get_str(table, "id")?;
    let reason = get_str(table, "reason")?;
    let paths = get_str_array(table, "paths")?;
    let exempt = opt_str_array(table, "exempt")?;
    let kind = match get_str(table, "kind")?.as_str() {
        "forbidden-path" => {
            let patterns = get_str_array(table, "patterns")?
                .iter()
                .map(|p| lex_tokens(p))
                .collect::<Result<Vec<_>, _>>()?;
            let include_tests = match table.get("include-tests") {
                None => false,
                Some(toml::Value::Bool(b)) => *b,
                Some(_) => return Err("key `include-tests` must be a boolean".into()),
            };
            RuleKind::ForbiddenPath {
                patterns,
                include_tests,
            }
        }
        "no-unwrap" => {
            let methods = if table.get("methods").is_some() {
                get_str_array(table, "methods")?
            } else {
                vec!["unwrap".into(), "expect".into()]
            };
            RuleKind::NoUnwrap { methods }
        }
        "crate-attr" => {
            let attr_text = get_str(table, "attr")?;
            RuleKind::CrateAttr {
                attr_tokens: lex_tokens(&attr_text)?,
                attr_text,
            }
        }
        "lock-order" => RuleKind::LockOrder {
            first: get_str(table, "first")?,
            then: get_str(table, "then")?,
        },
        other => return Err(format!("unknown rule kind `{other}`")),
    };
    Ok(Rule {
        id,
        reason,
        paths,
        exempt,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let rules = parse_rules(
            r#"
[[rule]]
id = "a"
kind = "forbidden-path"
patterns = ["std::net", "Instant::now"]
reason = "r"
paths = ["**"]

[[rule]]
id = "b"
kind = "no-unwrap"
reason = "r"
paths = ["src/**"]
exempt = ["src/gen/**"]

[[rule]]
id = "c"
kind = "crate-attr"
attr = "forbid(unsafe_code)"
reason = "r"
paths = ["*/src/lib.rs"]

[[rule]]
id = "d"
kind = "lock-order"
first = "cache"
then = "touches"
reason = "r"
paths = ["**"]
"#,
        )
        .unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(
            rules[0].kind,
            RuleKind::ForbiddenPath {
                patterns: vec![
                    vec!["std".into(), "::".into(), "net".into()],
                    vec!["Instant".into(), "::".into(), "now".into()],
                ],
                include_tests: false,
            }
        );
        assert!(rules[1].applies_to("src/a.rs"));
        assert!(!rules[1].applies_to("src/gen/a.rs"));
        assert!(
            matches!(&rules[2].kind, RuleKind::CrateAttr { attr_tokens, .. }
            if attr_tokens == &["forbid", "(", "unsafe_code", ")"])
        );
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(parse_rules("").is_err());
        let err = parse_rules(
            "[[rule]]\nid = \"x\"\nkind = \"mystery\"\nreason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap_err();
        assert!(err.contains("unknown rule kind"), "{err}");
        let err = parse_rules(
            "[[rule]]\nid = \"x\"\nkind = \"no-unwrap\"\nreason = \"r\"\npaths = [\"**\"]\n\
             [[rule]]\nid = \"x\"\nkind = \"no-unwrap\"\nreason = \"r\"\npaths = [\"**\"]",
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }
}

//! Human summaries for `coic obs report`.
//!
//! The trace summarizer deliberately parses only the fixed JSONL shell
//! this crate itself emits (`{"t":ns,"k":"...","n":"...",...}`) with
//! plain string scanning — no JSON parser dependency — and tolerates
//! unknown lines by counting them as unparsed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-name tallies for one trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct NameTally {
    enters: u64,
    exits: u64,
    events: u64,
}

/// Extract the value of a `"key":` whose value is a quoted string.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    // Names this crate emits never contain escapes; treat a backslash
    // before the closing quote as unparseable rather than mis-slicing.
    let end = rest.find('"')?;
    let value = &rest[..end];
    if value.contains('\\') {
        return None;
    }
    Some(value)
}

/// Extract the value of a `"key":` whose value is an unsigned integer.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Summarize a JSONL trace: record counts per name, span balance, and the
/// covered time range.
pub fn summarize_trace(jsonl: &str) -> String {
    let mut tallies: BTreeMap<String, NameTally> = BTreeMap::new();
    let mut unparsed = 0u64;
    let mut total = 0u64;
    let mut first_ns: Option<u64> = None;
    let mut last_ns = 0u64;
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        total += 1;
        let (Some(kind), Some(name), Some(t)) = (
            str_field(line, "k"),
            str_field(line, "n"),
            u64_field(line, "t"),
        ) else {
            unparsed += 1;
            continue;
        };
        first_ns = Some(first_ns.map_or(t, |f| f.min(t)));
        last_ns = last_ns.max(t);
        let tally = tallies.entry(name.to_string()).or_default();
        match kind {
            "enter" => tally.enters += 1,
            "exit" => tally.exits += 1,
            _ => tally.events += 1,
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "trace records: {total}");
    if let Some(first) = first_ns {
        let _ = writeln!(
            out,
            "time range:    {first} .. {last_ns} ns ({:.3} ms)",
            (last_ns - first) as f64 / 1e6
        );
    }
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>8}",
        "name", "events", "enters", "exits"
    );
    for (name, t) in &tallies {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>8}{}",
            name,
            t.events,
            t.enters,
            t.exits,
            if t.enters != t.exits {
                "  (unbalanced)"
            } else {
                ""
            }
        );
    }
    if unparsed > 0 {
        let _ = writeln!(out, "unparsed lines: {unparsed}");
    }
    out.trim_end().to_string()
}

/// Summarize a canonical metrics snapshot (as produced by
/// [`crate::MetricsRegistry::canonical`]): counts per section plus the
/// snapshot itself, which is already sorted and human-readable.
pub fn summarize_metrics(snapshot: &str) -> String {
    let mut counters = 0u64;
    let mut gauges = 0u64;
    let mut hists = 0u64;
    for line in snapshot.lines() {
        match line.split(' ').next() {
            Some("counter") => counters += 1,
            Some("gauge") => gauges += 1,
            Some("hist") => hists += 1,
            _ => {}
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "metrics: {counters} counters, {gauges} gauges, {hists} histograms"
    );
    out.push_str(snapshot.trim_end());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceKind, TraceLog, Value};

    #[test]
    fn trace_summary_counts_names_and_span_balance() {
        let log = TraceLog::enabled();
        log.push(100, TraceKind::Enter, "request", vec![]);
        log.push(
            200,
            TraceKind::Event,
            "edge.lookup",
            vec![("hit", Value::Bool(true))],
        );
        log.push(900, TraceKind::Exit, "request", vec![]);
        log.push(950, TraceKind::Enter, "request", vec![]);
        let s = summarize_trace(&log.to_jsonl());
        assert!(s.contains("trace records: 4"), "{s}");
        assert!(s.contains("100 .. 950 ns"), "{s}");
        assert!(s.contains("edge.lookup"), "{s}");
        assert!(s.contains("(unbalanced)"), "{s}");
    }

    #[test]
    fn unparseable_lines_are_tolerated() {
        let s = summarize_trace("not json\n");
        assert!(s.contains("unparsed lines: 1"), "{s}");
    }

    #[test]
    fn metrics_summary_counts_sections() {
        let r = crate::MetricsRegistry::new();
        r.counter_add("a", 1);
        r.counter_add("b", 2);
        r.gauge_set("g", 3);
        let s = summarize_metrics(&r.canonical());
        assert!(s.starts_with("metrics: 2 counters, 1 gauges, 0 histograms"));
        assert!(s.contains("counter a 1"));
    }
}

//! **Ext B** — eviction-policy ablation under cache pressure.
//!
//! The paper's prototype uses a "simple cache management policy" and names
//! better cache management as ongoing work. This ablation replays a mixed
//! render-load workload through every policy at several cache sizes.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_eviction`

use coic_bench::{base_config, render_trace};
use coic_cache::{PolicyKind, TinyLfuConfig};
use coic_core::simrun::run;

fn main() {
    // 24 distinct 4 MB models, Zipf-popular, 160 loads from 8 players:
    // the full set (96 MB as results) does not fit in the smaller caches.
    let trace = render_trace(8, 24, 4_000_000, 160, 21);
    println!("Ext B — eviction policy vs cache size (160 loads, 24 × 4 MB models)\n");
    print!("{:>10} |", "cache");
    for kind in PolicyKind::ALL {
        print!(" {:>8}", kind.to_string());
    }
    print!(" {:>9}", "LRU+TLFU");
    println!();
    coic_bench::rule(70);
    for cache_mb in [16u64, 32, 64, 128] {
        print!("{:>7} MB |", cache_mb);
        for kind in PolicyKind::ALL {
            let mut cfg = base_config();
            cfg.num_clients = 8;
            cfg.edge.policy = kind;
            cfg.edge.exact_cache_bytes = cache_mb * 1024 * 1024;
            let report = run(&trace, &cfg);
            print!(" {:>7.1}%", report.hit_ratio() * 100.0);
        }
        // LRU guarded by a TinyLFU admission filter.
        let mut cfg = base_config();
        cfg.num_clients = 8;
        cfg.edge.policy = PolicyKind::Lru;
        cfg.edge.exact_cache_bytes = cache_mb * 1024 * 1024;
        cfg.edge.admission = Some(TinyLfuConfig::default());
        let report = run(&trace, &cfg);
        print!(" {:>8.1}%", report.hit_ratio() * 100.0);
        println!();
    }
    coic_bench::rule(70);
    println!("cell values are edge-cache hit ratios");
    println!("\nWith a working set larger than the cache, frequency awareness wins:");
    println!("LFU/SLRU/GDSF beat plain LRU/FIFO, and a TinyLFU admission filter");
    println!("recovers most of that gap for LRU; at large sizes all converge.");
}

//! Fault-tolerance policies for the live (TCP) deployment: capped
//! exponential backoff with deterministic jitter ([`RetryPolicy`]), a
//! circuit breaker for the edge→cloud forwarding leg ([`CircuitBreaker`]),
//! and shared counters tracking every degradation and recovery transition
//! ([`RobustnessStats`]).
//!
//! The policies are transport-agnostic and deterministic where possible:
//! jitter derives from a seed plus the attempt coordinates, so two
//! identically-seeded runs back off identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Capped exponential backoff with seeded jitter, governing how a client
/// retries one request before giving up on the cooperative path.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per request on a given path (first try included).
    pub max_attempts: u32,
    /// Backoff before the second try; doubles per subsequent try.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away (0.0 = none, 0.5 = up to
    /// half). Jitter desynchronizes clients hammering a recovering edge.
    pub jitter_frac: f64,
    /// Seed for deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            jitter_frac: 0.3,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after a failed `attempt` (0-based) of request
    /// `req_id`. Deterministic in `(seed, req_id, attempt)`.
    pub fn backoff(&self, req_id: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        if self.jitter_frac <= 0.0 {
            return exp;
        }
        // SplitMix64-style avalanche over the coordinates → [0, 1).
        let mut z = self
            .seed
            .wrapping_add(req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let scale = 1.0 - self.jitter_frac * unit;
        exp.mul_f64(scale.clamp(0.0, 1.0))
    }
}

/// Breaker state, exposed for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected without attempting the protected call.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A circuit breaker protecting a downstream dependency (the edge's
/// forwarding leg to the cloud). After `failure_threshold` consecutive
/// failures the breaker opens for `cooldown`; it then half-opens, letting
/// a single probe through — success closes it, failure re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub cooldown: Duration,
    trips: AtomicU64,
    closes: AtomicU64,
}

impl CircuitBreaker {
    /// Breaker with the given trip threshold and open-state cooldown.
    pub fn new(failure_threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            failure_threshold: failure_threshold.max(1),
            cooldown,
            trips: AtomicU64::new(0),
            closes: AtomicU64::new(0),
        }
    }

    /// May a call proceed right now? `true` either means the breaker is
    /// closed or this caller has been granted the half-open probe slot.
    pub fn allow(&self) -> bool {
        let mut g = self.inner.lock().unwrap();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if g.opened_at.map(|t| t.elapsed() >= self.cooldown) == Some(true) {
                    g.state = BreakerState::HalfOpen;
                    g.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight {
                    false
                } else {
                    g.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record the outcome of a call that [`CircuitBreaker::allow`]ed.
    pub fn record(&self, success: bool) {
        let mut g = self.inner.lock().unwrap();
        g.probe_in_flight = false;
        if success {
            if g.state != BreakerState::Closed {
                self.closes.fetch_add(1, Ordering::Relaxed);
            }
            g.state = BreakerState::Closed;
            g.consecutive_failures = 0;
            g.opened_at = None;
        } else {
            g.consecutive_failures += 1;
            let tripping = match g.state {
                BreakerState::Closed => g.consecutive_failures >= self.failure_threshold,
                BreakerState::HalfOpen => true,
                BreakerState::Open => false,
            };
            if tripping {
                g.state = BreakerState::Open;
                g.opened_at = Some(Instant::now());
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current state (coarse; may change immediately after).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Times the breaker closed after recovery.
    pub fn closes(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }
}

/// Shared counters for every fault-handling event in the live stack.
/// Cloned handles observe the same underlying counters.
#[derive(Debug, Clone, Default)]
pub struct RobustnessStats {
    inner: Arc<RobustnessCounters>,
}

#[derive(Debug, Default)]
struct RobustnessCounters {
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    corrupt_frames: AtomicU64,
    reconnects: AtomicU64,
    fallbacks: AtomicU64,
    degraded_transitions: AtomicU64,
    recovered_transitions: AtomicU64,
    probes: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_closes: AtomicU64,
    unavailable_replies: AtomicU64,
}

/// Point-in-time copy of [`RobustnessStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessSnapshot {
    /// Request attempts issued (including retries).
    pub attempts: u64,
    /// Attempts beyond the first for some request.
    pub retries: u64,
    /// Attempts that ended in a deadline expiry.
    pub timeouts: u64,
    /// Frames rejected by checksum.
    pub corrupt_frames: u64,
    /// Transport reconnects performed.
    pub reconnects: u64,
    /// Requests served via the origin (cloud-direct) path after the
    /// cooperative path failed.
    pub fallbacks: u64,
    /// Cooperative→degraded transitions.
    pub degraded_transitions: u64,
    /// Degraded→cooperative (recovered) transitions.
    pub recovered_transitions: u64,
    /// Edge probes sent while degraded.
    pub probes: u64,
    /// Circuit-breaker trips on the edge's cloud leg.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries.
    pub breaker_closes: u64,
    /// `Msg::Unavailable` replies sent or received.
    pub unavailable_replies: u64,
}

macro_rules! counters {
    ($($field:ident => $inc:ident),* $(,)?) => {
        impl RobustnessStats {
            $(
                /// Increment the corresponding counter.
                pub fn $inc(&self) {
                    self.inner.$field.fetch_add(1, Ordering::Relaxed);
                }
            )*

            /// Copy all counters.
            pub fn snapshot(&self) -> RobustnessSnapshot {
                RobustnessSnapshot {
                    $($field: self.inner.$field.load(Ordering::Relaxed),)*
                }
            }
        }
    };
}

counters! {
    attempts => count_attempt,
    retries => count_retry,
    timeouts => count_timeout,
    corrupt_frames => count_corrupt,
    reconnects => count_reconnect,
    fallbacks => count_fallback,
    degraded_transitions => count_degraded,
    recovered_transitions => count_recovered,
    probes => count_probe,
    breaker_trips => count_breaker_trip,
    breaker_closes => count_breaker_close,
    unavailable_replies => count_unavailable,
}

impl std::fmt::Display for RobustnessSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attempts {} (retries {}), timeouts {}, corrupt {}, reconnects {}, \
             fallbacks {}, degraded {}→recovered {}, probes {}, breaker {}/{} trips/closes, \
             unavailable {}",
            self.attempts,
            self.retries,
            self.timeouts,
            self.corrupt_frames,
            self.reconnects,
            self.fallbacks,
            self.degraded_transitions,
            self.recovered_transitions,
            self.probes,
            self.breaker_trips,
            self.breaker_closes,
            self.unavailable_replies,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let b0 = p.backoff(1, 0);
        let b1 = p.backoff(1, 1);
        let b2 = p.backoff(1, 2);
        assert_eq!(b0, Duration::from_millis(20));
        assert_eq!(b1, Duration::from_millis(40));
        assert_eq!(b2, Duration::from_millis(80));
        assert_eq!(p.backoff(1, 30), p.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter_frac: 0.5,
            seed: 9,
            ..RetryPolicy::default()
        };
        for attempt in 0..5 {
            for req in 0..50u64 {
                let a = p.backoff(req, attempt);
                let b = p.backoff(req, attempt);
                assert_eq!(a, b, "jitter not deterministic");
                let nominal = RetryPolicy {
                    jitter_frac: 0.0,
                    ..p.clone()
                }
                .backoff(req, attempt);
                assert!(a <= nominal && a >= nominal.mul_f64(0.5));
            }
        }
        // Different requests actually get different jitter.
        let spread: std::collections::HashSet<_> =
            (0..20u64).map(|r| p.backoff(r, 1).as_nanos()).collect();
        assert!(spread.len() > 10);
    }

    #[test]
    fn breaker_trips_and_recovers() {
        let b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.allow());
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker must reject");
        assert_eq!(b.trips(), 1);

        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow(), "cooldown elapsed: probe should be granted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe at a time");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        assert!(b.allow());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.allow());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn stats_shared_across_clones() {
        let s = RobustnessStats::default();
        let s2 = s.clone();
        s.count_attempt();
        s2.count_attempt();
        s2.count_retry();
        s.count_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.attempts, 2);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.fallbacks, 1);
        assert_eq!(snap, s2.snapshot());
    }
}

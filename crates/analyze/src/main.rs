//! Standalone lint driver. Usage:
//!
//! ```text
//! coic-analyze [--root DIR] [--rules FILE]
//! coic-analyze trace --trace FILE --metrics FILE [--invariants FILE]
//! ```
//!
//! Defaults: `--root .`, `--rules <root>/analyze/rules.toml`,
//! `--invariants <root>/analyze/trace_invariants.toml`. Exits 0 on a
//! clean tree/trace, 1 on findings/violations, 2 on usage/config errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: coic-analyze [--root DIR] [--rules FILE]\n\
                     \x20      coic-analyze trace --trace FILE --metrics FILE [--invariants FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return trace_main(&args[1..]);
    }
    let mut root = PathBuf::from(".");
    let mut rules: Option<PathBuf> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--rules" => match args.next() {
                Some(v) => rules = Some(PathBuf::from(v)),
                None => return usage("--rules needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let rules = rules.unwrap_or_else(|| root.join("analyze").join("rules.toml"));
    let mut report = String::new();
    finish(coic_analyze::run_lint(&root, &rules, &mut report), report)
}

fn trace_main(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut invariants: Option<PathBuf> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) => Ok(PathBuf::from(v)),
            None => Err(format!("{what} needs a value")),
        };
        match arg.as_str() {
            "--root" => match take("--root") {
                Ok(v) => root = v,
                Err(e) => return usage(&e),
            },
            "--trace" => match take("--trace") {
                Ok(v) => trace = Some(v),
                Err(e) => return usage(&e),
            },
            "--metrics" => match take("--metrics") {
                Ok(v) => metrics = Some(v),
                Err(e) => return usage(&e),
            },
            "--invariants" => match take("--invariants") {
                Ok(v) => invariants = Some(v),
                Err(e) => return usage(&e),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let (Some(trace), Some(metrics)) = (trace, metrics) else {
        return usage("trace needs --trace and --metrics");
    };
    let invariants =
        invariants.unwrap_or_else(|| root.join("analyze").join("trace_invariants.toml"));
    let mut report = String::new();
    finish(
        coic_analyze::run_trace_check(&trace, &metrics, &invariants, &mut report),
        report,
    )
}

fn finish(result: Result<bool, String>, report: String) -> ExitCode {
    match result {
        Ok(clean) => {
            print!("{report}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("coic-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("coic-analyze: {problem}\n{USAGE}");
    ExitCode::from(2)
}

//! Integration tests of the real-TCP deployment: the same services the
//! simulator drives, over loopback sockets with concurrent clients.

use coic::core::netrun::{spawn_cloud, spawn_edge, NetClient};
use coic::core::{ClientConfig, ComputeConfig, EdgeConfig, ModelLibrary, PanoLibrary, Path};
use coic::vision::ObjectClass;
use coic::workload::{Request, RequestKind, UserId, ZoneId};
use std::sync::Arc;

struct Stack {
    _cloud: coic::core::netrun::CloudHandle,
    edge: coic::core::netrun::EdgeHandle,
    models: Arc<ModelLibrary>,
    panos: Arc<PanoLibrary>,
    compute: ComputeConfig,
}

fn stack() -> Stack {
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..6).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
    let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
    Stack {
        _cloud: cloud,
        edge,
        models,
        panos,
        compute,
    }
}

fn client(s: &Stack) -> NetClient {
    NetClient::connect(
        s.edge.addr(),
        ClientConfig::default(),
        s.compute,
        s.models.clone(),
        s.panos.clone(),
    )
    .unwrap()
}

fn req(kind: RequestKind) -> Request {
    Request {
        user: UserId(0),
        zone: ZoneId(0),
        at_ns: 0,
        kind,
    }
}

#[test]
fn concurrent_clients_share_the_edge_cache() {
    let s = stack();
    // Eight clients race on the same three panorama frames; after the dust
    // settles, most requests must have been edge hits and all results must
    // agree bytewise.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let mut c = client(&s);
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for frame in 0..3u64 {
                    let out = c
                        .execute(&req(RequestKind::Panorama { frame_id: frame }))
                        .unwrap();
                    outcomes.push((frame, out));
                }
                (i, outcomes)
            })
        })
        .collect();
    let mut by_frame: std::collections::HashMap<u64, Vec<coic::core::TaskResult>> =
        std::collections::HashMap::new();
    let mut hits = 0;
    let mut total = 0;
    for h in handles {
        let (_, outcomes) = h.join().unwrap();
        for (frame, out) in outcomes {
            total += 1;
            if out.path == Path::EdgeHit {
                hits += 1;
            }
            by_frame.entry(frame).or_default().push(out.result);
        }
    }
    assert_eq!(total, 24);
    assert!(hits >= 12, "only {hits}/24 hits");
    for (frame, results) in by_frame {
        for r in &results {
            assert_eq!(r, &results[0], "divergent results for frame {frame}");
        }
    }
}

#[test]
fn recognition_labels_are_consistent_between_paths() {
    let s = stack();
    let mut c = client(&s);
    let r = req(RequestKind::Recognition {
        class: 5,
        view_seed: 31,
    });
    let miss = c.execute(&r).unwrap();
    let hit = c.execute(&r).unwrap();
    assert_eq!(miss.path, Path::CloudMiss);
    assert_eq!(hit.path, Path::EdgeHit);
    match (&miss.result, &hit.result) {
        (coic::core::TaskResult::Recognition(a), coic::core::TaskResult::Recognition(b)) => {
            assert_eq!(a.label, 5);
            assert_eq!(a.label, b.label);
        }
        other => panic!("unexpected results {other:?}"),
    }
}

#[test]
fn live_model_bytes_match_library() {
    let s = stack();
    let mut c = client(&s);
    let out = c
        .execute(&req(RequestKind::RenderLoad {
            model_id: 9,
            size_bytes: 120_000,
        }))
        .unwrap();
    match out.result {
        coic::core::TaskResult::Model(bytes) => {
            let (expected, _) = s.models.get(9, 120_000);
            assert_eq!(bytes, expected);
            // And they parse into a drawable mesh.
            let loaded = coic::render::load_cmf(&bytes).unwrap();
            loaded.mesh.validate().unwrap();
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn edge_survives_garbage_frames() {
    use coic::netsim::rt::FrameConn;
    let s = stack();
    // A malicious/buggy peer sends junk: the edge must drop the connection
    // or ignore the frame, and keep serving well-behaved clients.
    let mut evil = FrameConn::connect(s.edge.addr()).unwrap();
    evil.send(b"this is not a coic message").unwrap();
    let _ = evil.recv(); // whatever happens here must not poison the server
    let mut evil2 = FrameConn::connect(s.edge.addr()).unwrap();
    evil2
        .send(&[0xC0, 0x01, 99, 0, 0, 0, 0, 0, 0, 0, 0])
        .unwrap(); // bad tag
    let _ = evil2.recv();

    let mut good = client(&s);
    let out = good
        .execute(&req(RequestKind::Panorama { frame_id: 1 }))
        .unwrap();
    assert!(matches!(out.path, Path::CloudMiss | Path::EdgeHit));
}

#[test]
fn upload_without_query_is_rejected_gracefully() {
    use coic::core::{Msg, TaskRequest};
    use coic::netsim::rt::FrameConn;
    let s = stack();
    // An Upload for a req_id the edge never saw: the pending-descriptor
    // lookup fails and the connection closes; the server stays up.
    let mut conn = FrameConn::connect(s.edge.addr()).unwrap();
    let msg = Msg::Upload {
        req_id: 0xDEAD_BEEF,
        task: TaskRequest::Panorama { frame_id: 0 },
    };
    conn.send(&msg.encode()).unwrap();
    let _ = conn.recv(); // closed or error — either is acceptable
    let mut good = client(&s);
    assert!(good
        .execute(&req(RequestKind::Panorama { frame_id: 2 }))
        .is_ok());
}

// ------------------------------------------------------------- chaos --

use coic::core::netrun::{spawn_edge_with, NetConfig};
use coic::core::RetryPolicy;
use std::time::{Duration, Instant};

/// Network policy tuned so chaos tests converge in milliseconds, not the
/// production-flavoured multi-second defaults.
fn fast_net() -> NetConfig {
    NetConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            ..RetryPolicy::default()
        },
        request_deadline: Duration::from_millis(800),
        connect_timeout: Duration::from_millis(300),
        probe_interval: Duration::from_millis(40),
        ..NetConfig::default()
    }
}

fn fallback_client(s: &Stack, net: NetConfig) -> NetClient {
    NetClient::connect_with(
        s.edge.addr(),
        Some(s._cloud.addr()),
        net,
        ClientConfig::default(),
        s.compute,
        s.models.clone(),
        s.panos.clone(),
    )
    .unwrap()
}

/// Rebind an edge on an address that was just vacated; the kernel may hold
/// the port briefly, so retry for a bounded window.
fn respawn_edge(
    cloud: std::net::SocketAddr,
    bind: std::net::SocketAddr,
) -> coic::core::netrun::EdgeHandle {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match spawn_edge_with(
            cloud,
            &EdgeConfig::default(),
            NetConfig::default(),
            Some(bind),
        ) {
            Ok(edge) => return edge,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not rebind edge on {bind}: {e}"),
        }
    }
}

#[test]
fn edge_death_midworkload_falls_back_to_cloud() {
    let mut s = stack();
    let mut c = fallback_client(&s, fast_net());

    // Warm-up on the cooperative path.
    for frame in 0..2u64 {
        let out = c
            .execute(&req(RequestKind::Panorama { frame_id: frame }))
            .unwrap();
        assert!(matches!(out.path, Path::CloudMiss | Path::EdgeHit));
    }
    assert!(!c.is_degraded());

    // Kill the edge mid-workload. Every remaining request must still
    // complete — via the origin path — and none may hang.
    s.edge.shutdown();
    let started = Instant::now();
    let mut baseline = 0;
    for frame in 0..6u64 {
        let out = c
            .execute(&req(RequestKind::Panorama { frame_id: frame }))
            .unwrap();
        if out.path == Path::Baseline {
            baseline += 1;
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "post-failure workload hung: {:?}",
        started.elapsed()
    );
    assert_eq!(
        baseline, 6,
        "all post-shutdown requests must use the origin path"
    );
    assert!(c.is_degraded());

    let snap = c.robustness().snapshot();
    assert!(snap.degraded_transitions >= 1, "{snap}");
    assert!(snap.fallbacks >= 6, "{snap}");
    assert!(snap.retries >= 1, "edge loss should force retries: {snap}");
}

#[test]
fn edge_restart_lets_clients_rejoin_cooperative_path() {
    let mut s = stack();
    let edge_addr = s.edge.addr();
    let mut c = fallback_client(&s, fast_net());

    c.execute(&req(RequestKind::Panorama { frame_id: 0 }))
        .unwrap();
    s.edge.shutdown();

    // Degrade: the next request falls back to the cloud.
    let out = c
        .execute(&req(RequestKind::Panorama { frame_id: 1 }))
        .unwrap();
    assert_eq!(out.path, Path::Baseline);
    assert!(c.is_degraded());

    // Restart the edge on its old address; probing must pull the client
    // back onto the cooperative path within a bounded window.
    let _edge2 = respawn_edge(s._cloud.addr(), edge_addr);
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut rejoined = false;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        let out = c
            .execute(&req(RequestKind::Panorama { frame_id: 2 }))
            .unwrap();
        if out.path != Path::Baseline {
            rejoined = true;
            break;
        }
    }
    assert!(rejoined, "client never rejoined the edge after restart");
    assert!(!c.is_degraded());

    let snap = c.robustness().snapshot();
    assert!(snap.degraded_transitions >= 1, "{snap}");
    assert!(snap.recovered_transitions >= 1, "{snap}");
    assert!(snap.probes >= 1, "{snap}");
}

#[test]
fn lossy_proxy_between_client_and_edge_is_survivable() {
    use coic::netsim::rt::{FaultPlan, FaultProxy};
    let s = stack();
    // Interpose a fault-injecting proxy on the access link: some frames
    // vanish, some are delayed. Timeouts + retries + cloud fallback must
    // still complete every request.
    let plan = FaultPlan {
        seed: 7,
        drop_frame: 0.15,
        delay_frame: 0.10,
        delay_ms: 20,
        ..FaultPlan::default()
    };
    let proxy = FaultProxy::spawn(s.edge.addr(), plan).unwrap();

    let mut net = fast_net();
    net.request_deadline = Duration::from_millis(400);
    let mut c = NetClient::connect_with(
        proxy.local_addr(),
        Some(s._cloud.addr()),
        net,
        ClientConfig::default(),
        s.compute,
        s.models.clone(),
        s.panos.clone(),
    )
    .unwrap();

    let started = Instant::now();
    for i in 0..12u64 {
        let out = c
            .execute(&req(RequestKind::Panorama { frame_id: i % 4 }))
            .unwrap();
        match out.result {
            coic::core::TaskResult::Panorama(bytes) => assert!(!bytes.is_empty()),
            other => panic!("unexpected result {other:?}"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "lossy workload hung: {:?}",
        started.elapsed()
    );
    let stats = proxy.stats();
    assert!(stats.forwarded > 0, "proxy forwarded nothing: {stats:?}");
}

#[test]
fn sixteen_clients_hammering_one_edge_stay_coherent() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::sync::Barrier;

    const CLIENTS: usize = 16;
    const ZIPF_REQS: usize = 24;
    const FRAME_POOL: u64 = 12;

    let s = stack();
    let barrier = Arc::new(Barrier::new(CLIENTS));

    // Phase 1: all sixteen clients release together on the *same* cold
    // frame — the sharpest duplicate-miss race the edge can see. Phase 2:
    // a Zipf-skewed stream over a small frame pool (hot head, long tail).
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let mut c = client(&s);
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut frames = Vec::new();
                let mut outcomes = Vec::new();
                barrier.wait();
                let out = c
                    .execute(&req(RequestKind::Panorama { frame_id: 0 }))
                    .unwrap();
                frames.push(0u64);
                outcomes.push((0u64, out));
                let mut rng = StdRng::seed_from_u64(0x51AB ^ i as u64);
                for _ in 0..ZIPF_REQS {
                    let u: f64 = rng.random();
                    let frame_id = ((u * u) * FRAME_POOL as f64) as u64;
                    let out = c.execute(&req(RequestKind::Panorama { frame_id })).unwrap();
                    frames.push(frame_id);
                    outcomes.push((frame_id, out));
                }
                (frames, outcomes)
            })
        })
        .collect();

    let mut by_frame: std::collections::HashMap<u64, Vec<coic::core::TaskResult>> =
        std::collections::HashMap::new();
    let mut distinct: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut edge_hits = 0u64;
    let mut cloud_misses = 0u64;
    let mut race_misses = 0u64;
    for h in handles {
        let (frames, outcomes) = h.join().unwrap();
        distinct.extend(frames);
        for (idx, (frame, out)) in outcomes.into_iter().enumerate() {
            match out.path {
                Path::EdgeHit => edge_hits += 1,
                Path::CloudMiss => {
                    cloud_misses += 1;
                    if idx == 0 {
                        race_misses += 1;
                    }
                }
                other => panic!("unexpected path {other:?} for frame {frame}"),
            }
            by_frame.entry(frame).or_default().push(out.result);
        }
    }
    let total = (CLIENTS * (1 + ZIPF_REQS)) as u64;
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "contention workload took {:?} — a lock ordering problem?",
        started.elapsed()
    );
    assert_eq!(edge_hits + cloud_misses, total);

    // Single-flight: the sixteen-way race on the cold frame coalesces to
    // exactly one cloud fetch, and *every* distinct frame is fetched from
    // the cloud exactly once across the whole run.
    assert_eq!(race_misses, 1, "duplicate misses escaped the flight table");
    assert_eq!(
        cloud_misses,
        distinct.len() as u64,
        "each distinct frame must cost exactly one cloud trip"
    );

    // Every copy of a frame, whichever path produced it, is bytewise equal.
    for (frame, results) in by_frame {
        for r in &results {
            assert_eq!(r, &results[0], "divergent results for frame {frame}");
        }
    }

    // The merged per-shard counters agree with what the clients observed:
    // each EdgeHit reply is exactly one successful shard lookup. Misses
    // are counted per cache probe, and a coalesced request probes the
    // cache once on arrival and once more after its leader completes, so
    // the shard-merged miss count brackets the client-observed cloud
    // trips without ever dropping below them.
    let stats = s.edge.exact_cache_metrics();
    assert!(s.edge.cache_shards() > 1);
    assert_eq!(
        stats.hits, edge_hits,
        "merged shard hits {} != client-observed edge hits {edge_hits}",
        stats.hits
    );
    assert!(
        stats.misses >= cloud_misses && stats.misses <= 2 * total,
        "merged shard misses {} outside [{cloud_misses}, {}]",
        stats.misses,
        2 * total
    );
    assert_eq!(stats.lookups(), stats.hits + stats.misses);
}

#[test]
fn flash_crowd_sheds_to_cloud_and_rejoins_when_the_edge_cools() {
    use coic::core::engine::AdmissionConfig;
    use std::sync::Barrier;

    const CLIENTS: usize = 8;
    const REQS_PER_CLIENT: usize = 10;

    // An edge with the tightest possible admission policy: one request in
    // service, no queue. Any concurrent arrival is answered Overloaded.
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..6).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
    let edge_net = NetConfig {
        admission: Some(AdmissionConfig {
            queue_limit: 0,
            ..AdmissionConfig::fixed(1)
        }),
        ..NetConfig::default()
    };
    let edge = spawn_edge_with(cloud.addr(), &EdgeConfig::default(), edge_net, None).unwrap();
    let s = Stack {
        _cloud: cloud,
        edge,
        models,
        panos,
        compute,
    };

    // Flash crowd: everyone released at once, hammering the same large
    // model — the first wave races on the cold cloud fetch (the admitted
    // leader holds the single slot for the whole fetch) and later waves
    // race on multi-millisecond hit transfers, so arrivals overlap and the
    // zero-queue edge must shed. Every request must still complete —
    // admitted ones at the edge, shed ones through the cloud fallback —
    // and none may hang.
    let crowd_req = req(RequestKind::RenderLoad {
        model_id: 5,
        size_bytes: 4_000_000,
    });
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let mut c = fallback_client(&s, fast_net());
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut baseline = 0u64;
                let mut edge_served = 0u64;
                for _ in 0..REQS_PER_CLIENT {
                    let out = c.execute(&crowd_req).unwrap();
                    match out.path {
                        Path::Baseline => baseline += 1,
                        Path::EdgeHit | Path::CloudMiss | Path::PeerHit => edge_served += 1,
                    }
                }
                (c, baseline, edge_served)
            })
        })
        .collect();

    let mut clients = Vec::new();
    let mut baseline_total = 0u64;
    let mut edge_total = 0u64;
    let mut overloaded_total = 0u64;
    for h in handles {
        let (c, baseline, edge_served) = h.join().unwrap();
        baseline_total += baseline;
        edge_total += edge_served;
        overloaded_total += c.robustness().snapshot().overloaded_replies;
        clients.push(c);
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "flash crowd hung: {:?}",
        started.elapsed()
    );
    assert_eq!(
        baseline_total + edge_total,
        (CLIENTS * REQS_PER_CLIENT) as u64,
        "zero hung requests: every request completes on some path"
    );
    assert!(
        overloaded_total >= 1,
        "a barrier-released crowd against a 1-slot, 0-queue edge must shed"
    );
    assert!(
        baseline_total >= 1,
        "shed clients must complete via the cloud fallback"
    );
    let edge_snap = s.edge.robustness().snapshot();
    assert!(edge_snap.shed >= 1, "{edge_snap}");
    assert!(edge_snap.admitted >= 1, "{edge_snap}");

    // The crowd is gone: a degraded client's probes must bring it back to
    // the edge within a bounded window, and the edge serves it again.
    let mut c = clients
        .into_iter()
        .find(|c| c.is_degraded())
        .unwrap_or_else(|| fallback_client(&s, fast_net()));
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut rejoined = false;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        let out = c.execute(&crowd_req).unwrap();
        if out.path == Path::EdgeHit {
            rejoined = true;
            break;
        }
    }
    assert!(rejoined, "client never rejoined the edge after the burst");
    assert!(!c.is_degraded());
}

/// A real 3-edge cluster over loopback: partition placement replicates a
/// cloud fetch to the digest's owner, hot demand replicates it to the
/// requesting edge, and when the owner is killed the ring successor
/// serves its keyspace from the peer tier — before any cloud fallback —
/// until the restarted owner rejoins through its half-open breaker.
#[test]
fn cluster_edge_death_fails_over_to_ring_successor_then_rejoins() {
    use coic::core::{BreakerState, ClusterConfig, HashRing};

    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..6).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
    let spawn = || {
        spawn_edge_with(
            cloud.addr(),
            &EdgeConfig::default(),
            NetConfig::default(),
            None,
        )
        .unwrap()
    };
    let edge_a = spawn();
    let mut edge_b = spawn();
    let edge_c = spawn();
    let members = [edge_a.addr(), edge_b.addr(), edge_c.addr()];
    let cluster = ClusterConfig {
        vnodes: 16,
        peer_fanout: 2,
        replicate_hot: 2,
        breaker_threshold: 1,
        breaker_cooldown_ms: 300,
        ..ClusterConfig::default()
    };
    edge_a.join_cluster(0, &members, cluster.clone());
    edge_b.join_cluster(1, &members, cluster.clone());
    edge_c.join_cluster(2, &members, cluster.clone());

    // Pick a frame whose digest edge B owns — the keyspace the kill must
    // re-route. The handles share the deterministic ring, so the test can
    // compute ownership offline.
    let ring = HashRing::new(3, cluster.vnodes);
    let mut b_frames = (0..64u64).filter(|&f| ring.owner(&panos.digest(f)) == 1);
    let frame = b_frames.next().expect("some frame is owned by edge B");
    let request = req(RequestKind::Panorama { frame_id: frame });
    let connect = |addr| {
        NetClient::connect(
            addr,
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap()
    };
    let mut on_a = connect(edge_a.addr());
    let mut on_c = connect(edge_c.addr());

    // Warm-up through C (a non-owner): the first request misses the whole
    // cluster and pays the cloud, pushing a placement copy to owner B; the
    // second finds it at B via the peer tier and — crossing the hot
    // threshold — keeps a replica on C itself.
    assert_eq!(on_c.execute(&request).unwrap().path, Path::CloudMiss);
    assert_eq!(on_c.execute(&request).unwrap().path, Path::PeerHit);
    let c_stats = edge_c.cluster_stats().unwrap();
    assert!(c_stats.replication_copies >= 1, "{c_stats:?}");
    assert!(c_stats.replica_keeps >= 1, "{c_stats:?}");

    // Kill the owner. A's probe to B fails (tripping B's breaker — a ring
    // rebuild), and the ring successor's replica serves the request from
    // the peer tier: no cloud trip, no hang.
    edge_b.shutdown();
    let out = on_a.execute(&request).unwrap();
    assert_eq!(
        out.path,
        Path::PeerHit,
        "the surviving replica must serve B's keyspace"
    );
    let a_stats = edge_a.cluster_stats().unwrap();
    assert!(a_stats.peer_timeouts >= 1, "{a_stats:?}");
    assert!(a_stats.peer_hits >= 1, "{a_stats:?}");
    assert!(a_stats.ring_rebuilds >= 1, "{a_stats:?}");
    assert_eq!(edge_a.peer_state(1), Some(BreakerState::Open));

    // Restart B on its old address and re-join it to the cluster. Once
    // the cooldown lapses, A's next plans half-open B's breaker, the
    // probe finds the edge alive, and B is back in the ring.
    let b_addr = members[1];
    edge_b = respawn_edge(cloud.addr(), b_addr);
    edge_b.join_cluster(1, &members, cluster);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut rejoined = false;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
        // A fresh B-owned frame each round: the miss path is what plans
        // peer probes, and only a probe can half-open B's breaker.
        let f = b_frames.next().expect("ran out of frames owned by B");
        on_a.execute(&req(RequestKind::Panorama { frame_id: f }))
            .unwrap();
        if edge_a.peer_state(1) == Some(BreakerState::Closed) {
            rejoined = true;
            break;
        }
    }
    assert!(rejoined, "restarted edge never rejoined the ring");
    let a_stats = edge_a.cluster_stats().unwrap();
    assert!(a_stats.ring_rebuilds >= 2, "{a_stats:?}");
}

/// A `Msg::Replicate` that does not carry the cluster's membership token
/// must not install anything: not before a cluster is joined, and not
/// from a sender that merely reaches the edge port and speaks the
/// protocol. The edge drops the connection without an ack, and a
/// subsequent peer query for the planted digest comes back empty.
#[test]
fn forged_replicate_push_is_rejected() {
    use bytes::Bytes;
    use coic::cache::Digest;
    use coic::core::{ClusterConfig, Msg, TaskResult};
    use coic::netsim::rt::FrameConn;
    use std::time::Duration;

    let s = stack();
    let digest = Digest::of(b"poisoned-content");
    let forged = |token: u64| Msg::Replicate {
        req_id: 1,
        token,
        digest,
        result: TaskResult::Model(Bytes::from(vec![0xAB; 16])),
    };
    let push = |msg: Msg| {
        let mut conn = FrameConn::connect(s.edge.addr()).unwrap();
        conn.set_read_deadline(Some(Duration::from_millis(500)))
            .unwrap();
        conn.send(&msg.encode()).unwrap();
        conn.recv()
    };

    // Before any cluster is joined, every push is refused.
    assert!(push(forged(0)).is_err(), "no-cluster push must be dropped");

    // With a cluster joined, a push that guesses wrong is refused too.
    s.edge
        .join_cluster(0, &[s.edge.addr()], ClusterConfig::default());
    assert!(push(forged(0)).is_err(), "zero token must be dropped");
    assert!(push(forged(42)).is_err(), "wrong token must be dropped");

    // Nothing was installed: the peer-lookup path sees no such digest.
    let reply = push(Msg::PeerQuery { req_id: 9, digest }).expect("peer query is answered");
    match Msg::decode(&reply).unwrap() {
        Msg::PeerReply { result, .. } => {
            assert!(result.is_none(), "forged content must not be served")
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

// ----------------------------------------------------- evloop driver --
//
// The same live stack on the readiness-driven event loop. These mirror
// the thread-per-connection coverage above: the IO driver is below the
// engine boundary, so every behavior — cache sharing, garbage-frame
// robustness, fault-proxy chaos, admission shedding — must hold
// unchanged, and the `loop.*` counters must account for the traffic.

use coic::core::DriverKind;

fn evloop_stack() -> Stack {
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..6).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
    let net = NetConfig::builder().driver(DriverKind::Evloop).build();
    let edge = spawn_edge_with(cloud.addr(), &EdgeConfig::default(), net, None).unwrap();
    assert_eq!(edge.driver(), DriverKind::Evloop);
    Stack {
        _cloud: cloud,
        edge,
        models,
        panos,
        compute,
    }
}

#[test]
fn evloop_concurrent_clients_share_the_edge_cache() {
    let s = evloop_stack();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let mut c = client(&s);
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for frame in 0..3u64 {
                    let out = c
                        .execute(&req(RequestKind::Panorama { frame_id: frame }))
                        .unwrap();
                    outcomes.push((frame, out));
                }
                outcomes
            })
        })
        .collect();
    let mut by_frame: std::collections::HashMap<u64, Vec<coic::core::TaskResult>> =
        std::collections::HashMap::new();
    let mut hits = 0;
    let mut total = 0;
    for h in handles {
        for (frame, out) in h.join().unwrap() {
            total += 1;
            if out.path == Path::EdgeHit {
                hits += 1;
            }
            by_frame.entry(frame).or_default().push(out.result);
        }
    }
    assert_eq!(total, 24);
    assert!(hits >= 12, "only {hits}/24 hits");
    for (frame, results) in by_frame {
        for r in &results {
            assert_eq!(r, &results[0], "divergent results for frame {frame}");
        }
    }
    // The loop accounted for the traffic: each request is at least one
    // frame (queries; some also upload), every client was accepted.
    let stats = s.edge.loop_stats();
    assert!(stats.accepted >= 8, "{stats:?}");
    assert!(stats.frames >= 24, "{stats:?}");
    assert!(stats.wakeups >= 1, "{stats:?}");
}

#[test]
fn evloop_edge_survives_garbage_frames() {
    use coic::netsim::rt::FrameConn;
    let s = evloop_stack();
    // Junk payload in a valid frame: decoded, fails Msg::decode, the
    // handler returns None and the loop closes the connection.
    let mut evil = FrameConn::connect(s.edge.addr()).unwrap();
    evil.send(b"this is not a coic message").unwrap();
    let _ = evil.recv();
    // Corrupt wire bytes: the incremental decoder poisons the
    // connection without ever allocating the bogus length.
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(s.edge.addr()).unwrap();
    raw.write_all(&[0xFF; 64]).unwrap();
    let _ = raw.flush();

    let mut good = client(&s);
    let out = good
        .execute(&req(RequestKind::Panorama { frame_id: 1 }))
        .unwrap();
    assert!(matches!(out.path, Path::CloudMiss | Path::EdgeHit));
}

#[test]
fn evloop_survives_lossy_proxy_between_client_and_edge() {
    use coic::netsim::rt::{FaultPlan, FaultProxy};
    let s = evloop_stack();
    // The FaultProxy interposes on the access link exactly as it does for
    // the threads driver: drops and delays must surface as timeouts and
    // retries, never hangs, whichever driver terminates the edge side.
    let plan = FaultPlan {
        seed: 7,
        drop_frame: 0.15,
        delay_frame: 0.10,
        delay_ms: 20,
        ..FaultPlan::default()
    };
    let proxy = FaultProxy::spawn(s.edge.addr(), plan).unwrap();

    let mut net = fast_net();
    net.request_deadline = Duration::from_millis(400);
    let mut c = NetClient::connect_with(
        proxy.local_addr(),
        Some(s._cloud.addr()),
        net,
        ClientConfig::default(),
        s.compute,
        s.models.clone(),
        s.panos.clone(),
    )
    .unwrap();

    let started = Instant::now();
    for i in 0..12u64 {
        let out = c
            .execute(&req(RequestKind::Panorama { frame_id: i % 4 }))
            .unwrap();
        match out.result {
            coic::core::TaskResult::Panorama(bytes) => assert!(!bytes.is_empty()),
            other => panic!("unexpected result {other:?}"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "lossy workload hung: {:?}",
        started.elapsed()
    );
    let stats = proxy.stats();
    assert!(stats.forwarded > 0, "proxy forwarded nothing: {stats:?}");
}

#[test]
fn evloop_admission_pressure_sheds_and_completes_every_request() {
    use coic::core::engine::AdmissionConfig;
    use std::sync::Barrier;

    const CLIENTS: usize = 6;
    const REQS_PER_CLIENT: usize = 6;

    // The tightest admission policy on the event loop: the dispatch
    // bound is clamped to the admission window, so backpressure pauses
    // reads instead of queueing unboundedly, and the admission layer
    // sheds what still gets through.
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..6).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
    let edge_net = NetConfig::builder()
        .driver(DriverKind::Evloop)
        .admission(AdmissionConfig {
            queue_limit: 0,
            ..AdmissionConfig::fixed(1)
        })
        .build();
    let edge = spawn_edge_with(cloud.addr(), &EdgeConfig::default(), edge_net, None).unwrap();
    let s = Stack {
        _cloud: cloud,
        edge,
        models,
        panos,
        compute,
    };

    let crowd_req = req(RequestKind::RenderLoad {
        model_id: 5,
        size_bytes: 4_000_000,
    });
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let mut c = fallback_client(&s, fast_net());
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut done = 0u64;
                for _ in 0..REQS_PER_CLIENT {
                    c.execute(&crowd_req).unwrap();
                    done += 1;
                }
                done
            })
        })
        .collect();
    let mut completed = 0u64;
    for h in handles {
        completed += h.join().unwrap();
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "evloop flash crowd hung: {:?}",
        started.elapsed()
    );
    assert_eq!(
        completed,
        (CLIENTS * REQS_PER_CLIENT) as u64,
        "zero hung requests: every request completes on some path"
    );
    let edge_snap = s.edge.robustness().snapshot();
    assert!(edge_snap.admitted >= 1, "{edge_snap}");
}

#[test]
fn hits_are_faster_than_misses_live() {
    let s = stack();
    let mut c = client(&s);
    // A large model makes the gap unambiguous even on loopback.
    let r = req(RequestKind::RenderLoad {
        model_id: 1,
        size_bytes: 4_000_000,
    });
    let miss = c.execute(&r).unwrap();
    let hit = c.execute(&r).unwrap();
    assert_eq!(miss.path, Path::CloudMiss);
    assert_eq!(hit.path, Path::EdgeHit);
    assert!(
        hit.elapsed < miss.elapsed,
        "hit {:?} should beat miss {:?}",
        hit.elapsed,
        miss.elapsed
    );
}

//! Minimal JSON support for the bench harness: a canonical writer and a
//! small recursive-descent parser.
//!
//! The workspace is hermetic (no external crates; the in-tree `serde` shim
//! carries no JSON backend), so the bench report format is handled here.
//! Writing is *canonical* — object keys emitted in sorted order, floats at
//! fixed precision — so two runs with identical measurements produce
//! byte-identical files and diffs stay reviewable. Parsing accepts any
//! standard JSON subset the reports use (objects, arrays, strings without
//! escapes beyond the common ones, finite numbers, bools, null).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps keys sorted (canonical form).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize canonically: sorted keys (guaranteed by `BTreeMap`),
    /// integers without a fraction, other floats at 6 decimal places.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:.6}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructors used by the report writer.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A number value.
pub fn num(n: f64) -> Json {
    Json::Num(n)
}

/// A string value.
pub fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

/// Parse a JSON document; returns a message with byte offset on error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = rest.get(..ch_len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += ch_len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_canonical() {
        let v = obj(vec![
            ("zeta", num(1.5)),
            (
                "alpha",
                Json::Arr(vec![num(1.0), Json::Bool(true), Json::Null]),
            ),
            ("mid", s("he\"llo")),
        ]);
        let text = v.to_canonical();
        // Keys sorted regardless of construction order.
        assert!(text.find("alpha").unwrap() < text.find("mid").unwrap());
        assert!(text.find("mid").unwrap() < text.find("zeta").unwrap());
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // Canonical form is a fixed point.
        assert_eq!(back.to_canonical(), text);
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(num(42.0).to_canonical(), "42");
        assert_eq!(num(2.5).to_canonical(), "2.500000");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("07x").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "b": "x", "c": 3.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(3.5));
        assert!(v.get("missing").is_none());
    }
}

//! Trace-verifier self-tests over the checked-in fixtures: the good
//! trace/metrics pair must validate, and the corrupted pair must fail
//! with a violation from every invariant kind it breaks.

use std::path::PathBuf;

fn trace_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("trace")
}

#[test]
fn good_trace_satisfies_every_invariant() {
    let dir = trace_dir();
    let mut out = String::new();
    let clean = coic_analyze::run_trace_check(
        &dir.join("good.jsonl"),
        &dir.join("good_metrics.txt"),
        &dir.join("invariants.toml"),
        &mut out,
    )
    .expect("readable fixtures");
    assert!(clean, "good trace must validate:\n{out}");
    assert!(out.contains("trace clean"), "{out}");
    // The downed edge's open probe is excused, not silently unchecked.
    assert!(out.contains("ok probe-terminal (3 checked)"), "{out}");
}

#[test]
fn corrupted_trace_fails_every_broken_invariant() {
    let dir = trace_dir();
    let mut out = String::new();
    let clean = coic_analyze::run_trace_check(
        &dir.join("corrupt.jsonl"),
        &dir.join("corrupt_metrics.txt"),
        &dir.join("invariants.toml"),
        &mut out,
    )
    .expect("readable fixtures");
    assert!(!clean, "corrupted trace must fail:\n{out}");
    for id in [
        "monotonic-time",
        "probe-terminal",
        "probe-counter",
        "breaker-transitions",
        "ring-rebuilds",
        "down-edges-stay-quiet",
    ] {
        assert!(out.contains(&format!("violation {id}")), "{id}:\n{out}");
    }
    assert!(out.contains("trace violation(s)"), "{out}");
}

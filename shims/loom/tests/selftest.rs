//! Self-tests for the mini-loom explorer: it must exhaustively and
//! deterministically enumerate schedules, *find* genuine races and
//! deadlocks, and pass through to `std` outside a model.

use loom::model::Builder;
use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex, RwLock};
use std::sync::Mutex as StdMutex;

/// Serialize the expected-failure tests' panic-hook fiddling (model runs
/// themselves are already serialized inside the crate).
static HOOK: StdMutex<()> = StdMutex::new(());

/// Run `f` with panic output suppressed: expected-failure explorations
/// deliberately panic inside model tasks, and the default hook would spam
/// the test log.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let _serial = HOOK.lock().unwrap();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

#[test]
fn atomic_increments_always_commute() {
    let report = loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    assert!(
        report.schedules >= 2,
        "at least both thread orders must be explored, got {}",
        report.schedules
    );
}

#[test]
fn deliberately_racy_counter_is_detected() {
    // The canonical lost update: increment via separate load and store.
    // Some interleaving loses one increment, and the explorer must find
    // it (this is the self-test the lint/model subsystem hangs off).
    let failure = quietly(|| {
        Builder::default().check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    loom::thread::spawn(move || {
                        let seen = n.load(Ordering::SeqCst);
                        n.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        })
    });
    let failure = failure.expect_err("the lost update must be found");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn mutex_serializes_read_modify_write() {
    // The same racy increment, now under a mutex: no schedule may lose an
    // update, and the explorer still visits multiple schedules.
    let report = loom::model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let mut g = n.lock();
                    *g += 1;
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.complete);
    assert!(report.schedules >= 2);
}

#[test]
fn opposite_lock_order_deadlock_is_detected() {
    let failure = quietly(|| {
        Builder::default().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _g1 = b2.lock();
                let _g2 = a2.lock();
            });
            let _g1 = a.lock();
            let _g2 = b.lock();
            drop((_g1, _g2));
            let _ = t.join();
        })
    });
    let failure = failure.expect_err("opposite lock order must deadlock somewhere");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.trace.is_empty(), "trace identifies the schedule");
}

#[test]
fn rwlock_writers_are_exclusive_and_readers_observe_consistent_state() {
    let report = loom::model(|| {
        let l = Arc::new(RwLock::new((0u64, 0u64)));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                loom::thread::spawn(move || {
                    let mut g = l.write();
                    // Two non-atomic halves: a reader overlapping a writer
                    // (or two writers overlapping) would observe a torn pair.
                    g.0 += 1;
                    g.1 += 1;
                })
            })
            .collect();
        let reader = {
            let l = Arc::clone(&l);
            loom::thread::spawn(move || {
                let g = l.read();
                assert_eq!(g.0, g.1, "reader saw a torn write");
            })
        };
        for t in writers {
            t.join().unwrap();
        }
        reader.join().unwrap();
        let g = l.read();
        assert_eq!(*g, (2, 2));
    });
    assert!(report.complete);
    assert!(report.schedules >= 6, "got {}", report.schedules);
}

#[test]
fn try_lock_explores_both_outcomes() {
    let outcomes = Arc::new(StdMutex::new((false, false)));
    let sink = Arc::clone(&outcomes);
    let report = loom::model(move || {
        let m = Arc::new(Mutex::new(()));
        let m2 = Arc::clone(&m);
        let t = loom::thread::spawn(move || {
            let _g = m2.lock();
        });
        match m.try_lock() {
            Some(_) => sink.lock().unwrap().0 = true,
            None => sink.lock().unwrap().1 = true,
        }
        t.join().unwrap();
    });
    assert!(report.complete);
    let seen = *outcomes.lock().unwrap();
    assert_eq!(
        seen,
        (true, true),
        "some schedule must win and some must lose the try_lock"
    );
}

#[test]
fn same_seed_reproduces_the_same_exploration() {
    let run = |seed: u64| {
        quietly(|| {
            Builder::default().seed(seed).check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let threads: Vec<_> = (0..3)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        loom::thread::spawn(move || {
                            let seen = n.load(Ordering::SeqCst);
                            n.store(seen + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 3);
            })
        })
    };
    let a = run(7).expect_err("3-way lost update must be found");
    let b = run(7).expect_err("3-way lost update must be found");
    assert_eq!(a.schedule, b.schedule, "same seed, same failing schedule");
    assert_eq!(a.trace, b.trace, "same seed, same schedule trace");
}

#[test]
fn exploration_is_breadthy_enough_for_three_threads() {
    let report = loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 6);
    });
    assert!(report.complete);
    assert!(
        report.schedules >= 100,
        "three threads × two ops under preemption bound 2 should yield \
         hundreds of schedules, got {}",
        report.schedules
    );
}

#[test]
fn passthrough_outside_a_model_behaves_like_std() {
    let m = Arc::new(Mutex::new(0u64));
    let l = Arc::new(RwLock::new(0u64));
    let a = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (m, l, a) = (Arc::clone(&m), Arc::clone(&l), Arc::clone(&a));
            loom::thread::spawn(move || {
                for _ in 0..100 {
                    *m.lock() += 1;
                    *l.write() += 1;
                    a.fetch_add(1, Ordering::Relaxed);
                }
                *l.read()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() <= 400);
    }
    assert_eq!(*m.lock(), 400);
    assert_eq!(*l.read(), 400);
    assert_eq!(a.load(Ordering::Relaxed), 400);
    assert!(m.try_lock().is_some());
}

#[test]
fn join_returns_the_task_value() {
    let report = loom::model(|| {
        let t = loom::thread::spawn(|| 40 + 2);
        assert_eq!(t.join().unwrap(), 42);
    });
    assert!(report.complete);
}

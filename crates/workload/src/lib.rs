//! # coic-workload
//!
//! Workload generation for the CoIC reproduction: Zipf popularity
//! ([`zipf`]), arrival processes ([`arrivals`]), user/zone/content locality
//! ([`mobility`]), the three application scenarios from the paper's
//! motivation ([`apps`]), and CSV trace exchange ([`trace_io`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod arrivals;
pub mod mobility;
pub mod trace_io;
pub mod zipf;

pub use apps::{
    summarize, ArenaMultiplayer, FlashCrowd, Request, RequestKind, SafeDrivingAr, TraceSummary,
    VrVideo,
};
pub use arrivals::{ArrivalProcess, Diurnal, Periodic, Poisson};
pub use mobility::{ContentId, Population, UserId, ZoneId, ZoneModel};
pub use trace_io::{from_csv, to_csv, TraceParseError};
pub use zipf::Zipf;

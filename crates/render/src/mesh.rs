//! Indexed triangle meshes — the "3D models" whose load latency Figure 2b
//! measures.

use crate::math::Vec3;
use serde::{Deserialize, Serialize};

/// A mesh vertex: position plus shading normal.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vertex {
    /// Object-space position.
    pub pos: Vec3,
    /// Unit shading normal.
    pub normal: Vec3,
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Componentwise minimum corner.
    pub min: Vec3,
    /// Componentwise maximum corner.
    pub max: Vec3,
}

/// An indexed triangle mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    /// Human-readable model name (carried through the CMF format).
    pub name: String,
    /// Vertex array.
    pub vertices: Vec<Vertex>,
    /// Triangle list: three indices per triangle.
    pub indices: Vec<u32>,
}

/// Why a mesh failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// Index array length is not a multiple of three.
    RaggedIndices(usize),
    /// An index points past the vertex array.
    IndexOutOfRange {
        /// Offending index value.
        index: u32,
        /// Number of vertices available.
        vertices: usize,
    },
    /// Mesh has no triangles.
    Empty,
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::RaggedIndices(n) => write!(f, "{n} indices is not a multiple of 3"),
            MeshError::IndexOutOfRange { index, vertices } => {
                write!(f, "index {index} out of range for {vertices} vertices")
            }
            MeshError::Empty => write!(f, "mesh has no triangles"),
        }
    }
}

impl std::error::Error for MeshError {}

impl Mesh {
    /// Create a mesh; does not validate (call [`Mesh::validate`]).
    pub fn new(name: impl Into<String>, vertices: Vec<Vertex>, indices: Vec<u32>) -> Self {
        Mesh {
            name: name.into(),
            vertices,
            indices,
        }
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// Structural validation: triangle list shape and index bounds.
    pub fn validate(&self) -> Result<(), MeshError> {
        if !self.indices.len().is_multiple_of(3) {
            return Err(MeshError::RaggedIndices(self.indices.len()));
        }
        if self.indices.is_empty() {
            return Err(MeshError::Empty);
        }
        for &i in &self.indices {
            if i as usize >= self.vertices.len() {
                return Err(MeshError::IndexOutOfRange {
                    index: i,
                    vertices: self.vertices.len(),
                });
            }
        }
        Ok(())
    }

    /// Bounding box over all vertices; `None` for an empty vertex array.
    pub fn aabb(&self) -> Option<Aabb> {
        let first = self.vertices.first()?.pos;
        let mut min = first;
        let mut max = first;
        for v in &self.vertices {
            min.x = min.x.min(v.pos.x);
            min.y = min.y.min(v.pos.y);
            min.z = min.z.min(v.pos.z);
            max.x = max.x.max(v.pos.x);
            max.y = max.y.max(v.pos.y);
            max.z = max.z.max(v.pos.z);
        }
        Some(Aabb { min, max })
    }

    /// Recompute per-vertex normals as the area-weighted average of
    /// adjacent face normals.
    pub fn recompute_normals(&mut self) {
        let mut acc = vec![Vec3::ZERO; self.vertices.len()];
        for tri in self.indices.chunks_exact(3) {
            let (a, b, c) = (tri[0] as usize, tri[1] as usize, tri[2] as usize);
            let pa = self.vertices[a].pos;
            let pb = self.vertices[b].pos;
            let pc = self.vertices[c].pos;
            // Cross product magnitude is twice the triangle area, so the
            // un-normalized face normal is already area-weighted.
            let face = (pb - pa).cross(pc - pa);
            acc[a] = acc[a] + face;
            acc[b] = acc[b] + face;
            acc[c] = acc[c] + face;
        }
        for (v, n) in self.vertices.iter_mut().zip(acc) {
            v.normal = n.normalized();
        }
    }

    /// Approximate in-memory footprint in bytes (what the edge cache charges
    /// for a loaded model).
    pub fn byte_size(&self) -> u64 {
        (self.vertices.len() * std::mem::size_of::<Vertex>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.name.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Mesh {
        Mesh::new(
            "tri",
            vec![
                Vertex {
                    pos: Vec3::new(0.0, 0.0, 0.0),
                    normal: Vec3::ZERO,
                },
                Vertex {
                    pos: Vec3::new(1.0, 0.0, 0.0),
                    normal: Vec3::ZERO,
                },
                Vertex {
                    pos: Vec3::new(0.0, 1.0, 0.0),
                    normal: Vec3::ZERO,
                },
            ],
            vec![0, 1, 2],
        )
    }

    #[test]
    fn valid_triangle_passes() {
        assert_eq!(tri().validate(), Ok(()));
        assert_eq!(tri().triangle_count(), 1);
    }

    #[test]
    fn ragged_indices_rejected() {
        let mut m = tri();
        m.indices.push(0);
        assert_eq!(m.validate(), Err(MeshError::RaggedIndices(4)));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let mut m = tri();
        m.indices = vec![0, 1, 7];
        assert_eq!(
            m.validate(),
            Err(MeshError::IndexOutOfRange {
                index: 7,
                vertices: 3
            })
        );
    }

    #[test]
    fn empty_mesh_rejected() {
        let m = Mesh::new("empty", vec![], vec![]);
        assert_eq!(m.validate(), Err(MeshError::Empty));
    }

    #[test]
    fn aabb_bounds_vertices() {
        let bb = tri().aabb().unwrap();
        assert_eq!(bb.min, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(bb.max, Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(Mesh::new("e", vec![], vec![]).aabb(), None);
    }

    #[test]
    fn recomputed_normals_point_out_of_plane() {
        let mut m = tri();
        m.recompute_normals();
        for v in &m.vertices {
            // CCW triangle in the xy plane: normals face +z.
            assert!((v.normal.z - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn byte_size_grows_with_geometry() {
        let small = tri();
        let mut big = tri();
        big.vertices.extend_from_within(..);
        big.indices.extend_from_within(..);
        assert!(big.byte_size() > small.byte_size());
    }
}

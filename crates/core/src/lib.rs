//! # coic-core
//!
//! CoIC — a cooperative edge-caching framework for mobile immersive
//! computing (reproduction of Lai et al., SIGCOMM Posters & Demos 2018).
//!
//! The pipeline (paper Figure 1): the client pre-processes its input into a
//! [`descriptor::FeatureDescriptor`] and queries the edge; the edge looks
//! the descriptor up in its cache (approximately, under a distance
//! threshold, for recognition; exactly, by content hash, for 3D models and
//! panoramas); a hit returns the cached result immediately, a miss forwards
//! the task to the cloud and inserts the result.
//!
//! * [`descriptor`], [`task`], [`protocol`] — the data plane,
//! * [`services`] — client / edge / cloud logic, transport-independent,
//! * [`shared_edge`] — the edge service behind shared references (sharded
//!   caches) for the multi-threaded live stack,
//! * [`compute`] — per-tier cost models,
//! * [`config`] — the sim/live shared configuration core and the typed
//!   builders for [`simrun::SimConfig`] / [`netrun::NetConfig`],
//! * [`content`] — deterministic model/panorama libraries,
//! * [`engine`] — the sans-IO orchestration core: clock-agnostic state
//!   machines for the client request lifecycle and the edge's upstream
//!   leg, shared by the simulator and the live stack,
//! * [`simrun`] — deterministic discrete-event experiment driver,
//! * [`netrun`] — the same stack over real TCP sockets,
//! * [`qoe`] — latency/hit/accuracy reporting,
//! * [`telemetry`] — Decision→trace glue onto the shared `coic-obs`
//!   recorder (spans, events, metrics registry),
//! * [`robust`] — facade re-exporting the engine's retry/breaker/stats,
//! * [`adaptive`] — online threshold tuning via shadow verification,
//! * [`cluster`] — cooperative multi-edge tier: consistent-hash
//!   partitioning, bounded peer fan-out, hot-entry replication, and
//!   peer-before-cloud failover,
//! * [`layercache`] — §4 extension: per-DNN-layer reuse,
//! * [`privacy`] — §4 extension: descriptor privacy transforms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod cluster;
pub mod compute;
pub mod config;
pub mod content;
pub mod descriptor;
pub mod engine;
pub mod layercache;
pub mod netrun;
pub mod privacy;
pub mod protocol;
pub mod qoe;
pub mod robust;
pub mod services;
pub mod shared_edge;
pub mod simrun;
pub mod task;
pub mod telemetry;

pub use adaptive::{AdaptiveConfig, AdaptiveThreshold};
pub use cluster::{ClusterConfig, ClusterSnapshot, ClusterState, ClusterStats, HashRing};
pub use compute::ComputeConfig;
pub use config::{CommonConfig, DriverKind, EvloopConfig, NetConfigBuilder, SimConfigBuilder};
pub use content::{ModelLibrary, PanoLibrary, PanoSource};
pub use descriptor::FeatureDescriptor;
pub use engine::{
    AdmissionConfig, AdmissionController, BrownoutConfig, BrownoutState, ClientEngine, Clock,
    Decision, Effect, EngineConfig, FaultSchedule, OverloadControl, ReplyKind, SimClock, TimerKind,
    UpstreamGate, WallClock,
};
pub use layercache::{LayerCache, LayerOutcome};
pub use protocol::{Msg, ProtoError};
pub use qoe::{reduction_percent, Path, QoeReport, Record};
pub use robust::{BreakerState, CircuitBreaker, RetryPolicy, RobustnessSnapshot, RobustnessStats};
pub use services::{
    ClientConfig, ClientLogic, CloudService, EdgeConfig, EdgeReply, EdgeService, PreparedRequest,
};
pub use shared_edge::SharedEdgeService;
pub use simrun::{compare, run, run_instrumented, run_traced, Mode, SimConfig};
pub use task::{RecognitionResult, TaskRequest, TaskResult, ANNOTATION_BYTES};
pub use telemetry::{path_label, record_decision};

//! HNSW-style layered proximity graph.
//!
//! A hierarchical navigable-small-world graph: every entry lives at
//! level 0; a geometrically-thinning subset also appears on higher
//! levels, which act as express lanes. A lookup greedily descends from
//! the top-level entry point, then runs a bounded best-first beam
//! (`ef_search`) on the dense level-0 graph.
//!
//! The usual HNSW ingredient this build *omits* is randomness: the level
//! of a node is a deterministic function of its id (FNV hash, geometric
//! with p = 1/4), and the graph is built by inserting slots in ascending
//! id order, so rebuilding the same entry set always yields the same
//! graph — which the snapshot rebuild path and the sim's determinism
//! guarantees require. Ties everywhere break by slot (= ascending id).

use super::{better, canonical_items, AnnIndex, ProbeStats};
use crate::digest::fnv1a64;
use coic_vision::distance::l2;
use coic_vision::features::FeatureVec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hard cap on graph levels (a geometric(1/4) level beyond this has
/// probability < 4^-12; the cap just bounds the `links` allocation).
const MAX_LEVEL: usize = 12;

/// Salt for the level hash so levels decorrelate from other id-keyed
/// hashes in the tree.
const LEVEL_SALT: u64 = 0xC01C_4E5F_0000_0002;

/// Total-ordered f32 distance for heap use (`total_cmp` semantics).
#[derive(PartialEq, Clone, Copy)]
struct D(f32);

impl Eq for D {}

impl PartialOrd for D {
    fn partial_cmp(&self, other: &D) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for D {
    fn cmp(&self, other: &D) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Deterministic level for an id: geometric with p = 1/4.
fn level_of(id: u64) -> usize {
    let mut h = fnv1a64(&(id ^ LEVEL_SALT).to_le_bytes());
    let mut lvl = 0;
    while h & 3 == 3 && lvl < MAX_LEVEL {
        lvl += 1;
        h >>= 2;
    }
    lvl
}

/// An immutable HNSW-style index (see the module docs).
pub struct HnswIndex {
    dim: usize,
    max_links: usize,
    ef_search: usize,
    /// Entries sorted by id; a "slot" is a position in this array.
    items: Vec<(u64, FeatureVec)>,
    /// `links[level][slot]` → neighbour slots (empty above a node's level).
    links: Vec<Vec<Vec<u32>>>,
    /// Slot of the top-level entry point (0 when empty).
    entry: u32,
    /// Highest level any node reached.
    top_level: usize,
}

impl HnswIndex {
    /// Build over `items` (sorted internally; ids unique).
    ///
    /// # Panics
    /// Panics if `dim`, `max_links` or `ef_search` is zero, or an item's
    /// dimensionality disagrees with `dim`.
    pub fn new(
        dim: usize,
        max_links: usize,
        ef_search: usize,
        items: Vec<(u64, FeatureVec)>,
    ) -> HnswIndex {
        assert!(
            max_links > 0 && ef_search > 0,
            "HNSW parameters must be positive"
        );
        let items = canonical_items(dim, items);
        let n = items.len();
        let levels: Vec<usize> = items.iter().map(|(id, _)| level_of(*id)).collect();
        let top = levels.iter().copied().max().unwrap_or(0);
        let mut index = HnswIndex {
            dim,
            max_links,
            ef_search,
            items,
            links: (0..=top).map(|_| vec![Vec::new(); n]).collect(),
            entry: 0,
            top_level: 0,
        };
        // Insert in ascending-slot (= ascending-id) order: determinism.
        let ef_build = ef_search.max(2 * max_links).max(16);
        let mut build_stats = ProbeStats::default();
        let mut first = true;
        for (slot, &lvl) in levels.iter().enumerate() {
            if first {
                index.entry = slot as u32;
                index.top_level = lvl;
                first = false;
                continue;
            }
            index.insert_node(slot as u32, lvl, ef_build, &mut build_stats);
            if lvl > index.top_level {
                index.top_level = lvl;
                index.entry = slot as u32;
            }
        }
        index
    }

    /// Max neighbours per node at a level (level 0 keeps twice as many —
    /// the standard M0 = 2M rule).
    fn max_conn(&self, level: usize) -> usize {
        if level == 0 {
            self.max_links * 2
        } else {
            self.max_links
        }
    }

    fn dist(&self, q: &FeatureVec, slot: u32, stats: &mut ProbeStats) -> f32 {
        stats.distance_evals += 1;
        l2(q, &self.items[slot as usize].1)
    }

    /// Greedy closest-neighbour walk on one level, starting at `ep`.
    fn greedy(
        &self,
        q: &FeatureVec,
        mut ep: u32,
        mut ep_d: f32,
        level: usize,
        stats: &mut ProbeStats,
    ) -> (u32, f32) {
        loop {
            let mut improved = false;
            stats.buckets += 1;
            for &nb in &self.links[level][ep as usize] {
                let d = self.dist(q, nb, stats);
                if d < ep_d || (d == ep_d && nb < ep) {
                    ep = nb;
                    ep_d = d;
                    improved = true;
                }
            }
            if !improved {
                return (ep, ep_d);
            }
        }
    }

    /// Bounded best-first beam on one level; returns up to `ef`
    /// candidates sorted ascending by (distance, slot).
    ///
    /// `stop_at` is the satisficing radius: the first node found at or
    /// under it is returned alone, immediately — for a threshold cache
    /// any in-radius entry is a valid hit, so the beam needn't prove it
    /// found the nearest one. Pass `f32::NEG_INFINITY` to disable (no
    /// distance is below it).
    #[allow(clippy::too_many_arguments)]
    fn search_layer(
        &self,
        q: &FeatureVec,
        ep: u32,
        ep_d: f32,
        ef: usize,
        level: usize,
        stop_at: f32,
        visited: &mut [bool],
        stats: &mut ProbeStats,
    ) -> Vec<(f32, u32)> {
        let mut candidates: BinaryHeap<Reverse<(D, u32)>> = BinaryHeap::new();
        let mut results: BinaryHeap<(D, u32)> = BinaryHeap::new();
        visited[ep as usize] = true;
        candidates.push(Reverse((D(ep_d), ep)));
        results.push((D(ep_d), ep));
        if ep_d <= stop_at {
            return vec![(ep_d, ep)];
        }
        while let Some(Reverse((D(cd), c))) = candidates.pop() {
            if let Some(&(D(worst), _)) = results.peek() {
                if results.len() >= ef && cd > worst {
                    break;
                }
            }
            stats.buckets += 1;
            for &nb in &self.links[level][c as usize] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let d = self.dist(q, nb, stats);
                let keep = match results.peek() {
                    Some(&(D(worst), _)) => results.len() < ef || d < worst,
                    None => true,
                };
                if d <= stop_at {
                    return vec![(d, nb)];
                }
                if keep {
                    candidates.push(Reverse((D(d), nb)));
                    results.push((D(d), nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, u32)> = results.into_iter().map(|(D(d), s)| (d, s)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }

    /// Build-time insertion of one node at `lvl`.
    fn insert_node(&mut self, slot: u32, lvl: usize, ef_build: usize, stats: &mut ProbeStats) {
        let q = self.items[slot as usize].1.clone();
        let mut ep = self.entry;
        let mut ep_d = self.dist(&q, ep, stats);
        // Express descent through levels above the new node's.
        for level in (lvl + 1..=self.top_level).rev() {
            let (e, d) = self.greedy(&q, ep, ep_d, level, stats);
            ep = e;
            ep_d = d;
        }
        // Link on every level the node occupies.
        for level in (0..=lvl.min(self.top_level)).rev() {
            let mut visited = vec![false; self.items.len()];
            let found = self.search_layer(
                &q,
                ep,
                ep_d,
                ef_build,
                level,
                f32::NEG_INFINITY,
                &mut visited,
                stats,
            );
            let cap = self.max_conn(level);
            let neighbours = self.select_neighbours(&found, cap, stats);
            self.links[level][slot as usize] = neighbours.clone();
            for nb in neighbours {
                self.links[level][nb as usize].push(slot);
                if self.links[level][nb as usize].len() > cap {
                    self.prune(nb, level, stats);
                }
            }
            if let Some(&(d, s)) = found.first() {
                ep = s;
                ep_d = d;
            }
        }
    }

    /// Heuristic neighbour selection (the HNSW paper's Algorithm 4):
    /// walk candidates in ascending distance and keep one only if it is
    /// closer to the query node than to every neighbour already kept,
    /// then backfill with the nearest rejects up to `cap`.
    ///
    /// Pure closest-`cap` selection wires a node exclusively into its own
    /// descriptor cluster; with no bridges between clusters the greedy
    /// beam cannot cross them and recall collapses on exactly the
    /// clustered near-duplicate streams the edge cache serves. Diversity
    /// selection keeps inter-cluster edges.
    fn select_neighbours(
        &self,
        found: &[(f32, u32)],
        cap: usize,
        stats: &mut ProbeStats,
    ) -> Vec<u32> {
        let mut kept: Vec<(f32, u32)> = Vec::with_capacity(cap);
        let mut rejected: Vec<u32> = Vec::new();
        for &(d, c) in found {
            if kept.len() >= cap {
                break;
            }
            let diverse = kept.iter().all(|&(_, k)| {
                let between = l2(&self.items[c as usize].1, &self.items[k as usize].1);
                stats.distance_evals += 1;
                between > d
            });
            if diverse {
                kept.push((d, c));
            } else {
                rejected.push(c);
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|(_, s)| s).collect();
        // Backfill with the closest rejects: dropping them entirely can
        // leave near-duplicate nodes under-linked.
        for c in rejected {
            if out.len() >= cap {
                break;
            }
            out.push(c);
        }
        out
    }

    /// Trim a node's neighbour list back to the cap with the same
    /// diversity heuristic used at insert time (ties by slot —
    /// deterministic).
    fn prune(&mut self, slot: u32, level: usize, stats: &mut ProbeStats) {
        let center = self.items[slot as usize].1.clone();
        let mut scored: Vec<(f32, u32)> = self.links[level][slot as usize]
            .iter()
            .map(|&nb| (self.dist(&center, nb, stats), nb))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.links[level][slot as usize] =
            self.select_neighbours(&scored, self.max_conn(level), stats);
    }

    /// Max links per node per upper layer.
    pub fn max_links(&self) -> usize {
        self.max_links
    }

    /// Level-0 beam width.
    pub fn ef_search(&self) -> usize {
        self.ef_search
    }
}

impl AnnIndex for HnswIndex {
    fn nearest(
        &self,
        q: &FeatureVec,
        within: f32,
        accept: &dyn Fn(u64) -> bool,
        stats: &mut ProbeStats,
    ) -> Option<(u64, f32)> {
        if self.items.is_empty() {
            return None;
        }
        assert_eq!(q.dim(), self.dim, "query dim mismatch");
        let mut ep = self.entry;
        let mut ep_d = self.dist(q, ep, stats);
        for level in (1..=self.top_level).rev() {
            let (e, d) = self.greedy(q, ep, ep_d, level, stats);
            ep = e;
            ep_d = d;
        }
        // A finite `within` arms the satisficing early exit; infinity
        // must not (every distance is ≤ ∞, which would stop the beam at
        // the first node and ruin the unbounded-nearest answer).
        let stop_at = if within.is_finite() {
            within
        } else {
            f32::NEG_INFINITY
        };
        let mut visited = vec![false; self.items.len()];
        let found = self.search_layer(q, ep, ep_d, self.ef_search, 0, stop_at, &mut visited, stats);
        // `found` ascends by (distance, slot) and slots ascend by id, so
        // the first accepted entry is the best with smallest-id ties.
        let mut best: Option<(u64, f32)> = None;
        for (d, slot) in found {
            let id = self.items[slot as usize].0;
            if accept(id) {
                best = Some((id, d));
                break;
            }
        }
        if best.is_none_or(|(_, d)| d > within) {
            // Verify-on-far: unlike multi-probe LSH — whose probe set
            // provably covers the low-margin bit flips a near-duplicate
            // can cause — a beam that stopped short proves nothing about
            // the rest of the graph. When it surfaced no accepted
            // candidate inside the caller's radius, confirm the miss by
            // exact scan so the hit/miss decision matches brute force.
            // (With `within = ∞` this triggers only when everything was
            // filtered out.)
            stats.fallback_scans += 1;
            for (id, v) in &self.items {
                if !accept(*id) {
                    continue;
                }
                stats.distance_evals += 1;
                let d = l2(q, v);
                if better((*id, d), best) {
                    best = Some((*id, d));
                }
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn family(&self) -> &'static str {
        "hnsw"
    }
}

#[cfg(test)]
mod tests {
    use super::super::{mix64, unit_f32, AnnFamily, LinearAnn};
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    fn clustered(dim: usize, clusters: usize, per: usize) -> Vec<(u64, FeatureVec)> {
        let mut out = Vec::new();
        let mut id = 0u64;
        for c in 0..clusters {
            let center: Vec<f32> = (0..dim)
                .map(|d| unit_f32(0xFACE ^ mix64((c * dim + d) as u64)))
                .collect();
            for m in 0..per {
                let vec: Vec<f32> = center
                    .iter()
                    .enumerate()
                    .map(|(d, &x)| x + 0.03 * unit_f32(mix64((id as usize * dim + d + m) as u64)))
                    .collect();
                out.push((id, FeatureVec::new(vec).normalized()));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn finds_stored_vectors_exactly() {
        let items = clustered(16, 6, 8);
        let idx = HnswIndex::new(16, 8, 24, items.clone());
        for (id, vec) in &items {
            let mut stats = ProbeStats::default();
            let (got, d) = idx
                .nearest(vec, f32::INFINITY, &|_| true, &mut stats)
                .expect("index is non-empty");
            assert_eq!(got, *id, "stored vector {id} not found");
            assert!(d < 1e-6);
        }
    }

    #[test]
    fn agrees_with_linear_on_clustered_queries() {
        let dim = 32;
        let items = clustered(dim, 10, 12);
        let hnsw = HnswIndex::new(dim, 8, 24, items.clone());
        let lin = LinearAnn::new(dim, items.clone());
        let mut agree = 0;
        let n = items.len();
        for (id, stored) in &items {
            let q: Vec<f32> = stored
                .as_slice()
                .iter()
                .enumerate()
                .map(|(d, &x)| x + 0.01 * unit_f32(mix64(*id ^ d as u64)))
                .collect();
            let q = FeatureVec::new(q).normalized();
            let mut s1 = ProbeStats::default();
            let mut s2 = ProbeStats::default();
            let a = hnsw
                .nearest(&q, f32::INFINITY, &|_| true, &mut s1)
                .map(|(_, d)| d);
            let b = lin
                .nearest(&q, f32::INFINITY, &|_| true, &mut s2)
                .map(|(_, d)| d);
            if let (Some(da), Some(db)) = (a, b) {
                if (da - db).abs() < 0.05 {
                    agree += 1;
                }
            }
        }
        assert!(agree * 100 >= n * 95, "recall too low: {agree}/{n}");
    }

    #[test]
    fn beam_probes_fewer_candidates_than_linear() {
        let dim = 32;
        let items = clustered(dim, 16, 16);
        let n = items.len() as u64;
        let idx = HnswIndex::new(dim, 8, 24, items.clone());
        let mut stats = ProbeStats::default();
        let mut lookups = 0u64;
        for (_, q) in items.iter().step_by(7) {
            let _ = idx.nearest(q, f32::INFINITY, &|_| true, &mut stats);
            lookups += 1;
        }
        assert!(
            stats.distance_evals < lookups * n / 2,
            "beam evaluated {} distances over {lookups} lookups on {n} items",
            stats.distance_evals
        );
    }

    #[test]
    fn single_entry_and_empty_cases() {
        let empty = HnswIndex::new(4, 4, 8, Vec::new());
        let mut stats = ProbeStats::default();
        assert_eq!(
            empty.nearest(&v(&[0.0; 4]), f32::INFINITY, &|_| true, &mut stats),
            None
        );
        let one = HnswIndex::new(4, 4, 8, vec![(3, v(&[1.0, 0.0, 0.0, 0.0]))]);
        let (id, _) = one
            .nearest(
                &v(&[0.9, 0.1, 0.0, 0.0]),
                f32::INFINITY,
                &|_| true,
                &mut stats,
            )
            .expect("single entry must be found");
        assert_eq!(id, 3);
    }

    #[test]
    fn filtered_beam_falls_back_rather_than_miss() {
        let items = clustered(8, 2, 6);
        let idx = HnswIndex::new(8, 4, 8, items.clone());
        let keep = items.last().expect("non-empty").0;
        let mut stats = ProbeStats::default();
        let (id, _) = idx
            .nearest(&items[0].1, f32::INFINITY, &|i| i == keep, &mut stats)
            .expect("one id is accepted");
        assert_eq!(id, keep);
    }

    #[test]
    fn rebuild_is_deterministic() {
        let items = clustered(16, 4, 8);
        let a = HnswIndex::new(16, 8, 16, items.clone());
        let b = HnswIndex::new(16, 8, 16, items.clone());
        for (_, q) in &items {
            let mut s1 = ProbeStats::default();
            let mut s2 = ProbeStats::default();
            assert_eq!(
                a.nearest(q, f32::INFINITY, &|_| true, &mut s1),
                b.nearest(q, f32::INFINITY, &|_| true, &mut s2)
            );
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn levels_are_deterministic_and_geometric() {
        let mut counts = [0usize; 4];
        for id in 0..4096u64 {
            let l = level_of(id).min(3);
            assert_eq!(level_of(id), level_of(id));
            counts[l] += 1;
        }
        // p = 1/4: roughly 3/4 of nodes at level 0, a thinning tail above.
        assert!(counts[0] > 2500, "level-0 share too small: {counts:?}");
        assert!(counts[1] < counts[0] && counts[2] < counts[1]);
    }

    #[test]
    fn builds_through_family_config() {
        let fam = AnnFamily::Hnsw {
            max_links: 4,
            ef_search: 8,
        };
        let idx = fam.build(4, vec![(1, v(&[1.0, 0.0, 0.0, 0.0]))]);
        assert_eq!(idx.family(), "hnsw");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "HNSW parameters must be positive")]
    fn zero_ef_rejected() {
        let _ = HnswIndex::new(4, 4, 0, Vec::new());
    }
}

//! **Ext I** — sequential prefetching for VR panorama streams.
//!
//! VR video frames arrive in playhead order, so the edge can fetch ahead:
//! serving frame `f` triggers background fetches of `f+1..=f+depth`. For a
//! *lone* viewer this manufactures the redundancy that co-located viewers
//! get for free — the "cooperation" is with the viewer's own future.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_prefetch`

use coic_core::simrun::{run, SimConfig};
use coic_workload::{Population, VrVideo, ZoneId};

fn main() {
    println!("Ext I — panorama prefetching (lone viewer, 40 frames @10 fps)\n");
    let trace = VrVideo {
        population: Population::colocated(1, ZoneId(0)),
        frame_interval_ns: 100_000_000,
        max_start_skew_frames: 0,
        user_stagger_ns: 0,
        frames_per_user: 40,
    }
    .generate(3);

    println!(
        "{:>6} | {:>6} | {:>10} {:>9} | {:>8}",
        "depth", "hit%", "mean-lat", "p99-lat", "WAN MB"
    );
    coic_bench::rule(52);
    let mut base_mean = 0.0;
    for depth in [0u32, 1, 2, 4, 8] {
        let cfg = SimConfig {
            prefetch_depth: depth,
            ..SimConfig::default()
        };
        let mut report = run(&trace, &cfg);
        if depth == 0 {
            base_mean = report.mean_latency_ms();
        }
        println!(
            "{:>6} | {:>5.1}% | {:>7.1} ms {:>6.1} ms | {:>7.2}",
            depth,
            report.hit_ratio() * 100.0,
            report.mean_latency_ms(),
            report.latency_ms.p99(),
            report.wan_bytes as f64 / 1e6,
        );
    }
    coic_bench::rule(52);
    println!("baseline (depth 0) mean: {base_mean:.1} ms");
    println!("\nDepth 1 already converts almost every fetch into a hit once the");
    println!("pipeline fills. Deeper prefetch adds WAN traffic and — because the");
    println!("burst of speculative fetches competes with the demand fetch on the");
    println!("same uplink — actually *worsens* tail latency at this frame rate:");
    println!("prefetch depth should match the playhead rate, not exceed it.");
}

//! Single-mutex cache wrappers: the original thread-safe layer for the
//! real-TCP deployment, kept as the **contention baseline** that `coic
//! bench` measures [`crate::sharded`] against.
//!
//! Two known costs make these unsuitable for the live hot path and are
//! exactly what the sharded wrappers fix:
//!
//! 1. **One global lock.** Every lookup and insert — across all client
//!    connection threads — serializes on a single `Mutex`, including
//!    read-only hits that could proceed in parallel.
//! 2. **Deep clone under the lock.** [`SharedExactCache::lookup`] runs
//!    `V::clone` while holding the mutex, so a multi-megabyte 3D-model
//!    payload copy stalls every other thread for its full duration.
//!    [`crate::sharded::ShardedExactCache`] stores `Arc<V>` internally and
//!    drops the shard guard before any payload clone.
//!
//! The live edge ([`spawn_edge`]) now uses the sharded wrappers; these stay
//! for single-threaded callers and for the mutex-vs-sharded benchmark.
//!
//! [`spawn_edge`]: ../../coic_core/netrun/fn.spawn_edge.html

use crate::approx::{ApproxCache, ApproxLookup};
use crate::digest::Digest;
use crate::exact::ExactCache;
use crate::stats::CacheStats;
use coic_vision::features::FeatureVec;
use parking_lot::Mutex;
use std::sync::Arc;

/// A shareable, mutex-guarded exact cache.
#[derive(Clone)]
pub struct SharedExactCache<V> {
    inner: Arc<Mutex<ExactCache<V>>>,
}

impl<V: Clone> SharedExactCache<V> {
    /// Wrap an exact cache.
    pub fn new(cache: ExactCache<V>) -> Self {
        SharedExactCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Clone-out lookup. Note the clone runs **under the mutex** — cheap
    /// for small values, a serialization bottleneck for large payloads
    /// (see the module docs; the sharded wrapper clones after unlock).
    pub fn lookup(&self, key: &Digest, now_ns: u64) -> Option<V> {
        self.inner.lock().lookup(key, now_ns).cloned()
    }

    /// Insert a value.
    pub fn insert(&self, key: Digest, value: V, size: u64, now_ns: u64) {
        self.inner.lock().insert(key, value, size, now_ns);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *self.inner.lock().stats()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A shareable, mutex-guarded approximate cache.
#[derive(Clone)]
pub struct SharedApproxCache<V> {
    inner: Arc<Mutex<ApproxCache<V>>>,
}

impl<V: Clone> SharedApproxCache<V> {
    /// Wrap an approximate cache.
    pub fn new(cache: ApproxCache<V>) -> Self {
        SharedApproxCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Threshold lookup; returns the matched value and distance on hit.
    pub fn lookup(&self, query: &FeatureVec, now_ns: u64) -> Option<(V, f32)> {
        let mut guard = self.inner.lock();
        match guard.lookup(query, now_ns) {
            ApproxLookup::Hit { id, distance } => guard.value(id).cloned().map(|v| (v, distance)),
            ApproxLookup::Miss { .. } => None,
        }
    }

    /// Insert a descriptor/result pair.
    pub fn insert(&self, descriptor: FeatureVec, value: V, size: u64, now_ns: u64) {
        self.inner.lock().insert(descriptor, value, size, now_ns);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *self.inner.lock().stats()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::IndexKind;
    use crate::policy::PolicyKind;

    #[test]
    fn shared_exact_across_threads() {
        let cache: SharedExactCache<String> =
            SharedExactCache::new(ExactCache::new(1 << 20, PolicyKind::Lru, None));
        let key = Digest::of(b"model");
        cache.insert(key, "loaded".into(), 100, 0);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = cache.clone();
                std::thread::spawn(move || c.lookup(&key, 0).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "loaded");
        }
        assert_eq!(cache.stats().hits, 8);
    }

    #[test]
    fn shared_approx_concurrent_inserts() {
        let cache: SharedApproxCache<u64> = SharedApproxCache::new(ApproxCache::new(
            1 << 20,
            PolicyKind::Lru,
            0.25,
            IndexKind::Linear,
            2,
        ));
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let c = cache.clone();
                std::thread::spawn(move || {
                    c.insert(FeatureVec::new(vec![i as f32 * 10.0, 0.0]), i, 50, 0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 4);
        for i in 0..4u64 {
            let (v, d) = cache
                .lookup(&FeatureVec::new(vec![i as f32 * 10.0 + 0.1, 0.0]), 0)
                .unwrap();
            assert_eq!(v, i);
            assert!(d < 0.2);
        }
    }
}

//! **Ext L** — where should the DNN run? Caching × execution-tier matrix.
//!
//! The paper composes with "existing offloading approaches and local
//! optimizations"; this experiment charts the whole design square for the
//! recognition workload:
//!
//! * origin/cloud — the paper's baseline (full offload, no cache),
//! * origin/edge  — classic edge computing (DNN on the edge box, no cache),
//! * CoIC/cloud   — the paper's system,
//! * CoIC/edge    — caching *and* edge inference.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_exectier`

use coic_bench::{base_config, fig2a_trace};
use coic_core::simrun::{run, ExecTier, Mode, SimConfig};

fn main() {
    let trace = fig2a_trace(200, 42);
    println!("Ext L — caching × execution tier (200 recognition requests)\n");
    println!(
        "{:<14} | {:>10} {:>9} | {:>6} {:>8} | {:>8}",
        "system", "mean-lat", "p99-lat", "hit%", "WAN MB", "accuracy"
    );
    coic_bench::rule(70);
    let systems = [
        ("origin/cloud", Mode::Origin, ExecTier::Cloud),
        ("origin/edge", Mode::Origin, ExecTier::Edge),
        ("CoIC/cloud", Mode::CoIc, ExecTier::Cloud),
        ("CoIC/edge", Mode::CoIc, ExecTier::Edge),
    ];
    for (label, mode, tier) in systems {
        let cfg = SimConfig {
            mode,
            exec_tier: tier,
            ..base_config()
        };
        let mut report = run(&trace, &cfg);
        println!(
            "{:<14} | {:>7.1} ms {:>6.1} ms | {:>5.1}% {:>8.2} | {:>7.1}%",
            label,
            report.mean_latency_ms(),
            report.latency_ms.p99(),
            report.hit_ratio() * 100.0,
            report.wan_bytes as f64 / 1e6,
            report.accuracy.unwrap_or(0.0) * 100.0
        );
    }
    coic_bench::rule(70);
    println!("Edge inference removes the WAN from the miss path; caching removes");
    println!("inference itself from the hit path. They compose: CoIC/edge gets");
    println!("cache-hit latency *and* zero recognition WAN traffic.");
}

//! The `coic bench` performance harness.
//!
//! Two layers of measurement, emitted as one canonical `BENCH_edge.json`:
//!
//! 1. **Pure-cache microbenchmarks** — the sharded wrappers
//!    ([`coic_cache::sharded`]) against the single-mutex baseline
//!    ([`coic_cache::concurrent`]) on identical workloads: exact lookups
//!    over ~4 KiB payloads with a Zipf-skewed key stream, exact inserts,
//!    and approximate (descriptor) lookups under both linear and LSH
//!    indexes, each at 1/4/16 threads. Lookups go through each wrapper's
//!    production read path: the mutex wrapper clones the payload under its
//!    lock, the sharded wrapper hands out an `Arc` from a shard read lock
//!    — that asymmetry *is* the design difference being measured.
//! 2. **Loopback edge end-to-end** — a real [`spawn_edge`]/[`spawn_cloud`]
//!    pair with M concurrent [`NetClient`]s re-requesting a shared
//!    panorama pool; per-request wall latencies and the edge's merged
//!    cache hit ratio.
//!
//! Every cell reports p50/p95/p99 per-op nanoseconds, throughput and hit
//! ratio. The derived `speedup_sharded_vs_mutex` (exact lookups at the
//! highest thread count) is the number the CI regression gate watches:
//! machine-speed-independent because both sides run on the same box in the
//! same process.
//!
//! [`spawn_edge`]: coic_core::netrun::spawn_edge
//! [`spawn_cloud`]: coic_core::netrun::spawn_cloud
//! [`NetClient`]: coic_core::netrun::NetClient

use crate::json::{self, num, obj, s, Json};
use coic_cache::approx::ApproxCache;
use coic_cache::{
    Digest, ExactCache, IndexKind, PolicyKind, ShardedApproxCache, ShardedExactCache,
    SharedApproxCache, SharedExactCache,
};
use coic_core::compute::ComputeConfig;
use coic_core::content::{ModelLibrary, PanoLibrary};
use coic_core::netrun::{spawn_cloud, spawn_edge_with, NetClient, NetConfig};
use coic_core::services::{ClientConfig, EdgeConfig};
use coic_obs::Telemetry;
use coic_vision::{FeatureVec, ObjectClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Payload size for exact-cache cells: the ballpark of a small 3D model
/// or encoded panorama tile, big enough that cloning under a lock hurts.
const PAYLOAD_BYTES: usize = 4096;

/// Shards used by the sharded cells (the live default).
const BENCH_SHARDS: usize = coic_cache::DEFAULT_SHARDS;

/// One measured cell of the benchmark grid.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label, e.g. `exact_lookup/sharded`.
    pub workload: String,
    /// NN index for approximate cells (`linear`/`lsh`), `-` otherwise.
    pub index: String,
    /// Concurrent worker threads (or clients, for the edge cell).
    pub threads: usize,
    /// Total operations measured.
    pub ops: u64,
    /// Median per-op latency, ns.
    pub p50_ns: u64,
    /// 95th percentile per-op latency, ns.
    pub p95_ns: u64,
    /// 99th percentile per-op latency, ns.
    pub p99_ns: u64,
    /// Operations per wall-clock second across all threads.
    pub throughput_ops_per_sec: f64,
    /// Fraction of lookups that hit (1.0 for insert-only cells).
    pub hit_ratio: f64,
}

/// A full benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Schema tag (`coic-bench/v1`).
    pub schema: String,
    /// `git rev-parse --short HEAD`, or `unknown` outside a checkout.
    pub git_rev: String,
    /// Seed every random stream derives from.
    pub seed: u64,
    /// Whether this was a `--quick` run (smaller op counts).
    pub quick: bool,
    /// All measured cells.
    pub results: Vec<CellResult>,
    /// Exact-lookup throughput, sharded over mutex, at the highest thread
    /// count — the regression-gated number.
    pub speedup_sharded_vs_mutex: f64,
}

/// Thread counts each microbench cell sweeps.
pub const THREAD_STEPS: [usize; 3] = [1, 4, 16];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Repetitions per microbench cell; the best (highest-throughput) one is
/// reported. External noise — scheduler preemption, a neighbouring VM —
/// only ever *subtracts* throughput, so best-of-N converges to the
/// machine's real capability and is far more run-to-run stable than any
/// single repetition.
const CELL_REPEATS: usize = 5;

/// Run `ops_per_thread` timed operations on each of `threads` workers,
/// [`CELL_REPEATS`] times, keeping the best repetition.
/// `op(thread_idx, i)` returns whether the operation counts as a hit.
fn run_cell<F>(
    workload: &str,
    index: &str,
    threads: usize,
    ops_per_thread: u64,
    op: F,
) -> CellResult
where
    F: Fn(usize, u64) -> bool + Sync,
{
    (0..CELL_REPEATS)
        .map(|_| measure_once(workload, index, threads, ops_per_thread, &op))
        .max_by(|a, b| {
            a.throughput_ops_per_sec
                .total_cmp(&b.throughput_ops_per_sec)
        })
        .expect("CELL_REPEATS > 0")
}

/// One timed repetition of a cell (percentiles over all per-op latencies).
fn measure_once<F>(
    workload: &str,
    index: &str,
    threads: usize,
    ops_per_thread: u64,
    op: F,
) -> CellResult
where
    F: Fn(usize, u64) -> bool + Sync,
{
    let started = Instant::now();
    let mut all_samples: Vec<u64> = Vec::with_capacity(threads * ops_per_thread as usize);
    let mut hits = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let op = &op;
                scope.spawn(move || {
                    // Untimed warm-up: fault in pages, warm branch
                    // predictors and the allocator before measuring.
                    for i in 0..(ops_per_thread / 10).min(512) {
                        let _ = op(t, i);
                    }
                    let mut samples = Vec::with_capacity(ops_per_thread as usize);
                    let mut hits = 0u64;
                    for i in 0..ops_per_thread {
                        let t0 = Instant::now();
                        if op(t, i) {
                            hits += 1;
                        }
                        samples.push(t0.elapsed().as_nanos() as u64);
                    }
                    (samples, hits)
                })
            })
            .collect();
        for h in handles {
            let (samples, h_hits) = h.join().expect("bench worker panicked");
            all_samples.extend(samples);
            hits += h_hits;
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    all_samples.sort_unstable();
    let ops = all_samples.len() as u64;
    CellResult {
        workload: workload.to_string(),
        index: index.to_string(),
        threads,
        ops,
        p50_ns: percentile(&all_samples, 0.50),
        p95_ns: percentile(&all_samples, 0.95),
        p99_ns: percentile(&all_samples, 0.99),
        throughput_ops_per_sec: if elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        hit_ratio: if ops == 0 {
            0.0
        } else {
            hits as f64 / ops as f64
        },
    }
}

/// Zipf-flavoured key index in `0..n`: quadratic skew toward low indexes
/// (a cheap stand-in with the property that matters — a hot head and a
/// long tail), deterministic per thread/seed.
fn skewed_index(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.random();
    ((u * u) * n as f64) as usize
}

fn payload(tag: usize) -> Vec<u8> {
    vec![(tag % 251) as u8; PAYLOAD_BYTES]
}

fn key(tag: usize) -> Digest {
    Digest::of(&(tag as u64).to_le_bytes())
}

/// Per-thread Zipf-skewed probe digests, generated *before* the timed
/// region: the measured op must be only the cache call, not the RNG and
/// SHA-256 work of producing the probe. ~10% of probes target absent keys
/// so the miss path is exercised too.
fn probe_streams(seed: u64, threads: usize, ops: u64, n_keys: usize) -> Vec<Vec<Digest>> {
    (0..threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64) << 32));
            (0..ops)
                .map(|_| key(skewed_index(&mut rng, n_keys + n_keys / 8)))
                .collect()
        })
        .collect()
}

/// Exact-lookup cells: mutex baseline vs sharded, byte-identical Zipf key
/// streams for both variants.
fn exact_lookup_cells(quick: bool, seed: u64, results: &mut Vec<CellResult>) {
    let n_keys = if quick { 256 } else { 1024 };
    let ops = if quick { 12_000 } else { 40_000 };
    let capacity = (n_keys * (PAYLOAD_BYTES + 64)) as u64 * 2;

    for &threads in &THREAD_STEPS {
        let probes = probe_streams(seed, threads, ops, n_keys);

        // Mutex baseline: deep clone of the payload under the lock.
        let mutex: SharedExactCache<Vec<u8>> =
            SharedExactCache::new(ExactCache::new(capacity, PolicyKind::Lru, None));
        for i in 0..n_keys {
            mutex.insert(key(i), payload(i), PAYLOAD_BYTES as u64, 0);
        }
        results.push(run_cell("exact_lookup/mutex", "-", threads, ops, |t, i| {
            mutex.lookup(&probes[t][i as usize], 1).is_some()
        }));

        // Sharded: Arc handed out from a shard read lock, no payload copy.
        let sharded: ShardedExactCache<Vec<u8>> =
            ShardedExactCache::new(capacity, PolicyKind::Lru, None, BENCH_SHARDS);
        for i in 0..n_keys {
            sharded.insert(key(i), payload(i), PAYLOAD_BYTES as u64, 0);
        }
        results.push(run_cell(
            "exact_lookup/sharded",
            "-",
            threads,
            ops,
            |t, i| sharded.lookup(&probes[t][i as usize], 1).is_some(),
        ));
    }
}

/// Exact-insert cells: every thread writes its own key range.
fn exact_insert_cells(quick: bool, results: &mut Vec<CellResult>) {
    let ops = if quick { 1_000 } else { 5_000 };
    // Capacity bounded well below the write volume so eviction runs too.
    let capacity = 4 * 1024 * 1024;

    for &threads in &THREAD_STEPS {
        let mutex: SharedExactCache<Vec<u8>> =
            SharedExactCache::new(ExactCache::new(capacity, PolicyKind::Lru, None));
        results.push(run_cell("exact_insert/mutex", "-", threads, ops, |t, i| {
            let tag = t * 1_000_000 + i as usize;
            mutex.insert(key(tag), payload(tag), PAYLOAD_BYTES as u64, i);
            true
        }));

        let sharded: ShardedExactCache<Vec<u8>> =
            ShardedExactCache::new(capacity, PolicyKind::Lru, None, BENCH_SHARDS);
        results.push(run_cell(
            "exact_insert/sharded",
            "-",
            threads,
            ops,
            |t, i| {
                let tag = t * 1_000_000 + i as usize;
                sharded.insert(key(tag), payload(tag), PAYLOAD_BYTES as u64, i);
                true
            },
        ));
    }
}

/// Descriptor vectors clustered so a fraction of probes hit: `n` stored
/// unit-ish vectors around distinct directions in `dim` dimensions.
fn descriptor(dim: usize, cluster: usize, jitter: f32) -> FeatureVec {
    let mut v = vec![0.0f32; dim];
    v[cluster % dim] = 1.0;
    v[(cluster / dim) % dim] += 0.5;
    v[cluster % dim] += jitter;
    FeatureVec::new(v)
}

/// Per-thread query descriptors, generated before the timed region (same
/// rationale as [`probe_streams`]).
fn query_streams(
    seed: u64,
    threads: usize,
    ops: u64,
    dim: usize,
    n_desc: usize,
) -> Vec<Vec<FeatureVec>> {
    (0..threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64) << 32));
            (0..ops)
                .map(|_| {
                    let cluster = skewed_index(&mut rng, n_desc + n_desc / 8);
                    descriptor(dim, cluster, rng.random_range(-0.05f32..0.05))
                })
                .collect()
        })
        .collect()
}

/// Approximate-lookup cells: mutex vs sharded × linear vs LSH.
fn approx_lookup_cells(quick: bool, seed: u64, results: &mut Vec<CellResult>) {
    let dim = 32;
    let n_desc = if quick { 128 } else { 512 };
    let ops = if quick { 4_000 } else { 12_000 };
    let threshold = 0.3;
    let capacity = 16 * 1024 * 1024;
    let indexes = [
        ("linear", IndexKind::Linear),
        ("lsh", IndexKind::Lsh { tables: 8, bits: 8 }),
    ];

    for (index_name, index_kind) in indexes {
        for &threads in &THREAD_STEPS {
            let queries = query_streams(seed, threads, ops, dim, n_desc);

            let mutex: SharedApproxCache<u64> = SharedApproxCache::new(ApproxCache::new(
                capacity,
                PolicyKind::Lru,
                threshold,
                index_kind,
                dim,
            ));
            for i in 0..n_desc {
                mutex.insert(descriptor(dim, i, 0.0), i as u64, 256, 0);
            }
            results.push(run_cell(
                "approx_lookup/mutex",
                index_name,
                threads,
                ops,
                |t, i| mutex.lookup(&queries[t][i as usize], 1).is_some(),
            ));

            let sharded: ShardedApproxCache<u64> = ShardedApproxCache::new(
                capacity,
                PolicyKind::Lru,
                threshold,
                index_kind,
                dim,
                BENCH_SHARDS,
            );
            for i in 0..n_desc {
                sharded.insert(descriptor(dim, i, 0.0), i as u64, 256, 0);
            }
            results.push(run_cell(
                "approx_lookup/sharded",
                index_name,
                threads,
                ops,
                |t, i| sharded.lookup(&queries[t][i as usize], 1).is_hit(),
            ));
        }
    }
}

/// End-to-end loopback cell: M concurrent clients against one live edge
/// re-requesting a shared panorama pool (the VR co-watching shape).
fn edge_e2e_cell(quick: bool, seed: u64, tel: &Telemetry, results: &mut Vec<CellResult>) {
    use coic_workload::{Request, RequestKind, UserId, ZoneId};

    let clients = if quick { 4 } else { 8 };
    let reqs_per_client = if quick { 30 } else { 100 };
    let frame_pool = 16u64;

    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..3).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), seed)
        .expect("cloud spawn");
    let net = NetConfig {
        telemetry: tel.clone(),
        ..NetConfig::default()
    };
    let edge = spawn_edge_with(cloud.addr(), &EdgeConfig::default(), net.clone(), None)
        .expect("edge spawn");

    let started = Instant::now();
    let mut all_samples: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (models, panos) = (models.clone(), panos.clone());
                let (edge_addr, net, tel) = (edge.addr(), net.clone(), tel.clone());
                scope.spawn(move || {
                    let mut client = NetClient::connect_with(
                        edge_addr,
                        None,
                        net,
                        ClientConfig::default(),
                        compute,
                        models,
                        panos,
                    )
                    .expect("client connect");
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xEDE0 ^ c as u64);
                    let mut samples = Vec::with_capacity(reqs_per_client);
                    for _ in 0..reqs_per_client {
                        let frame_id = skewed_index(&mut rng, frame_pool as usize) as u64;
                        let req = Request {
                            user: UserId(c as u32),
                            zone: ZoneId(0),
                            at_ns: 0,
                            kind: RequestKind::Panorama { frame_id },
                        };
                        let out = client.execute(&req).expect("live request");
                        samples.push(out.elapsed.as_nanos() as u64);
                    }
                    client.publish_metrics(tel.registry());
                    samples
                })
            })
            .collect();
        for h in handles {
            all_samples.extend(h.join().expect("bench client panicked"));
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    all_samples.sort_unstable();
    let ops = all_samples.len() as u64;
    results.push(CellResult {
        workload: "edge_e2e/panorama".to_string(),
        index: "-".to_string(),
        threads: clients,
        ops,
        p50_ns: percentile(&all_samples, 0.50),
        p95_ns: percentile(&all_samples, 0.95),
        p99_ns: percentile(&all_samples, 0.99),
        throughput_ops_per_sec: if elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        hit_ratio: edge.cache_hit_ratio(),
    });
    edge.publish_metrics(tel.registry());
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Throughput of a cell by (workload, threads); 0.0 when absent.
fn cell_throughput(results: &[CellResult], workload: &str, threads: usize) -> f64 {
    results
        .iter()
        .find(|c| c.workload == workload && c.threads == threads)
        .map(|c| c.throughput_ops_per_sec)
        .unwrap_or(0.0)
}

/// Run the full benchmark grid. `quick` shrinks op counts for CI smoke
/// runs; `seed` drives every random stream, so two runs with the same seed
/// measure identical workloads.
pub fn run_bench(quick: bool, seed: u64) -> BenchReport {
    run_bench_with(quick, seed, &Telemetry::disabled())
}

/// [`run_bench`] with an explicit telemetry handle: the loopback edge
/// cell runs under `tel`, so `coic bench --trace-out/--metrics-out` can
/// export the same event vocabulary and registry keys the simulator and
/// live stack emit.
pub fn run_bench_with(quick: bool, seed: u64, tel: &Telemetry) -> BenchReport {
    let mut results = Vec::new();
    exact_lookup_cells(quick, seed, &mut results);
    exact_insert_cells(quick, &mut results);
    approx_lookup_cells(quick, seed, &mut results);
    edge_e2e_cell(quick, seed, tel, &mut results);

    let top = *THREAD_STEPS.last().expect("non-empty steps");
    let mutex_tput = cell_throughput(&results, "exact_lookup/mutex", top);
    let sharded_tput = cell_throughput(&results, "exact_lookup/sharded", top);
    let speedup = if mutex_tput > 0.0 {
        sharded_tput / mutex_tput
    } else {
        0.0
    };
    BenchReport {
        schema: "coic-bench/v1".to_string(),
        git_rev: git_rev(),
        seed,
        quick,
        results,
        speedup_sharded_vs_mutex: speedup,
    }
}

impl BenchReport {
    /// Canonical JSON form (sorted keys, fixed float precision).
    pub fn to_json(&self) -> Json {
        let results: Vec<Json> = self
            .results
            .iter()
            .map(|c| {
                obj(vec![
                    ("workload", s(&c.workload)),
                    ("index", s(&c.index)),
                    ("threads", num(c.threads as f64)),
                    ("ops", num(c.ops as f64)),
                    ("p50_ns", num(c.p50_ns as f64)),
                    ("p95_ns", num(c.p95_ns as f64)),
                    ("p99_ns", num(c.p99_ns as f64)),
                    ("throughput_ops_per_sec", num(c.throughput_ops_per_sec)),
                    ("hit_ratio", num(c.hit_ratio)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", s(&self.schema)),
            ("git_rev", s(&self.git_rev)),
            ("seed", num(self.seed as f64)),
            ("quick", Json::Bool(self.quick)),
            ("results", Json::Arr(results)),
            (
                "derived",
                obj(vec![(
                    "speedup_sharded_vs_mutex",
                    num(self.speedup_sharded_vs_mutex),
                )]),
            ),
        ])
    }

    /// Parse a report back from its JSON form (used by the regression
    /// checker; unknown fields are ignored).
    pub fn from_json(v: &Json) -> Result<BenchReport, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != "coic-bench/v1" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let results = v
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("missing results")?
            .iter()
            .map(|c| {
                let f = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("result missing numeric '{k}'"))
                };
                Ok(CellResult {
                    workload: c
                        .get("workload")
                        .and_then(Json::as_str)
                        .ok_or("result missing workload")?
                        .to_string(),
                    index: c
                        .get("index")
                        .and_then(Json::as_str)
                        .unwrap_or("-")
                        .to_string(),
                    threads: f("threads")? as usize,
                    ops: f("ops")? as u64,
                    p50_ns: f("p50_ns")? as u64,
                    p95_ns: f("p95_ns")? as u64,
                    p99_ns: f("p99_ns")? as u64,
                    throughput_ops_per_sec: f("throughput_ops_per_sec")?,
                    hit_ratio: f("hit_ratio")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            schema: schema.to_string(),
            git_rev: v
                .get("git_rev")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            seed: v.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            quick: matches!(v.get("quick"), Some(Json::Bool(true))),
            speedup_sharded_vs_mutex: v
                .get("derived")
                .and_then(|d| d.get("speedup_sharded_vs_mutex"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            results,
        })
    }

    /// Write the canonical JSON (plus trailing newline) to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_canonical();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Load a report from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json::parse(&text)?)
    }
}

/// Conservative per-cell merge of several runs of the same grid: minimum
/// throughput, maximum latency percentiles, minimum speedup. Used when
/// refreshing `bench/baseline.json` (`coic bench --runs N`) so the
/// committed envelope reflects the worst honest run rather than one lucky
/// one — a fresh CI run then regresses only if it falls a full tolerance
/// band below anything observed while baselining.
pub fn conservative_merge(reports: Vec<BenchReport>) -> BenchReport {
    let mut reports = reports.into_iter();
    let mut merged = reports.next().expect("at least one report");
    for r in reports {
        for cell in &mut merged.results {
            let Some(other) = r.results.iter().find(|c| {
                c.workload == cell.workload && c.index == cell.index && c.threads == cell.threads
            }) else {
                continue;
            };
            cell.p50_ns = cell.p50_ns.max(other.p50_ns);
            cell.p95_ns = cell.p95_ns.max(other.p95_ns);
            cell.p99_ns = cell.p99_ns.max(other.p99_ns);
            cell.throughput_ops_per_sec = cell
                .throughput_ops_per_sec
                .min(other.throughput_ops_per_sec);
        }
        merged.speedup_sharded_vs_mutex = merged
            .speedup_sharded_vs_mutex
            .min(r.speedup_sharded_vs_mutex);
    }
    // Recompute the headline speedup from the merged cells: the ratio of
    // the two envelope minima is steadier than the worst single-run ratio
    // (which compounds one run's unluckiest mutex sample with its
    // unluckiest sharded sample).
    let top = *THREAD_STEPS.last().expect("non-empty steps");
    let m = cell_throughput(&merged.results, "exact_lookup/mutex", top);
    let s = cell_throughput(&merged.results, "exact_lookup/sharded", top);
    if m > 0.0 && s > 0.0 {
        merged.speedup_sharded_vs_mutex = s / m;
    }
    merged
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Debug, Default)]
pub struct RegressionReport {
    /// Human-readable regression lines (empty = pass).
    pub failures: Vec<String>,
    /// Informational comparison lines.
    pub notes: Vec<String>,
}

/// Compare `current` against `baseline` with a tolerance band,
/// direction-aware: only *worse* results fail (slower p50, lower
/// throughput, lower speedup ratio). `min_speedup` additionally gates the
/// machine-independent sharded-vs-mutex ratio. Cells present in only one
/// report are noted, not failed (grids may grow between PRs).
///
/// Host-speed normalisation: shared runners are sometimes *uniformly*
/// slower than the baseline host (CPU steal, thermal caps, a noisy
/// neighbour). The median throughput ratio across all matched cells
/// estimates that global factor, and only slowdown beyond it counts
/// against a cell — a regression is a cell that got worse *relative to
/// the rest of the grid*. The factor is clamped at 1.0 so a
/// faster-than-baseline host never raises the bar.
pub fn check_regression(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
    min_speedup: f64,
) -> RegressionReport {
    let mut report = RegressionReport::default();
    let mut pairs = Vec::new();
    for base in &baseline.results {
        match current.results.iter().find(|c| {
            c.workload == base.workload && c.index == base.index && c.threads == base.threads
        }) {
            Some(cur) => pairs.push((base, cur)),
            None => report.notes.push(format!(
                "cell {}[{}]@{}t missing from current run",
                base.workload, base.index, base.threads
            )),
        }
    }
    let mut ratios: Vec<f64> = pairs
        .iter()
        .filter(|(b, _)| b.throughput_ops_per_sec > 0.0)
        .map(|(b, c)| c.throughput_ops_per_sec / b.throughput_ops_per_sec)
        .collect();
    ratios.sort_by(f64::total_cmp);
    // With too few cells the median is not robust (it could *be* the one
    // regressed cell); skip normalisation for tiny grids.
    let host_factor = if ratios.len() < 5 {
        1.0
    } else {
        ratios[ratios.len() / 2].min(1.0)
    };
    if host_factor < 1.0 {
        report.notes.push(format!(
            "host-speed factor {host_factor:.2} (median cell ratio; grid-wide slowdown discounted)"
        ));
    }
    for (base, cur) in pairs {
        let label = format!("{}[{}]@{}t", base.workload, base.index, base.threads);
        if base.throughput_ops_per_sec > 0.0 {
            let ratio = cur.throughput_ops_per_sec / base.throughput_ops_per_sec / host_factor;
            if ratio < 1.0 - tolerance {
                report.failures.push(format!(
                    "{label}: throughput {:.0} ops/s vs baseline {:.0} ({:.1}% relative drop > {:.0}% tolerance)",
                    cur.throughput_ops_per_sec,
                    base.throughput_ops_per_sec,
                    (1.0 - ratio) * 100.0,
                    tolerance * 100.0
                ));
            } else {
                report
                    .notes
                    .push(format!("{label}: throughput ratio {ratio:.2} ok"));
            }
        }
        // Per-op latency percentiles are noisier than aggregate
        // throughput (one scheduler burst moves the median), so p50 gets
        // double the throughput band.
        if base.p50_ns > 0 {
            let ratio = cur.p50_ns as f64 * host_factor / base.p50_ns as f64;
            if ratio > 1.0 + 2.0 * tolerance {
                report.failures.push(format!(
                    "{label}: p50 {} ns vs baseline {} ns ({:.1}% relative slowdown > {:.0}% p50 tolerance)",
                    cur.p50_ns,
                    base.p50_ns,
                    (ratio - 1.0) * 100.0,
                    2.0 * tolerance * 100.0
                ));
            }
        }
    }
    if current.speedup_sharded_vs_mutex < min_speedup {
        report.failures.push(format!(
            "sharded-vs-mutex speedup {:.2} below required {min_speedup:.2}",
            current.speedup_sharded_vs_mutex
        ));
    } else {
        report.notes.push(format!(
            "sharded-vs-mutex speedup {:.2} (required {min_speedup:.2})",
            current.speedup_sharded_vs_mutex
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, threads: usize, tput: f64, p50: u64) -> CellResult {
        CellResult {
            workload: workload.to_string(),
            index: "-".to_string(),
            threads,
            ops: 100,
            p50_ns: p50,
            p95_ns: p50 * 2,
            p99_ns: p50 * 3,
            throughput_ops_per_sec: tput,
            hit_ratio: 0.9,
        }
    }

    fn report(cells: Vec<CellResult>, speedup: f64) -> BenchReport {
        BenchReport {
            schema: "coic-bench/v1".to_string(),
            git_rev: "test".to_string(),
            seed: 7,
            quick: true,
            results: cells,
            speedup_sharded_vs_mutex: speedup,
        }
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(vec![cell("exact_lookup/sharded", 16, 1e6, 500)], 2.5);
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].workload, "exact_lookup/sharded");
        assert_eq!(back.results[0].p50_ns, 500);
        assert!((back.speedup_sharded_vs_mutex - 2.5).abs() < 1e-9);
        // Canonical: serializing twice is byte-identical.
        assert_eq!(r.to_json().to_canonical(), back.to_json().to_canonical());
    }

    #[test]
    fn regression_is_direction_aware() {
        let base = report(vec![cell("a", 4, 1000.0, 100)], 2.0);
        // Faster than baseline: never a failure.
        let better = report(vec![cell("a", 4, 2000.0, 50)], 3.0);
        assert!(check_regression(&base, &better, 0.25, 1.2)
            .failures
            .is_empty());
        // 50% throughput drop: fails at 25% tolerance.
        let worse = report(vec![cell("a", 4, 500.0, 100)], 2.0);
        let r = check_regression(&base, &worse, 0.25, 1.2);
        assert_eq!(r.failures.len(), 1);
        // p50 doubled: fails.
        let slower = report(vec![cell("a", 4, 1000.0, 200)], 2.0);
        assert_eq!(
            check_regression(&base, &slower, 0.25, 1.2).failures.len(),
            1
        );
        // Within band: passes.
        let close_run = report(vec![cell("a", 4, 900.0, 110)], 2.0);
        assert!(check_regression(&base, &close_run, 0.25, 1.2)
            .failures
            .is_empty());
    }

    #[test]
    fn speedup_gate_fails_below_minimum() {
        let base = report(vec![], 2.0);
        let cur = report(vec![], 1.05);
        let r = check_regression(&base, &cur, 0.25, 1.2);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("speedup"));
    }

    #[test]
    fn missing_cells_are_notes_not_failures() {
        let base = report(vec![cell("gone", 1, 100.0, 10)], 2.0);
        let cur = report(vec![], 2.0);
        let r = check_regression(&base, &cur, 0.25, 1.2);
        assert!(r.failures.is_empty());
        assert!(r.notes.iter().any(|n| n.contains("missing")));
    }

    #[test]
    fn uniform_host_slowdown_is_not_a_regression() {
        // Six cells all ~35% slower: a grid-wide host effect, discounted
        // by the median normalisation — no failures.
        let names = ["a", "b", "c", "d", "e", "f"];
        let base = report(names.iter().map(|n| cell(n, 4, 1000.0, 100)).collect(), 2.0);
        let slow_host = report(names.iter().map(|n| cell(n, 4, 650.0, 154)).collect(), 2.0);
        let r = check_regression(&base, &slow_host, 0.25, 1.2);
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("host-speed factor")));
        // But one cell dropping 40% while the rest hold still fails.
        let mut cells: Vec<_> = names.iter().map(|n| cell(n, 4, 1000.0, 100)).collect();
        cells[2].throughput_ops_per_sec = 600.0;
        let one_bad = report(cells, 2.0);
        let r = check_regression(&base, &one_bad, 0.25, 1.2);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].starts_with("c[-]@4t"));
    }

    #[test]
    fn conservative_merge_takes_worst_of_each_cell() {
        let a = report(vec![cell("a", 4, 1000.0, 100)], 2.5);
        let b = report(vec![cell("a", 4, 800.0, 140)], 2.1);
        let c = report(vec![cell("a", 4, 1200.0, 90)], 3.0);
        let m = conservative_merge(vec![a, b, c]);
        assert_eq!(m.results.len(), 1);
        assert!((m.results[0].throughput_ops_per_sec - 800.0).abs() < 1e-9);
        assert_eq!(m.results[0].p50_ns, 140);
        assert!((m.speedup_sharded_vs_mutex - 2.1).abs() < 1e-9);
        // A fresh run matching any of the originals passes the gate.
        let fresh = report(vec![cell("a", 4, 820.0, 135)], 2.4);
        assert!(check_regression(&m, &fresh, 0.25, 1.2).failures.is_empty());
    }

    #[test]
    fn tiny_bench_grid_runs_and_gates() {
        // A micro-sized real run: exercises the actual measurement path
        // (threads, percentiles, schema) without CI-scale op counts.
        let mut results = Vec::new();
        super::exact_lookup_cells(true, 3, &mut results);
        assert_eq!(results.len(), 2 * THREAD_STEPS.len());
        for c in &results {
            assert!(c.ops > 0);
            assert!(c.p50_ns <= c.p95_ns && c.p95_ns <= c.p99_ns);
            assert!(c.throughput_ops_per_sec > 0.0);
            assert!(c.hit_ratio > 0.5, "zipf stream should mostly hit");
        }
        // The design claim, at microbench scale: sharded lookups beat the
        // clone-under-mutex baseline at the top thread count.
        let top = *THREAD_STEPS.last().unwrap();
        let m = cell_throughput(&results, "exact_lookup/mutex", top);
        let sh = cell_throughput(&results, "exact_lookup/sharded", top);
        assert!(
            sh > m,
            "sharded ({sh:.0} ops/s) should out-run mutex ({m:.0} ops/s)"
        );
    }
}

//! The concurrent ANN subsystem behind the snapshot cache.
//!
//! The descriptor → cached-result approximate lookup is the hot path of
//! the whole CoIC design, and the structures here are built for the
//! snapshot/epoch concurrency model of [`crate::snapshot`]: an
//! [`AnnIndex`] is an **immutable**, batch-built search structure —
//! lookups take `&self`, never mutate, and are therefore safe to walk
//! from any number of threads with zero locks once the index is behind
//! an `Arc`. Mutation happens by building a *new* index from the full
//! entry set (the snapshot rebuild), not by editing in place.
//!
//! Two selectable families ship behind the trait (plus the linear-scan
//! ground truth):
//!
//! * [`mplsh::MultiProbeLsh`] — random-hyperplane LSH that probes the
//!   query's bucket *and its lowest-margin neighbours* in every table.
//!   Where the old descriptor-space-sharded cache fragmented each LSH
//!   bucket across shards (the measured regression in
//!   `bench/baseline.json` rev a68375a), multi-probe keeps one bucket
//!   array and widens the probe set instead.
//! * [`hnsw::HnswIndex`] — an HNSW-style layered proximity graph with
//!   deterministic level assignment (hash of the id, not an RNG), for
//!   workloads where descriptor clusters are too diffuse for LSH.
//!
//! Everything is deterministic: hyperplanes and graph levels derive from
//! fixed seeds via `splitmix64`/FNV hashing, buckets are dense
//! signature-indexed arrays filled in ascending-slot order, and ties
//! break by id — two builds over the same entries produce
//! byte-identical search behavior, which the sim path and the recall
//! property tests rely on.

use coic_vision::features::FeatureVec;

pub mod dynamic;
pub mod hnsw;
pub mod mplsh;

pub use dynamic::{DynamicAnn, DEFAULT_REBUILD_BATCH};
pub use hnsw::HnswIndex;
pub use mplsh::MultiProbeLsh;

/// Per-lookup probe accounting, accumulated by every [`AnnIndex`]
/// implementation and folded into the `index.*` telemetry counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Buckets (LSH) or graph nodes (HNSW) expanded.
    pub buckets: u64,
    /// Exact distance evaluations performed.
    pub distance_evals: u64,
    /// Times the conservative full-scan fallback ran (no candidates).
    pub fallback_scans: u64,
}

impl ProbeStats {
    /// Accumulate another lookup's stats into this one.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.buckets += other.buckets;
        self.distance_evals += other.distance_evals;
        self.fallback_scans += other.fallback_scans;
    }
}

/// An immutable, batch-built approximate-nearest-neighbour index.
///
/// `nearest` never mutates: snapshots of these indexes are shared across
/// threads behind `Arc` with no locks. The `accept` filter lets a caller
/// mask out ids whose stored vector is stale (the dynamic adapter's
/// dirty set); implementations must *traverse* as if every id were live
/// but only *return* accepted ids.
///
/// **The satisficing radius.** `within` is the caller's hit threshold.
/// For a threshold cache, *any* stored vector inside the radius is a
/// valid hit — which entry wins only picks among equally valid reuse
/// candidates. A finite `within` therefore licenses two shortcuts:
///
/// * implementations may stop the traversal at the first accepted
///   candidate found at or under `within` and return it, even if a
///   closer one exists (`d ≤ within` already decides "hit");
/// * on the miss side each family picks the cheapest policy that keeps
///   its hit ratio pinned to the linear scan (the bench gate enforces
///   0.5%): multi-probe LSH answers with the best probed candidate and
///   scans only when *nothing* accepted surfaced — its probe set covers
///   the bit flips a near-duplicate can cause, so a far best really
///   means a miss — while the HNSW graph *verifies on far*, scanning
///   whenever the beam found nothing in-radius, because a stopped beam
///   proves nothing about unvisited nodes.
///
/// Pass `f32::INFINITY` for the raw best-effort nearest answer: the
/// early exit is disarmed (every distance is ≤ ∞) and the fallback runs
/// only when everything was filtered out.
pub trait AnnIndex: Send + Sync {
    /// The closest stored, accepted vector to `q` (L2), with distance.
    /// `None` when no accepted vector exists.
    fn nearest(
        &self,
        q: &FeatureVec,
        within: f32,
        accept: &dyn Fn(u64) -> bool,
        stats: &mut ProbeStats,
    ) -> Option<(u64, f32)>;

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable family label for telemetry and bench cells.
    fn family(&self) -> &'static str;
}

/// Which ANN family backs an index, with its tuning knobs.
///
/// This is the config-level description: [`AnnFamily::build`] turns it
/// plus an entry set into a concrete [`AnnIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnFamily {
    /// Exact linear scan — ground truth, and right for small caches.
    Linear,
    /// Multi-probe random-hyperplane LSH.
    MultiProbeLsh {
        /// Independent hash tables.
        tables: usize,
        /// Signature bits per table.
        bits: usize,
        /// Buckets probed per table (the base bucket plus lowest-margin
        /// bit-flip neighbours).
        probes: usize,
    },
    /// HNSW-style layered proximity graph.
    Hnsw {
        /// Max links per node per layer (level 0 keeps twice this).
        max_links: usize,
        /// Beam width of the level-0 search.
        ef_search: usize,
    },
}

impl AnnFamily {
    /// The default multi-probe LSH tuning for 32-dim descriptors.
    pub const DEFAULT_MPLSH: AnnFamily = AnnFamily::MultiProbeLsh {
        tables: 4,
        bits: 8,
        probes: 8,
    };

    /// The default HNSW tuning for edge-sized caches.
    pub const DEFAULT_HNSW: AnnFamily = AnnFamily::Hnsw {
        max_links: 8,
        ef_search: 24,
    };

    /// Stable label: `linear`, `mp-lsh` or `hnsw` (bench cell / CLI name).
    pub fn label(&self) -> &'static str {
        match self {
            AnnFamily::Linear => "linear",
            AnnFamily::MultiProbeLsh { .. } => "mp-lsh",
            AnnFamily::Hnsw { .. } => "hnsw",
        }
    }

    /// Parse a CLI/config family name (the inverse of [`AnnFamily::label`],
    /// with default tunings). `None` for unknown names.
    pub fn parse(name: &str) -> Option<AnnFamily> {
        match name {
            "linear" => Some(AnnFamily::Linear),
            "mp-lsh" | "mplsh" => Some(AnnFamily::DEFAULT_MPLSH),
            "hnsw" => Some(AnnFamily::DEFAULT_HNSW),
            _ => None,
        }
    }

    /// Build an index of this family over `items` (id/vector pairs, any
    /// order; ids must be unique). `dim` is the vector dimensionality,
    /// needed even when `items` is empty.
    ///
    /// # Panics
    /// Panics if `dim` is zero, a family parameter is zero, or an item's
    /// dimensionality disagrees with `dim`.
    pub fn build(&self, dim: usize, items: Vec<(u64, FeatureVec)>) -> Box<dyn AnnIndex> {
        match *self {
            AnnFamily::Linear => Box::new(LinearAnn::new(dim, items)),
            AnnFamily::MultiProbeLsh {
                tables,
                bits,
                probes,
            } => Box::new(MultiProbeLsh::new(dim, tables, bits, probes, items)),
            AnnFamily::Hnsw {
                max_links,
                ef_search,
            } => Box::new(HnswIndex::new(dim, max_links, ef_search, items)),
        }
    }
}

impl Default for AnnFamily {
    fn default() -> AnnFamily {
        AnnFamily::DEFAULT_MPLSH
    }
}

/// Sort items ascending by id (the canonical build order every family
/// uses — determinism and the smallest-id tie-break depend on it) and
/// check dimensionality.
pub(crate) fn canonical_items(
    dim: usize,
    mut items: Vec<(u64, FeatureVec)>,
) -> Vec<(u64, FeatureVec)> {
    assert!(dim > 0, "ANN dimensionality must be positive");
    for (_, v) in &items {
        assert_eq!(v.dim(), dim, "vector dim mismatch");
    }
    items.sort_unstable_by_key(|(id, _)| *id);
    items
}

/// `splitmix64` finalizer: the deterministic bit mixer behind hyperplane
/// and level generation (no RNG state, no `rand` dependency).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic pseudo-random f32 in [-1, 1) from a seed.
pub(crate) fn unit_f32(seed: u64) -> f32 {
    // 24 high-quality bits → exactly representable mantissa.
    ((mix64(seed) >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

/// Smaller-distance-wins comparison with the smallest-id tie-break —
/// the same decision the linear ground truth makes, so families agree
/// on exact ties.
pub(crate) fn better(candidate: (u64, f32), best: Option<(u64, f32)>) -> bool {
    match best {
        None => true,
        Some((bid, bd)) => candidate.1 < bd || (candidate.1 == bd && candidate.0 < bid),
    }
}

/// Exact nearest neighbour by linear scan over a sorted slot array —
/// the ground-truth family and the fallback the others defer to.
pub struct LinearAnn {
    dim: usize,
    items: Vec<(u64, FeatureVec)>,
}

impl LinearAnn {
    /// Build from an entry set (sorted internally).
    pub fn new(dim: usize, items: Vec<(u64, FeatureVec)>) -> LinearAnn {
        LinearAnn {
            dim,
            items: canonical_items(dim, items),
        }
    }
}

impl AnnIndex for LinearAnn {
    fn nearest(
        &self,
        q: &FeatureVec,
        _within: f32,
        accept: &dyn Fn(u64) -> bool,
        stats: &mut ProbeStats,
    ) -> Option<(u64, f32)> {
        // The scan is exact and already minimal; the satisficing radius
        // cannot make it cheaper without changing which entry wins, so
        // it is ignored.
        assert_eq!(q.dim(), self.dim, "query dim mismatch");
        let mut best: Option<(u64, f32)> = None;
        for (id, v) in &self.items {
            if !accept(*id) {
                continue;
            }
            stats.distance_evals += 1;
            let d = coic_vision::distance::l2(q, v);
            if better((*id, d), best) {
                best = Some((*id, d));
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn family(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    #[test]
    fn linear_ann_finds_nearest_with_filter() {
        let idx = LinearAnn::new(
            2,
            vec![
                (1, v(&[0.0, 0.0])),
                (2, v(&[1.0, 0.0])),
                (3, v(&[0.0, 2.0])),
            ],
        );
        let mut stats = ProbeStats::default();
        let (id, d) = idx
            .nearest(&v(&[0.9, 0.1]), f32::INFINITY, &|_| true, &mut stats)
            .expect("non-empty");
        assert_eq!(id, 2);
        assert!(d < 0.2);
        assert_eq!(stats.distance_evals, 3);
        // Filtering out the true nearest surfaces the runner-up.
        let (id, _) = idx
            .nearest(&v(&[0.9, 0.1]), f32::INFINITY, &|id| id != 2, &mut stats)
            .expect("non-empty");
        assert_eq!(id, 1);
    }

    #[test]
    fn linear_ann_empty_returns_none() {
        let idx = LinearAnn::new(3, Vec::new());
        let mut stats = ProbeStats::default();
        assert_eq!(
            idx.nearest(&v(&[0.0, 0.0, 0.0]), f32::INFINITY, &|_| true, &mut stats),
            None
        );
        assert!(idx.is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_id() {
        // Two entries equidistant from the query.
        let idx = LinearAnn::new(1, vec![(9, v(&[1.0])), (4, v(&[-1.0]))]);
        let mut stats = ProbeStats::default();
        let (id, _) = idx
            .nearest(&v(&[0.0]), f32::INFINITY, &|_| true, &mut stats)
            .expect("non-empty");
        assert_eq!(id, 4);
    }

    #[test]
    fn family_labels_roundtrip_through_parse() {
        for fam in [
            AnnFamily::Linear,
            AnnFamily::DEFAULT_MPLSH,
            AnnFamily::DEFAULT_HNSW,
        ] {
            assert_eq!(AnnFamily::parse(fam.label()), Some(fam));
        }
        assert_eq!(AnnFamily::parse("sharded"), None);
    }

    #[test]
    fn unit_f32_is_deterministic_and_bounded() {
        for s in 0..1000u64 {
            let a = unit_f32(s);
            assert_eq!(a, unit_f32(s));
            assert!((-1.0..1.0).contains(&a));
        }
        // Not constant.
        assert_ne!(unit_f32(1), unit_f32(2));
    }

    #[test]
    #[should_panic(expected = "vector dim mismatch")]
    fn dim_mismatch_rejected_at_build() {
        let _ = LinearAnn::new(2, vec![(0, v(&[1.0, 2.0, 3.0]))]);
    }
}

//! Discrete-event simulation driver.
//!
//! Reconstructs the paper's testbed as a simulated topology — N mobile
//! clients on an access link to one edge, one WAN link to the cloud — and
//! replays a workload trace through either the **origin** baseline (full
//! offload, no cache) or **CoIC** (descriptor query → edge cache →
//! forward-on-miss). Every run is deterministic in its seed.

use crate::cluster::{ClusterConfig, ClusterState, ClusterStats, EdgeId};
use crate::compute::ComputeConfig;
use crate::content::{ModelLibrary, PanoLibrary};
use crate::descriptor::FeatureDescriptor;
use crate::engine::{
    AdmissionConfig, BreakerState, BrownoutConfig, BrownoutState, ClientEngine, Clock, Decision,
    Effect, EngineConfig, FaultSchedule, FlightClaim, OverloadControl, ReplyKind, RetryPolicy,
    RobustnessStats, SimClock, SingleFlight, TimerKind, UpstreamGate, Verdict,
};
use crate::protocol::Msg;
use crate::qoe::{QoeReport, Record};
use crate::services::{
    recognition_correct, ClientConfig, ClientLogic, CloudService, EdgeConfig, EdgeReply,
    EdgeService, PreparedRequest,
};
use crate::task::{TaskRequest, TaskResult, ANNOTATION_BYTES};
use crate::telemetry::{path_label, record_decision};
use coic_netsim::{Ctx, LinkParams, Node, NodeId, SimDuration, Simulator, Topology};
use coic_obs::{Recorder, Telemetry, Value};
use coic_vision::{ObjectClass, SceneGenerator};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Which system handles the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The paper's baseline: offload every complete task to the cloud.
    Origin,
    /// The CoIC framework.
    CoIc,
}

/// Where recognition inference executes on the miss path (model loads and
/// panorama synthesis stay in the cloud, which holds the content).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// The cloud server runs the DNN (the paper's setup).
    Cloud,
    /// The edge box runs the DNN (classic edge computing; slower silicon,
    /// but the camera frame never crosses the WAN).
    Edge,
}

/// Full configuration of one simulation run.
#[derive(Clone)]
pub struct SimConfig {
    /// Origin baseline or CoIC.
    pub mode: Mode,
    /// Where recognition inference runs on misses.
    pub exec_tier: ExecTier,
    /// Client↔edge bandwidth (the paper's `B_M->E`), Mbit/s.
    pub access_mbps: f64,
    /// Client↔edge one-way delay, ms.
    pub access_delay_ms: u64,
    /// Edge↔cloud bandwidth (the paper's `B_E->C`), Mbit/s.
    pub wan_mbps: f64,
    /// Edge↔cloud one-way delay, ms.
    pub wan_delay_ms: u64,
    /// Number of client devices.
    pub num_clients: u32,
    /// Number of edge servers. Clients attach to `zone % num_edges`; with
    /// more than one edge, enable `peer_lookup` to let edges answer each
    /// other's misses over the LAN before going to the cloud.
    pub num_edges: u32,
    /// Inter-edge LAN bandwidth, Mbit/s.
    pub lan_mbps: f64,
    /// Inter-edge LAN one-way delay, ms.
    pub lan_delay_ms: u64,
    /// Query peer edges on an exact-task miss before forwarding to cloud.
    pub peer_lookup: bool,
    /// Cooperative cluster tier: consistent-hash partitioning with bounded
    /// peer fan-out, hot-entry replication and peer-before-cloud failover.
    /// Supersedes the broadcast `peer_lookup` when set (the legacy
    /// broadcast asks *every* peer; the cluster probes at most
    /// `peer_fanout` along the ring).
    pub cluster: Option<ClusterConfig>,
    /// Deterministic edge-kill schedule: at each `(at_ms, edge_idx)` the
    /// named edge goes silent for the rest of the run — it drops every
    /// message and timer, exactly what a crashed process looks like to its
    /// peers. Empty = no failures.
    pub edge_down_ms: Vec<(u64, u32)>,
    /// Independent per-message loss probability on the access links
    /// (wireless loss; retried via the request timeout).
    pub access_loss: f64,
    /// Independent per-message loss probability on the WAN link.
    pub wan_loss: f64,
    /// Client request timeout; a request unanswered for this long is
    /// retransmitted from scratch. Zero disables timeouts (only safe on
    /// loss-free links).
    pub request_timeout_ms: u64,
    /// Retransmissions before a request is declared failed. Only consulted
    /// when [`SimConfig::retry`] is `None`.
    pub max_retries: u32,
    /// Client retry/backoff policy fed to the shared engine. `None`
    /// reproduces the classic simulator behavior: `max_retries` + 1
    /// immediate (zero-backoff) transmissions per request.
    pub retry: Option<RetryPolicy>,
    /// When the edge path is exhausted, degrade to the origin path (direct
    /// cloud request) instead of failing the request — the live client's
    /// behavior when constructed with a cloud address.
    pub origin_fallback: bool,
    /// While degraded, minimum spacing between edge re-probes, ms.
    pub probe_interval_ms: u64,
    /// Deterministic fault injection at the client's send boundary: a
    /// scheduled attempt is silently not transmitted, so its deadline
    /// fires — the same decisions the live driver derives from its
    /// schedule.
    pub faults: FaultSchedule,
    /// Edge admission control: a bounded request queue with oldest-first
    /// shedding plus an AIMD concurrency limiter at every edge. `None`
    /// (the default) disables admission entirely — each query is served
    /// the instant it arrives, exactly the classic behavior.
    pub admission: Option<AdmissionConfig>,
    /// Brownout ladder watching the admission queue's pressure (only
    /// meaningful together with [`SimConfig::admission`]). `None` keeps
    /// the edge at full service regardless of queue depth.
    pub brownout: Option<BrownoutConfig>,
    /// Optional token-bucket shaping of each client's uplink, as
    /// `(rate_mbps, burst_bytes)` — mirrors running `tc tbf` on the phone.
    /// The shaper delays when a message *starts* transmitting; the link
    /// then charges serialization as usual.
    pub client_shaper: Option<(f64, u64)>,
    /// Time-varying access bandwidth: at each `(at_ms, mbps)` step, every
    /// client↔edge link is re-shaped to `mbps` (both directions). Models
    /// wireless fading / user mobility. Empty = constant bandwidth.
    pub access_schedule: Vec<(u64, f64)>,
    /// Edge prefetch depth for sequential panorama streams: serving frame
    /// `f` proactively fetches frames `f+1..=f+depth` from the cloud.
    /// Zero disables prefetching.
    pub prefetch_depth: u32,
    /// Edge cache configuration.
    pub edge: EdgeConfig,
    /// Client preprocessing configuration.
    pub client: ClientConfig,
    /// Compute cost model.
    pub compute: ComputeConfig,
    /// Wire size charged for a camera-frame upload. The synthetic frames
    /// are small; a real phone ships a multi-hundred-kB JPEG, and that is
    /// what the network should feel.
    pub image_wire_bytes: u64,
    /// Wire size charged for a recognition descriptor query.
    pub descriptor_wire_bytes: u64,
    /// Panorama frame height (width = 2×height, 1 B/pixel).
    pub pano_height: u32,
    /// Droptail queue depth per link direction, bytes. Experiments default
    /// deep (results as large as 64 MB models queue behind each other
    /// rather than drop); droptail studies can lower it.
    pub queue_limit_bytes: u64,
    /// Closed-loop clients (the paper's sequential request/response client):
    /// each client keeps at most one request outstanding, issuing the next
    /// at its trace time or on completion of the previous one, whichever is
    /// later. Open-loop (false) issues strictly by trace timestamps.
    pub closed_loop: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: Mode::CoIc,
            exec_tier: ExecTier::Cloud,
            access_mbps: 400.0, // the paper's 802.11ac at up to 400 Mbps
            access_delay_ms: 2,
            wan_mbps: 50.0,
            wan_delay_ms: 20,
            num_clients: 1,
            num_edges: 1,
            lan_mbps: 1000.0,
            lan_delay_ms: 5,
            peer_lookup: false,
            cluster: None,
            edge_down_ms: Vec::new(),
            access_loss: 0.0,
            wan_loss: 0.0,
            request_timeout_ms: 10_000,
            max_retries: 3,
            retry: None,
            origin_fallback: false,
            probe_interval_ms: 100,
            faults: FaultSchedule::new(),
            admission: None,
            brownout: None,
            client_shaper: None,
            access_schedule: Vec::new(),
            prefetch_depth: 0,
            edge: EdgeConfig::default(),
            client: ClientConfig::default(),
            compute: ComputeConfig::default(),
            image_wire_bytes: 300_000,
            descriptor_wire_bytes: 4_096,
            pano_height: 256,
            queue_limit_bytes: 1 << 30, // 1 GiB
            closed_loop: true,
            seed: 1,
        }
    }
}

impl SimConfig {
    /// Start a typed builder (the supported construction path; see
    /// [`crate::config`], including [`crate::config::CommonConfig`] for
    /// the knobs shared with the live stack).
    pub fn builder() -> crate::config::SimConfigBuilder {
        crate::config::SimConfigBuilder::default()
    }
}

/// Bytes a message occupies on a link. Structural messages use their real
/// encoded length; camera frames and descriptors are charged at the
/// configured realistic sizes (see [`SimConfig::image_wire_bytes`]).
fn wire_len(msg: &Msg, cfg: &SimConfig) -> u64 {
    match msg {
        Msg::Query {
            descriptor: FeatureDescriptor::Dnn(_),
            ..
        } => cfg.descriptor_wire_bytes,
        Msg::Upload {
            task: TaskRequest::Recognition { .. },
            ..
        }
        | Msg::Forward {
            task: TaskRequest::Recognition { .. },
            ..
        }
        | Msg::BaselineRequest {
            task: TaskRequest::Recognition { .. },
            ..
        } => cfg.image_wire_bytes,
        Msg::Hit {
            result: TaskResult::Recognition(_),
            ..
        }
        | Msg::Result {
            result: TaskResult::Recognition(_),
            ..
        }
        | Msg::CloudReply {
            result: TaskResult::Recognition(_),
            ..
        }
        | Msg::BaselineReply {
            result: TaskResult::Recognition(_),
            ..
        } => ANNOTATION_BYTES,
        other => other.encoded_len(),
    }
}

const TOKEN_ISSUE: u64 = 1 << 62;
const TOKEN_PREP: u64 = 1 << 61;
const TOKEN_TIMEOUT: u64 = 1 << 60;
const TOKEN_SHAPED: u64 = 1 << 59;
const TOKEN_BACKOFF: u64 = 1 << 58;
const TOKEN_MASK: u64 = (1 << 32) - 1;
/// Engine timer epochs ride in token bits 32..48 (flags sit at 58+).
const EPOCH_MASK: u64 = 0xFFFF;

/// The engine configuration a [`SimConfig`] implies for its clients.
fn engine_config(cfg: &SimConfig) -> EngineConfig {
    EngineConfig {
        // `None` reproduces the classic simulator retransmit loop:
        // max_retries extra transmissions, no backoff (the resend leaves at
        // the instant the virtual deadline fires).
        retry: cfg
            .retry
            .clone()
            .unwrap_or_else(|| RetryPolicy::immediate(cfg.max_retries + 1, cfg.seed)),
        deadline_ns: cfg.request_timeout_ms * 1_000_000,
        probe_interval_ns: cfg.probe_interval_ms * 1_000_000,
        use_edge: cfg.mode == Mode::CoIc,
        origin_fallback: cfg.origin_fallback,
    }
}

/// The simulated client: a thin driver around the shared [`ClientEngine`].
/// All lifecycle decisions (retry, deadline, degrade, probe) come from the
/// engine; this node only realizes effects on the virtual network — the
/// exact counterpart of the live [`crate::netrun::NetClient`].
struct ClientNode {
    cfg: SimConfig,
    engine: ClientEngine<SimClock>,
    clock: SimClock,
    shaper: Option<coic_netsim::Shaper>,
    /// Messages held back by the shaper, released by TOKEN_SHAPED timers.
    shaped: Vec<Option<(bool, u64, Msg)>>,
    logic: Arc<ClientLogic>,
    requests: Vec<coic_workload::Request>,
    prepared: Vec<Option<PreparedRequest>>,
    edge: NodeId,
    cloud: NodeId,
    records: Rc<RefCell<Vec<Record>>>,
    failures: Rc<RefCell<u64>>,
    trace_out: Rc<RefCell<Vec<Decision>>>,
    tel: Telemetry,
    client_idx: u64,
}

impl ClientNode {
    fn req_id(&self, ctx: &Ctx<'_, Msg>, idx: usize) -> u64 {
        ((ctx.node_id().0 as u64) << 32) | idx as u64
    }

    /// Send an uplink message through the optional token-bucket shaper: it
    /// leaves now if the bucket has tokens, else when the bucket refills.
    fn shaped_send(&mut self, ctx: &mut Ctx<'_, Msg>, routed: bool, bytes: u64, msg: Msg) {
        let release = match &mut self.shaper {
            Some(sh) => sh.release_at(ctx.now(), bytes),
            None => ctx.now(),
        };
        if release <= ctx.now() {
            if routed {
                ctx.send_routed(self.cloud, bytes, msg);
            } else {
                ctx.send(self.edge, bytes, msg);
            }
        } else {
            let token = TOKEN_SHAPED | self.shaped.len() as u64;
            self.shaped.push(Some((routed, bytes, msg)));
            ctx.set_timer(release - ctx.now(), token);
        }
    }

    fn advance_closed_loop(&mut self, ctx: &mut Ctx<'_, Msg>, idx: usize) {
        if self.cfg.closed_loop {
            let next = idx + 1;
            if next < self.requests.len() {
                let due = self.requests[next].at_ns;
                let now = ctx.now().as_nanos();
                let wait = due.saturating_sub(now);
                ctx.set_timer(SimDuration::from_nanos(wait), TOKEN_ISSUE | next as u64);
            }
        }
    }

    fn send_query(&mut self, ctx: &mut Ctx<'_, Msg>, req_id: u64) {
        let idx = (req_id & TOKEN_MASK) as usize;
        let prepared = self.prepared[idx].as_ref().expect("send before prepare");
        // Recognition keeps the heavy frame back; compact tasks ride along
        // as the hint.
        let hint = match &prepared.task {
            TaskRequest::Recognition { .. } => None,
            t => Some(t.clone()),
        };
        let msg = Msg::Query {
            req_id,
            descriptor: prepared.descriptor.clone(),
            hint,
        };
        let bytes = wire_len(&msg, &self.cfg);
        self.shaped_send(ctx, false, bytes, msg);
    }

    fn send_origin(&mut self, ctx: &mut Ctx<'_, Msg>, req_id: u64) {
        let idx = (req_id & TOKEN_MASK) as usize;
        let prepared = self.prepared[idx].as_ref().expect("send before prepare");
        let msg = Msg::BaselineRequest {
            req_id,
            task: prepared.task.clone(),
        };
        let bytes = wire_len(&msg, &self.cfg);
        // Edge-execution baseline sends the frame only as far as the edge
        // box; otherwise offload rides through to the cloud as in the
        // paper.
        let routed = !(self.cfg.exec_tier == ExecTier::Edge
            && matches!(prepared.task, TaskRequest::Recognition { .. }));
        self.shaped_send(ctx, routed, bytes, msg);
    }

    fn send_upload(&mut self, ctx: &mut Ctx<'_, Msg>, req_id: u64) {
        let idx = (req_id & TOKEN_MASK) as usize;
        let task = self.prepared[idx]
            .as_ref()
            .expect("NeedPayload before prepare")
            .task
            .clone();
        let msg = Msg::Upload { req_id, task };
        let bytes = wire_len(&msg, &self.cfg);
        self.shaped_send(ctx, false, bytes, msg);
    }

    /// Realize engine effects on the virtual network. Feedback events
    /// (probe results) loop through the engine inside the same pass.
    fn apply(&mut self, ctx: &mut Ctx<'_, Msg>, effects: Vec<Effect>) {
        let mut queue: VecDeque<Effect> = effects.into();
        while let Some(eff) = queue.pop_front() {
            match eff {
                Effect::ArmTimer {
                    req_id,
                    kind,
                    epoch,
                    delay_ns,
                } => {
                    let idx = req_id & TOKEN_MASK;
                    let flag = match kind {
                        TimerKind::Prep => TOKEN_PREP,
                        TimerKind::Deadline => TOKEN_TIMEOUT,
                        TimerKind::Backoff => TOKEN_BACKOFF,
                    };
                    let token = flag | ((epoch as u64 & EPOCH_MASK) << 32) | idx;
                    ctx.set_timer(SimDuration::from_nanos(delay_ns), token);
                }
                Effect::SendQuery {
                    req_id,
                    seq,
                    attempt,
                } => {
                    // An injected fault suppresses the transmission; the
                    // engine's deadline timer turns it into AttemptFailed.
                    if !self.cfg.faults.edge_dropped(seq, attempt) {
                        self.send_query(ctx, req_id);
                    }
                }
                Effect::SendOrigin {
                    req_id,
                    seq,
                    attempt,
                } => {
                    if !self.cfg.faults.origin_dropped(seq, attempt) {
                        self.send_origin(ctx, req_id);
                    }
                }
                Effect::SendUpload { req_id } => self.send_upload(ctx, req_id),
                Effect::ProbeEdge { req_id } => {
                    // The simulated access link is always attached (loss is
                    // per-message), so an edge probe succeeds — mirroring
                    // the live driver's reconnect of a reachable edge.
                    queue.extend(self.engine.on_probe_result(req_id, true));
                }
                Effect::Complete { record, .. } => {
                    self.tel
                        .observe("qoe.latency_ns", record.completed_ns - record.issued_ns);
                    self.tel.span_exit(
                        record.completed_ns,
                        "request",
                        vec![
                            ("client", Value::from(self.client_idx)),
                            ("seq", Value::from(record.req_id & TOKEN_MASK)),
                            ("path", Value::from(path_label(record.path))),
                        ],
                    );
                    self.records.borrow_mut().push(record);
                    self.advance_closed_loop(ctx, (record.req_id & TOKEN_MASK) as usize);
                }
                Effect::GiveUp { req_id } => {
                    self.tel.span_exit(
                        self.clock.now_ns(),
                        "request",
                        vec![
                            ("client", Value::from(self.client_idx)),
                            ("seq", Value::from(req_id & TOKEN_MASK)),
                            ("path", Value::from("failed")),
                        ],
                    );
                    *self.failures.borrow_mut() += 1;
                    self.advance_closed_loop(ctx, (req_id & TOKEN_MASK) as usize);
                }
            }
        }
        let decisions = self.engine.drain_decisions();
        let now = self.clock.now_ns();
        for d in &decisions {
            record_decision(&self.tel, now, self.client_idx, d);
        }
        self.trace_out.borrow_mut().extend(decisions);
    }
}

impl Node<Msg> for ClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.cfg.closed_loop {
            if !self.requests.is_empty() {
                ctx.set_timer(SimDuration::from_nanos(self.requests[0].at_ns), TOKEN_ISSUE);
            }
        } else {
            for i in 0..self.requests.len() {
                let at = self.requests[i].at_ns;
                ctx.set_timer(SimDuration::from_nanos(at), TOKEN_ISSUE | i as u64);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        self.clock.set(ctx.now());
        let idx = (token & TOKEN_MASK) as usize;
        if token & TOKEN_ISSUE != 0 {
            // Capture + preprocess, then transmit when done.
            let prepared = self.logic.prepare(&self.requests[idx]);
            let req_id = self.req_id(ctx, idx);
            let issued_ns = ctx.now().as_nanos();
            let prep_ns = prepared.prep_ns;
            let kind = prepared.task.kind();
            self.prepared[idx] = Some(prepared);
            self.tel.span_enter(
                issued_ns,
                "request",
                vec![
                    ("client", Value::from(self.client_idx)),
                    ("seq", Value::from(idx as u64)),
                    ("kind", Value::from(kind)),
                ],
            );
            let effects = self.engine.begin(req_id, kind, issued_ns, prep_ns);
            self.apply(ctx, effects);
        } else if token & TOKEN_SHAPED != 0 {
            if let Some((routed, bytes, msg)) = self.shaped[idx].take() {
                if routed {
                    ctx.send_routed(self.cloud, bytes, msg);
                } else {
                    ctx.send(self.edge, bytes, msg);
                }
            }
        } else {
            let kind = if token & TOKEN_PREP != 0 {
                TimerKind::Prep
            } else if token & TOKEN_TIMEOUT != 0 {
                TimerKind::Deadline
            } else if token & TOKEN_BACKOFF != 0 {
                TimerKind::Backoff
            } else {
                panic!("unknown client timer token {token:#x}");
            };
            let epoch = ((token >> 32) & EPOCH_MASK) as u32;
            let req_id = self.req_id(ctx, idx);
            let effects = self.engine.on_timer(req_id, kind, epoch);
            self.apply(ctx, effects);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        self.clock.set(ctx.now());
        let (req_id, kind, result) = match msg {
            Msg::Hit { req_id, result } => (req_id, ReplyKind::Hit, Some(result)),
            Msg::Result { req_id, result } => (req_id, ReplyKind::Result, Some(result)),
            Msg::PeerResult { req_id, result } => (req_id, ReplyKind::PeerResult, Some(result)),
            Msg::BaselineReply { req_id, result } => (req_id, ReplyKind::Baseline, Some(result)),
            Msg::NeedPayload { req_id } => (req_id, ReplyKind::NeedPayload, None),
            Msg::Unavailable { req_id } => (req_id, ReplyKind::Unavailable, None),
            Msg::Overloaded {
                req_id,
                retry_after_ms,
            } => (req_id, ReplyKind::Overloaded { retry_after_ms }, None),
            other => panic!("client received unexpected {other:?}"),
        };
        // The simulator owns the ground truth, so it judges correctness at
        // the reply boundary and hands the verdict to the engine.
        let correct = result.as_ref().and_then(|r| {
            let idx = (req_id & TOKEN_MASK) as usize;
            let prepared = self.prepared[idx].as_ref().expect("reply before prepare");
            recognition_correct(r, prepared.truth)
        });
        let effects = self.engine.on_reply(req_id, kind, correct);
        self.apply(ctx, effects);
    }
}

struct EdgeNode {
    cfg: SimConfig,
    /// Shared handle so the driver can publish cache metrics after the
    /// run (the simulator owns the boxed node until it is dropped).
    service: Rc<RefCell<EdgeService>>,
    /// Executes recognition locally when `exec_tier == Edge`.
    executor: Arc<CloudService>,
    cloud: NodeId,
    /// Replies being delayed by the cache-lookup cost: token → (dest, msg).
    pending_replies: HashMap<u64, (NodeId, Msg)>,
    /// In-flight cloud executions: req_id → (client, descriptor).
    pending_cloud: HashMap<u64, (NodeId, FeatureDescriptor)>,
    /// Miss coalescing for exact (hash-keyed) tasks, via the engine's
    /// single-flight table: the first miss leads the fetch (peer or cloud);
    /// later misses on the same digest queue as waiters and share its
    /// answer, so a burst of co-watching viewers costs one WAN fetch, not
    /// N. The live edge uses the same table with condvar waiters.
    flights: SingleFlight<coic_cache::Digest, (NodeId, u64)>,
    /// Circuit breaker guarding the upstream (edge→cloud) leg, shared with
    /// the live edge. The simulated WAN reports every reply as a success,
    /// so the breaker stays closed here; it exists so both drivers route
    /// client-blocking upstream sends through the identical preflight /
    /// report funnel.
    gate: UpstreamGate,
    /// Robustness counters the gate mirrors its transitions into.
    stats: RobustnessStats,
    /// Overload control (admission + brownout), present when the run was
    /// configured with [`SimConfig::admission`]. `None` preserves the
    /// classic serve-on-arrival behavior bit for bit.
    overload: Option<OverloadControl>,
    /// Queries admitted to the bounded queue, waiting for a service slot:
    /// req_id → held query.
    queued_work: HashMap<u64, QueuedQuery>,
    /// Service-completion timers for admitted queries: token → the time
    /// the query was first offered (its sojourn feeds the AIMD limiter).
    in_service: HashMap<u64, u64>,
    /// Cooperating peer edges (empty in single-edge runs).
    peers: Vec<NodeId>,
    /// Outstanding peer queries: req_id → wait state.
    pending_peer: HashMap<u64, PeerWait>,
    /// Cooperative cluster policy (ring + breakers + hot trackers), when
    /// the run was configured with [`SimConfig::cluster`].
    cluster: Option<ClusterState>,
    /// Cluster [`EdgeId`] → simulator node, indexed by edge id (includes
    /// this edge itself at `edge_idx`).
    edge_nodes: Vec<NodeId>,
    /// Outstanding cluster probe rounds: req_id → wait state.
    pending_cluster: HashMap<u64, ClusterWait>,
    /// Armed probe deadlines: timer token → (req_id, probed peer).
    probe_timeouts: HashMap<u64, (u64, EdgeId)>,
    /// When set, the edge is dead from this virtual instant on: every
    /// message and timer is silently dropped (a crashed process).
    down_at_ns: Option<u64>,
    /// Whether the one-shot `edge.down` trace marker has been emitted.
    /// The trace verifier's `quiet-after` invariant keys off it: after
    /// the marker, no further events may carry this edge's id.
    down_noted: bool,
    /// Panorama prefetcher: learned frame→digest mapping, in-flight
    /// prefetches by synthetic req_id, and frame ids being prefetched.
    known_frames: HashMap<u64, coic_cache::Digest>,
    prefetch_inflight: HashMap<u64, u64>,
    prefetching: std::collections::HashSet<u64>,
    next_prefetch: u64,
    next_token: u64,
    tel: Telemetry,
    edge_idx: u64,
}

/// Synthetic request-id namespace for edge-initiated prefetches (client
/// req_ids keep bit 63 clear because node indexes fit in 32 bits).
const PREFETCH_REQ: u64 = 1 << 63;

struct PeerWait {
    client: NodeId,
    descriptor: FeatureDescriptor,
    task: TaskRequest,
    outstanding: usize,
    satisfied: bool,
}

/// One cluster probe round: the bounded fan-out a miss sent along the
/// ring, waiting for replies (or per-probe deadlines) before the cloud.
struct ClusterWait {
    client: NodeId,
    descriptor: FeatureDescriptor,
    task: TaskRequest,
    /// Peers still owing a reply; a reply (or timeout) removes its peer,
    /// and the empty set resolves the round.
    outstanding: Vec<EdgeId>,
    satisfied: bool,
    started_ns: u64,
}

/// A query waiting in the admission queue for a service slot.
struct QueuedQuery {
    client: NodeId,
    descriptor: FeatureDescriptor,
    hint: Option<TaskRequest>,
    offered_at: u64,
}

impl EdgeNode {
    /// Proactively fetch the frames that follow `frame_id` in the stream.
    fn maybe_prefetch(&mut self, ctx: &mut Ctx<'_, Msg>, frame_id: u64) {
        for d in 1..=self.cfg.prefetch_depth as u64 {
            let f = frame_id + d;
            if self.prefetching.contains(&f) {
                continue;
            }
            if let Some(digest) = self.known_frames.get(&f) {
                if self.service.borrow().exact_contains(digest) {
                    continue; // already cached
                }
            }
            let req_id = PREFETCH_REQ | self.next_prefetch;
            self.next_prefetch += 1;
            self.prefetch_inflight.insert(req_id, f);
            self.prefetching.insert(f);
            let msg = Msg::Forward {
                req_id,
                task: TaskRequest::Panorama { frame_id: f },
            };
            let bytes = wire_len(&msg, &self.cfg);
            ctx.send(self.cloud, bytes, msg);
        }
    }

    fn delay_send(&mut self, ctx: &mut Ctx<'_, Msg>, after_ns: u64, dest: NodeId, msg: Msg) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending_replies.insert(token, (dest, msg));
        ctx.set_timer(SimDuration::from_nanos(after_ns), token);
    }

    /// Refuse a request whose upstream leg the breaker gate rejected:
    /// answer the leader and every coalesced waiter with `Unavailable` so
    /// their engines can degrade to the origin path.
    fn refuse(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        descriptor: &FeatureDescriptor,
        client: NodeId,
        req_id: u64,
    ) {
        self.stats.count_unavailable();
        self.tel.event(
            ctx.now().as_nanos(),
            "edge.unavailable",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
            ],
        );
        let mut victims = vec![(client, req_id)];
        if let Some(digest) = crate::services::descriptor_digest(descriptor) {
            victims.extend(self.flights.complete(&digest));
        }
        for (dest, waiter_req) in victims {
            let msg = Msg::Unavailable { req_id: waiter_req };
            let bytes = wire_len(&msg, &self.cfg);
            ctx.send(dest, bytes, msg);
        }
    }

    /// The edge's local processing time for one query: the cache-lookup
    /// cost plus any injected slow-service fault (zero when unscheduled,
    /// so fault-free runs are byte-identical to the pre-fault simulator).
    fn service_ns(&self, req_id: u64) -> u64 {
        self.cfg.compute.lookup_ns + self.cfg.faults.edge_slow_ns(req_id & TOKEN_MASK)
    }

    /// Is the edge dead (per the kill schedule) at virtual time `now`?
    fn is_down(&self, now: u64) -> bool {
        self.down_at_ns.is_some_and(|t| now >= t)
    }

    /// One `decision.peer_*` trace event, tagged with this edge, the
    /// request, and the peer involved.
    fn cluster_event(&mut self, now: u64, name: &'static str, req_id: u64, peer: EdgeId) {
        self.tel.event(
            now,
            name,
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
                ("peer", Value::from(peer as u64)),
            ],
        );
    }

    /// Emit `cluster.peer_state` when a probe outcome moved a peer's
    /// breaker (trip, rejoin, half-open re-trip). The trace verifier
    /// checks these transitions against the breaker's legal state
    /// machine and ties the ring-rebuild counter to them.
    fn peer_state_event(
        &mut self,
        now: u64,
        req_id: u64,
        peer: EdgeId,
        transition: Option<(BreakerState, BreakerState)>,
    ) {
        let Some((from, to)) = transition else {
            return;
        };
        self.tel.event(
            now,
            "cluster.peer_state",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
                ("peer", Value::from(peer as u64)),
                ("from", Value::from(from.as_str())),
                ("to", Value::from(to.as_str())),
            ],
        );
    }

    /// One-shot `edge.down` marker, emitted the first time the dead edge
    /// swallows a message or timer. Everything after it must stay silent
    /// for this edge id (`quiet-after` trace invariant).
    fn note_down(&mut self, now: u64) {
        if !self.down_noted {
            self.down_noted = true;
            self.tel
                .event(now, "edge.down", vec![("edge", Value::from(self.edge_idx))]);
        }
    }

    /// A cluster probe round exhausted its fan-out without a hit: forward
    /// to the cloud through the breaker gate, exactly like a direct miss.
    fn cluster_cloud_fallback(&mut self, ctx: &mut Ctx<'_, Msg>, req_id: u64, wait: ClusterWait) {
        let now = ctx.now().as_nanos();
        if !self.gate.preflight(now) {
            self.refuse(ctx, &wait.descriptor, wait.client, req_id);
            return;
        }
        self.pending_cloud
            .insert(req_id, (wait.client, wait.descriptor));
        self.tel.event(
            now,
            "cloud.forward",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
            ],
        );
        let msg = Msg::Forward {
            req_id,
            task: wait.task,
        };
        let bytes = wire_len(&msg, &self.cfg);
        ctx.send(self.cloud, bytes, msg);
    }

    /// A probe deadline fired. If the peer still owes its reply, count the
    /// timeout against its breaker and, when the round is drained, resolve
    /// it (cloud fallback unless a hit already satisfied it). A deadline
    /// whose reply arrived first finds the peer gone and does nothing.
    fn probe_timed_out(&mut self, ctx: &mut Ctx<'_, Msg>, req_id: u64, peer: EdgeId) {
        let now = ctx.now().as_nanos();
        let Some(wait) = self.pending_cluster.get_mut(&req_id) else {
            return; // round already resolved
        };
        let Some(pos) = wait.outstanding.iter().position(|&p| p == peer) else {
            return; // this probe already answered
        };
        wait.outstanding.remove(pos);
        let drained = wait.outstanding.is_empty();
        let cl = self.cluster.as_mut().expect("cluster wait without cluster");
        let transition = cl.record_probe(peer, false, now);
        cl.stats().count_peer_timeout();
        self.cluster_event(now, "decision.peer_timeout", req_id, peer);
        self.peer_state_event(now, req_id, peer, transition);
        if drained {
            let wait = self
                .pending_cluster
                .remove(&req_id)
                .expect("wait checked above");
            if !wait.satisfied {
                self.cluster_cloud_fallback(ctx, req_id, wait);
            }
        }
    }

    /// A peer answered a cluster probe: feed its breaker, serve the client
    /// on the first hit (keeping a local replica only when this edge owns
    /// the digest or its own demand made it hot), and fall back to the
    /// cloud when the whole round drained empty.
    fn cluster_peer_reply(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req_id: u64,
        result: Option<TaskResult>,
    ) {
        let now = ctx.now().as_nanos();
        let peer = self
            .edge_nodes
            .iter()
            .position(|&n| n == from)
            .expect("peer reply from outside the cluster") as EdgeId;
        let Some(wait) = self.pending_cluster.get_mut(&req_id) else {
            return; // round already resolved
        };
        let Some(pos) = wait.outstanding.iter().position(|&p| p == peer) else {
            return; // reply landed after its own deadline already fired
        };
        wait.outstanding.remove(pos);
        let drained = wait.outstanding.is_empty();
        let fresh_hit = result.is_some() && !wait.satisfied;
        if fresh_hit {
            wait.satisfied = true;
        }
        let client = wait.client;
        let descriptor = wait.descriptor.clone();
        let was_satisfied = wait.satisfied;
        let started_ns = wait.started_ns;
        if drained {
            let wait = self
                .pending_cluster
                .remove(&req_id)
                .expect("wait checked above");
            if !was_satisfied {
                // Every probe missed (reply in hand means the peer is
                // healthy — record before falling back).
                let cl = self.cluster.as_mut().expect("cluster wait");
                let transition = cl.record_probe(peer, true, now);
                cl.stats().count_peer_miss();
                self.cluster_event(now, "decision.peer_miss", req_id, peer);
                self.peer_state_event(now, req_id, peer, transition);
                self.cluster_cloud_fallback(ctx, req_id, wait);
                return;
            }
        }
        let transition = self
            .cluster
            .as_mut()
            .expect("cluster wait")
            .record_probe(peer, true, now);
        self.peer_state_event(now, req_id, peer, transition);
        let cl = self.cluster.as_mut().expect("cluster wait");
        let Some(result) = result else {
            if !was_satisfied {
                cl.stats().count_peer_miss();
                self.cluster_event(now, "decision.peer_miss", req_id, peer);
            }
            return;
        };
        if !fresh_hit {
            return; // late duplicate hit; client already answered
        }
        cl.stats().count_peer_hit();
        let digest =
            crate::services::descriptor_digest(&descriptor).expect("cluster wait implies digest");
        let keep = cl.is_owner(&digest) || cl.is_locally_hot(&digest);
        if keep && !cl.is_owner(&digest) {
            cl.stats().count_replica_keep();
        }
        self.cluster_event(now, "decision.peer_hit", req_id, peer);
        self.tel
            .registry()
            .observe("cluster.peer_latency_ns", now.saturating_sub(started_ns));
        if keep {
            self.service.borrow_mut().insert(&descriptor, &result, now);
        }
        for (waiter, waiter_req) in self.flights.complete(&digest) {
            let msg = Msg::PeerResult {
                req_id: waiter_req,
                result: result.clone(),
            };
            let bytes = wire_len(&msg, &self.cfg);
            ctx.send(waiter, bytes, msg);
        }
        let msg = Msg::PeerResult { req_id, result };
        let bytes = wire_len(&msg, &self.cfg);
        ctx.send(client, bytes, msg);
    }

    /// Shed one request: reply `Msg::Overloaded` with the retry-after
    /// hint and record the event.
    fn send_overloaded(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        dest: NodeId,
        req_id: u64,
        retry_after_ms: u32,
        reason: &'static str,
    ) {
        self.stats.count_shed();
        self.tel.event(
            ctx.now().as_nanos(),
            "edge.shed",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
                ("reason", Value::from(reason)),
                ("retry_after_ms", Value::from(retry_after_ms)),
            ],
        );
        let msg = Msg::Overloaded {
            req_id,
            retry_after_ms,
        };
        let bytes = wire_len(&msg, &self.cfg);
        ctx.send(dest, bytes, msg);
    }

    /// Shed a request the admission controller dropped from its queue.
    fn shed_queued(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req_id: u64,
        retry_after_ms: u32,
        reason: &'static str,
    ) {
        if let Some(q) = self.queued_work.remove(&req_id) {
            self.send_overloaded(ctx, q.client, req_id, retry_after_ms, reason);
        }
    }

    /// Record a brownout transition: one trace event per change plus the
    /// state gauge.
    fn note_brownout(&mut self, now: u64, state: BrownoutState) {
        self.tel.event(
            now,
            "edge.brownout_state",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("state", Value::from(state.as_str())),
            ],
        );
        self.tel
            .registry()
            .gauge_set("edge.brownout_state", state.as_gauge() as i64);
    }

    /// Admission-controlled entry for a query: offer it to the overload
    /// controller and realize the verdict (serve now, hold in the queue,
    /// or shed), plus any queue sheds and brownout transition the offer
    /// triggered.
    fn offer_query(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req_id: u64,
        descriptor: FeatureDescriptor,
        hint: Option<TaskRequest>,
    ) {
        let now = ctx.now().as_nanos();
        let Some(ctl) = self.overload.as_mut() else {
            return;
        };
        // lint: allow(release-admission-slots, Serve routes through start_service whose finish_service releases the slot; Shed/queue paths call note_shed)
        let decision = ctl.offer(req_id, now);
        let retry_after = ctl.retry_after_ms();
        if let Some(state) = decision.transition {
            self.note_brownout(now, state);
        }
        for victim in decision.shed {
            self.shed_queued(ctx, victim, retry_after, "queue");
        }
        match decision.verdict {
            Verdict::Serve | Verdict::ServeCachedOnly => {
                self.start_service(ctx, from, req_id, descriptor, hint, now, false);
            }
            Verdict::Queued => {
                self.queued_work.insert(
                    req_id,
                    QueuedQuery {
                        client: from,
                        descriptor,
                        hint,
                        offered_at: now,
                    },
                );
            }
            Verdict::Shed { retry_after_ms } => {
                self.send_overloaded(ctx, from, req_id, retry_after_ms, "refused");
            }
        }
    }

    /// Begin service of an admitted query: arm the completion timer that
    /// will return the slot to the controller, then run the ordinary
    /// lookup/reply/forward path (cache-hits-only while Degraded).
    #[allow(clippy::too_many_arguments)]
    fn start_service(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        req_id: u64,
        descriptor: FeatureDescriptor,
        hint: Option<TaskRequest>,
        offered_at: u64,
        queued: bool,
    ) {
        let now = ctx.now().as_nanos();
        self.stats.count_admitted();
        self.tel.event(
            now,
            "edge.admitted",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
                ("queued", Value::from(queued)),
            ],
        );
        let cached_only = self
            .overload
            .as_ref()
            .is_some_and(|c| c.state() == BrownoutState::Degraded);
        let service_ns = self.service_ns(req_id);
        let token = self.next_token;
        self.next_token += 1;
        self.in_service.insert(token, offered_at);
        ctx.set_timer(SimDuration::from_nanos(service_ns), token);
        self.serve_query(
            ctx,
            client,
            req_id,
            descriptor,
            hint,
            service_ns,
            cached_only,
        );
    }

    /// A service slot came free: feed the observed sojourn to the AIMD
    /// limiter, shed aged-out waiters, and start the queued queries the
    /// new limit admits.
    fn finish_service(&mut self, ctx: &mut Ctx<'_, Msg>, offered_at: u64) {
        let now = ctx.now().as_nanos();
        let Some(ctl) = self.overload.as_mut() else {
            return;
        };
        let (drain, transition) = ctl.release(now.saturating_sub(offered_at), now);
        let retry_after = ctl.retry_after_ms();
        if let Some(state) = transition {
            self.note_brownout(now, state);
        }
        for victim in drain.shed {
            self.shed_queued(ctx, victim, retry_after, "aged_out");
        }
        for id in drain.start {
            let Some(q) = self.queued_work.remove(&id) else {
                continue;
            };
            self.start_service(ctx, q.client, id, q.descriptor, q.hint, q.offered_at, true);
        }
    }

    /// Serve one query: cache lookup, then reply / request payload /
    /// forward upstream. `service_ns` is the edge's local processing
    /// time charged before the reply (or forward) leaves. With
    /// `cached_only` (the Degraded brownout rung) misses are shed
    /// instead of spending recognition or upstream capacity.
    #[allow(clippy::too_many_arguments)]
    fn serve_query(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req_id: u64,
        descriptor: FeatureDescriptor,
        hint: Option<TaskRequest>,
        service_ns: u64,
        cached_only: bool,
    ) {
        let now = ctx.now().as_nanos();
        // The typed lookup drives both the reply and the trace: the
        // event records *why* the cache answered (exact vs approx
        // vs miss) — the field the ad-hoc stats never captured.
        let outcome = self.service.borrow_mut().lookup(&descriptor, now);
        self.tel.event(
            now,
            "edge.lookup",
            vec![
                ("edge", Value::from(self.edge_idx)),
                ("req", Value::from(req_id)),
                ("kind", Value::from(outcome.kind_str())),
                ("hit", Value::from(outcome.is_hit())),
            ],
        );
        let reply = match outcome.into_value() {
            Some(result) => EdgeReply::Hit(result),
            None if cached_only => {
                // Degraded brownout: only cache hits are served; the
                // slot is still returned through the service timer.
                let retry_after_ms = match self.overload.as_mut() {
                    Some(ctl) => {
                        ctl.note_shed();
                        ctl.retry_after_ms()
                    }
                    None => 0,
                };
                self.send_overloaded(ctx, from, req_id, retry_after_ms, "degraded_miss");
                return;
            }
            None => match hint.as_ref() {
                Some(task) => EdgeReply::Forward(task.clone()),
                None => EdgeReply::NeedPayload,
            },
        };
        match reply {
            EdgeReply::Hit(result) => {
                self.delay_send(ctx, service_ns, from, Msg::Hit { req_id, result });
            }
            EdgeReply::NeedPayload => {
                self.pending_cloud.insert(req_id, (from, descriptor));
                self.delay_send(ctx, service_ns, from, Msg::NeedPayload { req_id });
            }
            EdgeReply::Forward(task) => {
                // Coalesce concurrent misses on the same content.
                if let Some(digest) = crate::services::descriptor_digest(&descriptor) {
                    // Waiters queue behind the leader's fetch; note
                    // the leader itself is answered via
                    // pending_cloud/pending_peer, not the table.
                    if let FlightClaim::Queued = self.flights.claim(digest, (from, req_id)) {
                        self.tel.event(
                            now,
                            "flight.queued",
                            vec![
                                ("edge", Value::from(self.edge_idx)),
                                ("req", Value::from(req_id)),
                            ],
                        );
                        return;
                    }
                    // Cooperative cluster tier: probe at most
                    // `peer_fanout` peers along the ring from the
                    // digest's owner, each under its own deadline,
                    // before any cloud forward.
                    if self.cluster.is_some() {
                        let (plan, timeout_ms, stats) = {
                            let cl = self.cluster.as_mut().expect("checked above");
                            cl.note_local_request(&digest);
                            (
                                cl.plan(&digest, now),
                                cl.config().peer_timeout_ms,
                                cl.stats().clone(),
                            )
                        };
                        if !plan.peers.is_empty() {
                            if plan.failover {
                                self.cluster_event(
                                    now,
                                    "decision.peer_failover",
                                    req_id,
                                    plan.peers[0],
                                );
                            }
                            self.pending_cluster.insert(
                                req_id,
                                ClusterWait {
                                    client: from,
                                    descriptor,
                                    task,
                                    outstanding: plan.peers.clone(),
                                    satisfied: false,
                                    started_ns: now,
                                },
                            );
                            // Each probe leaves after the service time and
                            // has until `peer_timeout_ms` after that to
                            // answer before its breaker hears a failure.
                            let deadline_ns = service_ns + timeout_ms * 1_000_000;
                            for &peer in &plan.peers {
                                // Probes are counted here, at send time,
                                // so the counter matches the probes (and
                                // trace events) actually emitted.
                                stats.count_probe();
                                self.cluster_event(now, "decision.peer_probe", req_id, peer);
                                let dest = self.edge_nodes[peer as usize];
                                self.delay_send(
                                    ctx,
                                    service_ns,
                                    dest,
                                    Msg::PeerQuery { req_id, digest },
                                );
                                let token = self.next_token;
                                self.next_token += 1;
                                self.probe_timeouts.insert(token, (req_id, peer));
                                ctx.set_timer(SimDuration::from_nanos(deadline_ns), token);
                            }
                            return;
                        }
                        // Empty plan (all peers dead or single edge):
                        // fall through to the gated cloud forward.
                    } else if self.cfg.peer_lookup && !self.peers.is_empty() {
                        self.pending_peer.insert(
                            req_id,
                            PeerWait {
                                client: from,
                                descriptor,
                                task,
                                outstanding: self.peers.len(),
                                satisfied: false,
                            },
                        );
                        for peer in self.peers.clone() {
                            self.delay_send(
                                ctx,
                                service_ns,
                                peer,
                                Msg::PeerQuery { req_id, digest },
                            );
                        }
                        return;
                    }
                }
                // The client-blocking upstream fetch goes through
                // the breaker gate, exactly like the live edge.
                if !self.gate.preflight(now) {
                    self.refuse(ctx, &descriptor, from, req_id);
                    return;
                }
                self.pending_cloud.insert(req_id, (from, descriptor));
                self.tel.event(
                    now,
                    "cloud.forward",
                    vec![
                        ("edge", Value::from(self.edge_idx)),
                        ("req", Value::from(req_id)),
                    ],
                );
                self.delay_send(ctx, service_ns, self.cloud, Msg::Forward { req_id, task });
            }
        }
    }
}

impl Node<Msg> for EdgeNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now().as_nanos();
        if self.is_down(now) {
            self.note_down(now);
            return; // dead edges answer nothing
        }
        match msg {
            Msg::Query {
                req_id,
                descriptor,
                hint,
            } => {
                // Sequential-stream prefetching: learn the frame→digest
                // mapping from the query itself and fetch ahead.
                if self.cfg.prefetch_depth > 0 {
                    if let (
                        FeatureDescriptor::PanoramaHash(d),
                        Some(TaskRequest::Panorama { frame_id }),
                    ) = (&descriptor, hint.as_ref())
                    {
                        self.known_frames.insert(*frame_id, *d);
                        let frame_id = *frame_id;
                        self.maybe_prefetch(ctx, frame_id);
                    }
                }
                if self.overload.is_some() {
                    self.offer_query(ctx, from, req_id, descriptor, hint);
                } else {
                    // Classic serve-on-arrival path (no admission control).
                    let service_ns = self.service_ns(req_id);
                    self.serve_query(ctx, from, req_id, descriptor, hint, service_ns, false);
                }
            }
            Msg::Upload { req_id, task } => {
                if self.cfg.exec_tier == ExecTier::Edge
                    && matches!(task, TaskRequest::Recognition { .. })
                {
                    // Run the DNN here on the edge box: slower silicon than
                    // the cloud, but no WAN round trip.
                    let (result, _) = self.executor.execute(&task);
                    let cost_ns = self
                        .cfg
                        .compute
                        .edge
                        .time_ns(self.cfg.compute.full_dnn_macs);
                    let (client, descriptor) = self
                        .pending_cloud
                        .remove(&req_id)
                        .expect("upload for unknown request");
                    self.service.borrow_mut().insert(&descriptor, &result, now);
                    self.delay_send(ctx, cost_ns, client, Msg::Result { req_id, result });
                    return;
                }
                // Relay the full payload to the cloud — client-blocking, so
                // it passes through the breaker gate like any upstream leg.
                if !self.gate.preflight(now) {
                    self.stats.count_unavailable();
                    if let Some((client, _)) = self.pending_cloud.remove(&req_id) {
                        let msg = Msg::Unavailable { req_id };
                        let bytes = wire_len(&msg, &self.cfg);
                        ctx.send(client, bytes, msg);
                    }
                    return;
                }
                self.tel.event(
                    now,
                    "cloud.forward",
                    vec![
                        ("edge", Value::from(self.edge_idx)),
                        ("req", Value::from(req_id)),
                    ],
                );
                let msg = Msg::Forward { req_id, task };
                let bytes = wire_len(&msg, &self.cfg);
                ctx.send(self.cloud, bytes, msg);
            }
            Msg::CloudReply { req_id, result } => {
                // Every cloud reply is an upstream success signal for the
                // breaker (the simulated WAN delivers or loses messages; it
                // never returns errors, so the gate only ever sees wins).
                self.gate.report(true, now);
                if let Some(frame_id) = self.prefetch_inflight.remove(&req_id) {
                    // A prefetch came back: content-address it and cache it.
                    if let TaskResult::Panorama(bytes) = &result {
                        let digest = coic_cache::Digest::of(bytes);
                        self.known_frames.insert(frame_id, digest);
                        self.service.borrow_mut().insert(
                            &FeatureDescriptor::PanoramaHash(digest),
                            &result,
                            now,
                        );
                    }
                    self.prefetching.remove(&frame_id);
                    return;
                }
                // Retransmissions can produce duplicate cloud replies for a
                // req_id whose state was already consumed; drop them.
                let Some((client, descriptor)) = self.pending_cloud.remove(&req_id) else {
                    return;
                };
                // Partition placement: under the cluster tier a non-owner
                // does not cache the exact result it fetched — it pushes
                // the copy to the digest's owner instead, so the entry
                // lives where the ring says future probes will look. The
                // fetching edge still keeps a replica once its own demand
                // crossed the hot threshold.
                let mut keep = true;
                let mut push: Option<(EdgeId, coic_cache::Digest)> = None;
                if let (Some(cl), Some(d)) = (
                    self.cluster.as_mut(),
                    crate::services::descriptor_digest(&descriptor),
                ) {
                    if !cl.is_owner(&d) {
                        keep = cl.is_locally_hot(&d);
                        if keep {
                            cl.stats().count_replica_keep();
                        }
                        push = cl.placement_target(&d).map(|owner| {
                            cl.stats().count_replication_copy();
                            (owner, d)
                        });
                    }
                }
                if keep {
                    self.service.borrow_mut().insert(&descriptor, &result, now);
                }
                if let Some((owner, digest)) = push {
                    self.cluster_event(now, "decision.peer_replicate", req_id, owner);
                    let token = self.cluster.as_ref().map_or(0, |cl| cl.config().auth_token);
                    let msg = Msg::Replicate {
                        req_id,
                        token,
                        digest,
                        result: result.clone(),
                    };
                    let bytes = wire_len(&msg, &self.cfg);
                    ctx.send(self.edge_nodes[owner as usize], bytes, msg);
                }
                // Answer every coalesced waiter with the same result.
                if let Some(digest) = crate::services::descriptor_digest(&descriptor) {
                    for (waiter, waiter_req) in self.flights.complete(&digest) {
                        let msg = Msg::Result {
                            req_id: waiter_req,
                            result: result.clone(),
                        };
                        let bytes = wire_len(&msg, &self.cfg);
                        ctx.send(waiter, bytes, msg);
                    }
                }
                let msg = Msg::Result { req_id, result };
                let bytes = wire_len(&msg, &self.cfg);
                ctx.send(client, bytes, msg);
            }
            Msg::BaselineRequest { req_id, task } => {
                // Origin baseline with edge execution: the edge box runs
                // the task (recognition only) with no cache.
                assert_eq!(
                    self.cfg.exec_tier,
                    ExecTier::Edge,
                    "edge received BaselineRequest in cloud-exec mode"
                );
                let (result, cloud_cost) = self.executor.execute(&task);
                let cost_ns = if matches!(task, TaskRequest::Recognition { .. }) {
                    self.cfg
                        .compute
                        .edge
                        .time_ns(self.cfg.compute.full_dnn_macs)
                } else {
                    cloud_cost
                };
                let client = NodeId((req_id >> 32) as usize);
                self.delay_send(ctx, cost_ns, client, Msg::BaselineReply { req_id, result });
            }
            Msg::PeerQuery { req_id, digest } => {
                let result = self.service.borrow_mut().exact_lookup(&digest, now);
                // Hot-entry failover replication: enough peer demand on an
                // entry this edge keeps answering pushes a copy to the
                // digest's ring successor, so the content survives this
                // edge dying.
                if result.is_some() {
                    let push = self.cluster.as_mut().and_then(|cl| {
                        if !cl.note_owner_request(&digest) {
                            return None;
                        }
                        cl.successor_target(&digest).inspect(|_| {
                            cl.stats().count_replication_copy();
                        })
                    });
                    if let Some(succ) = push {
                        self.cluster_event(now, "decision.peer_replicate", req_id, succ);
                        let token = self.cluster.as_ref().map_or(0, |cl| cl.config().auth_token);
                        let msg = Msg::Replicate {
                            req_id,
                            token,
                            digest,
                            result: result.clone().expect("checked is_some"),
                        };
                        let bytes = wire_len(&msg, &self.cfg);
                        ctx.send(self.edge_nodes[succ as usize], bytes, msg);
                    }
                }
                let lookup_ns = self.cfg.compute.lookup_ns;
                self.delay_send(ctx, lookup_ns, from, Msg::PeerReply { req_id, result });
            }
            Msg::Replicate {
                token,
                digest,
                result,
                ..
            } => {
                // Membership gate: install the pushed copy only when the
                // sender presented this cluster's token — an edge outside
                // the cluster (or with no cluster at all) must not be
                // able to plant entries.
                let member = self
                    .cluster
                    .as_ref()
                    .is_some_and(|cl| cl.config().auth_token == token);
                if !member {
                    return;
                }
                // Install under the content hash; the exact store is
                // keyed by digest, so the descriptor kind does not
                // matter.
                self.service.borrow_mut().insert(
                    &FeatureDescriptor::ModelHash(digest),
                    &result,
                    now,
                );
            }
            Msg::PeerReply { req_id, result } => {
                if self.pending_cluster.contains_key(&req_id) {
                    self.cluster_peer_reply(ctx, from, req_id, result);
                    return;
                }
                let Some(wait) = self.pending_peer.get_mut(&req_id) else {
                    return; // late reply after satisfaction and cleanup
                };
                wait.outstanding -= 1;
                match result {
                    Some(result) if !wait.satisfied => {
                        wait.satisfied = true;
                        let client = wait.client;
                        let descriptor = wait.descriptor.clone();
                        let done = wait.outstanding == 0;
                        self.service.borrow_mut().insert(&descriptor, &result, now);
                        if let Some(digest) = crate::services::descriptor_digest(&descriptor) {
                            for (waiter, waiter_req) in self.flights.complete(&digest) {
                                let msg = Msg::PeerResult {
                                    req_id: waiter_req,
                                    result: result.clone(),
                                };
                                let bytes = wire_len(&msg, &self.cfg);
                                ctx.send(waiter, bytes, msg);
                            }
                        }
                        let msg = Msg::PeerResult { req_id, result };
                        let bytes = wire_len(&msg, &self.cfg);
                        ctx.send(client, bytes, msg);
                        if done {
                            self.pending_peer.remove(&req_id);
                        }
                    }
                    _ => {
                        if wait.outstanding == 0 {
                            let wait = self.pending_peer.remove(&req_id).expect("wait exists");
                            if wait.satisfied {
                                return;
                            }
                            // Every peer missed: fall back to the cloud
                            // (client-blocking, so breaker-gated).
                            if !self.gate.preflight(now) {
                                self.refuse(ctx, &wait.descriptor, wait.client, req_id);
                                return;
                            }
                            self.pending_cloud
                                .insert(req_id, (wait.client, wait.descriptor));
                            let msg = Msg::Forward {
                                req_id,
                                task: wait.task,
                            };
                            let bytes = wire_len(&msg, &self.cfg);
                            ctx.send(self.cloud, bytes, msg);
                        }
                    }
                }
            }
            other => panic!("edge received unexpected {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if self.is_down(ctx.now().as_nanos()) {
            self.note_down(ctx.now().as_nanos());
            // Swallow the armed work so the maps do not leak.
            self.in_service.remove(&token);
            self.probe_timeouts.remove(&token);
            self.pending_replies.remove(&token);
            return;
        }
        // Service-completion timers return their slot to the admission
        // controller; probe deadlines feed the cluster breakers;
        // everything else is a delayed reply.
        if let Some(offered_at) = self.in_service.remove(&token) {
            self.finish_service(ctx, offered_at);
            return;
        }
        if let Some((req_id, peer)) = self.probe_timeouts.remove(&token) {
            self.probe_timed_out(ctx, req_id, peer);
            return;
        }
        let (dest, msg) = self
            .pending_replies
            .remove(&token)
            .expect("timer for unknown pending reply");
        let bytes = wire_len(&msg, &self.cfg);
        ctx.send(dest, bytes, msg);
    }
}

struct CloudNode {
    cfg: SimConfig,
    service: Arc<CloudService>,
    /// Executions in progress: token → (dest, routed?, reply).
    pending: HashMap<u64, (NodeId, bool, Msg)>,
    next_token: u64,
}

impl Node<Msg> for CloudNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Forward { req_id, task } => {
                let (result, cost_ns) = self.service.execute(&task);
                let token = self.next_token;
                self.next_token += 1;
                self.pending
                    .insert(token, (from, false, Msg::CloudReply { req_id, result }));
                ctx.set_timer(SimDuration::from_nanos(cost_ns), token);
            }
            Msg::BaselineRequest { req_id, task } => {
                // The issuing client's node id is encoded in the req_id.
                let client = NodeId((req_id >> 32) as usize);
                let (result, cost_ns) = self.service.execute(&task);
                let token = self.next_token;
                self.next_token += 1;
                self.pending
                    .insert(token, (client, true, Msg::BaselineReply { req_id, result }));
                ctx.set_timer(SimDuration::from_nanos(cost_ns), token);
            }
            other => panic!("cloud received unexpected {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let (dest, routed, msg) = self
            .pending
            .remove(&token)
            .expect("timer for unknown execution");
        let bytes = wire_len(&msg, &self.cfg);
        if routed {
            ctx.send_routed(dest, bytes, msg);
        } else {
            ctx.send(dest, bytes, msg);
        }
    }
}

/// Run `trace` under `cfg`; returns the QoE report.
///
/// # Panics
/// Panics if the trace is empty or the simulation stalls before all
/// requests complete (a protocol bug, which should fail loudly).
pub fn run(trace: &[coic_workload::Request], cfg: &SimConfig) -> QoeReport {
    run_traced(trace, cfg).0
}

/// Like [`run`], but additionally returns each client's engine decision
/// trace (hit/miss/retry/degrade sequence, indexed like the clients). The
/// traces carry no timestamps, so the same seeded workload and fault
/// schedule produces byte-identical traces here and in the live TCP driver
/// — the cross-driver determinism tests diff exactly these.
pub fn run_traced(
    trace: &[coic_workload::Request],
    cfg: &SimConfig,
) -> (QoeReport, Vec<Vec<Decision>>) {
    run_instrumented(trace, cfg, &Telemetry::disabled())
}

/// Like [`run_traced`], but records the run through `tel`: structured
/// trace spans/events for the full request lifecycle (issue → edge lookup
/// → coalesce/forward → complete), per-request latency histograms, and —
/// at the end of the run — the cache, robustness, link and QoE counters
/// published into the registry. All timestamps are virtual-clock ns, so
/// two seeded runs produce byte-identical traces and snapshots.
pub fn run_instrumented(
    trace: &[coic_workload::Request],
    cfg: &SimConfig,
    tel: &Telemetry,
) -> (QoeReport, Vec<Vec<Decision>>) {
    assert!(!trace.is_empty(), "empty trace");
    assert!(cfg.num_clients > 0, "need at least one client");

    // Shared content universe.
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(cfg.pano_height));

    // Distinct recognition classes in the trace train the cloud model.
    let mut classes: Vec<ObjectClass> = trace
        .iter()
        .filter_map(|r| match r.kind {
            coic_workload::RequestKind::Recognition { class, .. } => Some(ObjectClass(class)),
            _ => None,
        })
        .collect();
    classes.sort_unstable();
    classes.dedup();
    if classes.is_empty() {
        classes.push(ObjectClass(0)); // classifier must be non-empty
    }

    let gen = SceneGenerator::new(cfg.client.image_side);
    let client_logic = Arc::new(ClientLogic::new(
        cfg.client,
        cfg.compute,
        models.clone(),
        panos.clone(),
    ));
    let cloud_service = Arc::new(CloudService::new(
        &classes,
        &gen,
        cfg.compute,
        models.clone(),
        panos.clone(),
        cfg.seed,
    ));

    // Topology: clients 0..n-1, edges n..n+e-1, cloud last. Clients attach
    // to the edge serving their zone; edges form a LAN mesh and each has
    // its own WAN uplink.
    assert!(cfg.num_edges > 0, "need at least one edge");
    let mut topo = Topology::new();
    let client_ids: Vec<NodeId> = (0..cfg.num_clients)
        .map(|i| topo.add_node(format!("client{i}")))
        .collect();
    let edge_ids: Vec<NodeId> = (0..cfg.num_edges)
        .map(|i| topo.add_node(format!("edge{i}")))
        .collect();
    let cloud_id = topo.add_node("cloud");
    let mut access = LinkParams::mbps_ms(cfg.access_mbps, cfg.access_delay_ms);
    access.queue_limit_bytes = cfg.queue_limit_bytes;
    access.loss = cfg.access_loss;
    let mut wan = LinkParams::mbps_ms(cfg.wan_mbps, cfg.wan_delay_ms);
    wan.queue_limit_bytes = cfg.queue_limit_bytes;
    wan.loss = cfg.wan_loss;
    let mut lan = LinkParams::mbps_ms(cfg.lan_mbps, cfg.lan_delay_ms);
    lan.queue_limit_bytes = cfg.queue_limit_bytes;

    // Per-client requests and edge assignment (by the zone of the client's
    // first request; populations are static so all its requests agree).
    let per_client: Vec<Vec<coic_workload::Request>> = (0..cfg.num_clients as usize)
        .map(|i| {
            trace
                .iter()
                .filter(|r| r.user.0 as usize % cfg.num_clients as usize == i)
                .cloned()
                .collect()
        })
        .collect();
    let client_edge: Vec<NodeId> = per_client
        .iter()
        .map(|reqs| {
            let zone = reqs.first().map(|r| r.zone.0).unwrap_or(0);
            edge_ids[zone as usize % cfg.num_edges as usize]
        })
        .collect();

    for (i, &c) in client_ids.iter().enumerate() {
        topo.connect(c, client_edge[i], access);
    }
    for (i, &e) in edge_ids.iter().enumerate() {
        topo.connect(e, cloud_id, wan);
        for &f in &edge_ids[i + 1..] {
            topo.connect(e, f, lan);
        }
    }

    let mut sim: Simulator<Msg> = Simulator::new(topo, cfg.seed);
    let records: Rc<RefCell<Vec<Record>>> = Rc::new(RefCell::new(Vec::new()));
    let failures: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let traces: Vec<Rc<RefCell<Vec<Decision>>>> = (0..cfg.num_clients)
        .map(|_| Rc::new(RefCell::new(Vec::new())))
        .collect();

    // Robustness counter handles (clients and edges) for the end-of-run
    // registry publish.
    let mut robustness: Vec<RobustnessStats> = Vec::new();

    for (i, &cid) in client_ids.iter().enumerate() {
        let my_requests = per_client[i].clone();
        let n = my_requests.len();
        // One engine per client, driven by the shared virtual clock: the
        // node sets the clock from ctx.now() before every engine call.
        let clock = SimClock::new();
        let stats = RobustnessStats::default();
        robustness.push(stats.clone());
        let engine = ClientEngine::new(engine_config(cfg), clock.clone(), stats);
        sim.bind(
            cid,
            Box::new(ClientNode {
                cfg: cfg.clone(),
                engine,
                clock,
                shaper: cfg
                    .client_shaper
                    .map(|(mbps, burst)| coic_netsim::Shaper::new((mbps * 1e6) as u64, burst)),
                shaped: Vec::new(),
                logic: client_logic.clone(),
                requests: my_requests,
                prepared: vec![None; n],
                edge: client_edge[i],
                cloud: cloud_id,
                records: records.clone(),
                failures: failures.clone(),
                trace_out: traces[i].clone(),
                tel: tel.clone(),
                client_idx: i as u64,
            }),
        );
    }
    let mut edge_services: Vec<Rc<RefCell<EdgeService>>> = Vec::new();
    let mut cluster_stats: Vec<ClusterStats> = Vec::new();
    for (ei, &eid) in edge_ids.iter().enumerate() {
        let peers: Vec<NodeId> = edge_ids.iter().copied().filter(|&p| p != eid).collect();
        let cluster = cfg
            .cluster
            .as_ref()
            .map(|c| ClusterState::new(ei as u32, cfg.num_edges, c.clone()));
        if let Some(cl) = &cluster {
            cluster_stats.push(cl.stats().clone());
        }
        let down_at_ns = cfg
            .edge_down_ms
            .iter()
            .find(|&&(_, e)| e as usize == ei)
            .map(|&(ms, _)| ms * 1_000_000);
        // Same thresholds as the live edge's defaults; the simulated WAN
        // never reports upstream errors, so the gate is effectively
        // permissive here — it exists to keep one code path.
        let stats = RobustnessStats::default();
        robustness.push(stats.clone());
        let gate = UpstreamGate::new(3, Duration::from_millis(300), stats.clone());
        let service = Rc::new(RefCell::new(EdgeService::new(&cfg.edge)));
        edge_services.push(service.clone());
        sim.bind(
            eid,
            Box::new(EdgeNode {
                cfg: cfg.clone(),
                service,
                executor: cloud_service.clone(),
                cloud: cloud_id,
                pending_replies: HashMap::new(),
                pending_cloud: HashMap::new(),
                flights: SingleFlight::new(),
                gate,
                stats,
                overload: cfg
                    .admission
                    .clone()
                    .map(|a| OverloadControl::new(a, cfg.brownout.clone())),
                queued_work: HashMap::new(),
                in_service: HashMap::new(),
                peers,
                pending_peer: HashMap::new(),
                cluster,
                edge_nodes: edge_ids.clone(),
                pending_cluster: HashMap::new(),
                probe_timeouts: HashMap::new(),
                down_at_ns,
                down_noted: false,
                known_frames: HashMap::new(),
                prefetch_inflight: HashMap::new(),
                prefetching: std::collections::HashSet::new(),
                next_prefetch: 0,
                next_token: 0,
                tel: tel.clone(),
                edge_idx: ei as u64,
            }),
        );
    }
    sim.bind(
        cloud_id,
        Box::new(CloudNode {
            cfg: cfg.clone(),
            service: cloud_service,
            pending: HashMap::new(),
            next_token: 0,
        }),
    );

    // Apply the wireless-fading schedule to every access link.
    for &(at_ms, mbps) in &cfg.access_schedule {
        let mut p = LinkParams::mbps_ms(mbps, cfg.access_delay_ms);
        p.queue_limit_bytes = cfg.queue_limit_bytes;
        p.loss = cfg.access_loss;
        for (i, &c) in client_ids.iter().enumerate() {
            let e = client_edge[i];
            sim.reshape_at(coic_netsim::SimTime::from_millis(at_ms), c, e, p);
            sim.reshape_at(coic_netsim::SimTime::from_millis(at_ms), e, c, p);
        }
    }

    let events = sim.run(50_000_000);
    assert!(events < 50_000_000, "simulation did not converge");

    let completed = records.borrow().len();
    let failed = *failures.borrow();
    assert_eq!(
        completed as u64 + failed,
        trace.len() as u64,
        "only {completed}/{} requests completed, {failed} failed (drops: {:?})",
        trace.len(),
        sim.stats()
    );

    let mut report = QoeReport::from_records(&records.borrow());
    report.failed = failed;
    let t = sim.topology();
    for (i, &c) in client_ids.iter().enumerate() {
        let e = client_edge[i];
        report.access_bytes += t.link(c, e).unwrap().stats().delivered_bytes;
        report.access_bytes += t.link(e, c).unwrap().stats().delivered_bytes;
    }
    for &e in &edge_ids {
        report.wan_bytes += t.link(e, cloud_id).unwrap().stats().delivered_bytes;
        report.wan_bytes += t.link(cloud_id, e).unwrap().stats().delivered_bytes;
    }
    for (i, &e) in edge_ids.iter().enumerate() {
        for &f in &edge_ids[i + 1..] {
            report.lan_bytes += t.link(e, f).unwrap().stats().delivered_bytes;
            report.lan_bytes += t.link(f, e).unwrap().stats().delivered_bytes;
        }
    }
    // End-of-run registry publish: every legacy stats struct in the run —
    // cache counters, robustness counters, engine counters, the QoE report
    // itself — lands in the shared registry, from which each deprecated
    // facade view is derivable.
    for svc in &edge_services {
        // Flush any partial index journal so the published snapshot
        // telemetry reflects the whole run (inserts self-fold at the
        // rebuild batch; this folds the tail deterministically).
        svc.borrow_mut().maintain();
        svc.borrow().publish_metrics(tel.registry());
    }
    for s in &robustness {
        s.snapshot().publish(tel.registry());
    }
    for s in &cluster_stats {
        s.snapshot().publish(tel.registry());
    }
    sim.stats().publish(tel.registry());
    report.publish(tel.registry());

    let decision_traces = traces.iter().map(|t| t.borrow().clone()).collect();
    (report, decision_traces)
}

/// Run the same trace under Origin and CoIC and return
/// `(origin, coic, reduction_percent_of_mean_latency)`.
pub fn compare(trace: &[coic_workload::Request], cfg: &SimConfig) -> (QoeReport, QoeReport, f64) {
    let origin = run(
        trace,
        &SimConfig {
            mode: Mode::Origin,
            ..cfg.clone()
        },
    );
    let coic = run(
        trace,
        &SimConfig {
            mode: Mode::CoIc,
            ..cfg.clone()
        },
    );
    let red = crate::qoe::reduction_percent(origin.mean_latency_ms(), coic.mean_latency_ms());
    (origin, coic, red)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qoe::Path;
    use coic_workload::{
        Population, Request, RequestKind, SafeDrivingAr, UserId, ZoneId, ZoneModel,
    };

    fn recognition_trace(n: usize) -> Vec<Request> {
        SafeDrivingAr {
            population: Population::colocated(4, ZoneId(0)),
            zones: ZoneModel::new(1, 8, 1.0, 3),
            rate_per_sec: 20.0,
            zipf_s: 0.9,
            total_requests: n,
        }
        .generate(11)
    }

    fn render_trace() -> Vec<Request> {
        // Four users loading the same two models repeatedly.
        let mut reqs = Vec::new();
        for i in 0..16u64 {
            reqs.push(Request {
                user: UserId((i % 4) as u32),
                zone: ZoneId(0),
                at_ns: i * 50_000_000,
                kind: RequestKind::RenderLoad {
                    model_id: i % 2,
                    size_bytes: 400_000,
                },
            });
        }
        reqs
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            num_clients: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn coic_beats_origin_on_redundant_recognition() {
        let trace = recognition_trace(40);
        let (origin, coic, red) = compare(&trace, &small_cfg());
        assert_eq!(origin.completed, 40);
        assert_eq!(coic.completed, 40);
        assert!(coic.hit_ratio() > 0.3, "hit ratio {}", coic.hit_ratio());
        assert!(
            red > 10.0,
            "expected meaningful reduction, got {red:.1}% (origin {:.1}ms, coic {:.1}ms)",
            origin.mean_latency_ms(),
            coic.mean_latency_ms()
        );
    }

    #[test]
    fn origin_mode_never_hits() {
        let trace = recognition_trace(10);
        let report = run(
            &trace,
            &SimConfig {
                mode: Mode::Origin,
                ..small_cfg()
            },
        );
        assert_eq!(report.edge_hits, 0);
        assert_eq!(report.cloud_trips, 10);
    }

    #[test]
    fn render_loads_hit_after_first_fetch() {
        let trace = render_trace();
        let report = run(&trace, &small_cfg());
        // Two unique models; 16 requests; all but the first two of each
        // model can hit.
        assert!(report.edge_hits >= 10, "hits {}", report.edge_hits);
        // Hits are much faster than misses.
        let hit_misses: Vec<(f64, Path)> = Vec::new();
        drop(hit_misses);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = recognition_trace(20);
        let a = run(&trace, &small_cfg());
        let b = run(&trace, &small_cfg());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.edge_hits, b.edge_hits);
        assert_eq!(a.access_bytes, b.access_bytes);
        assert!((a.mean_latency_ms() - b.mean_latency_ms()).abs() < 1e-12);
    }

    #[test]
    fn slower_wan_widens_coic_advantage() {
        let trace = recognition_trace(30);
        let fast = SimConfig {
            wan_mbps: 100.0,
            ..small_cfg()
        };
        let slow = SimConfig {
            wan_mbps: 10.0,
            ..small_cfg()
        };
        let (_, _, red_fast) = compare(&trace, &fast);
        let (_, _, red_slow) = compare(&trace, &slow);
        assert!(
            red_slow > red_fast,
            "slow-WAN reduction {red_slow:.1}% should exceed fast-WAN {red_fast:.1}%"
        );
    }

    #[test]
    fn accuracy_reported_for_recognition() {
        let trace = recognition_trace(20);
        let report = run(&trace, &small_cfg());
        let acc = report.accuracy.expect("recognition trace has accuracy");
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn multi_edge_peer_lookup_serves_cross_zone_content() {
        // Users in two zones attach to two edges; zone 0 warms its edge,
        // then zone 1 requests the same model and must get a peer hit.
        let mut reqs = Vec::new();
        for i in 0..8u64 {
            reqs.push(Request {
                user: UserId(i as u32 % 4),
                zone: ZoneId((i % 4 % 2) as u32),
                at_ns: i * 400_000_000,
                kind: RequestKind::RenderLoad {
                    model_id: 7,
                    size_bytes: 300_000,
                },
            });
        }
        let cfg = SimConfig {
            num_clients: 4,
            num_edges: 2,
            peer_lookup: true,
            ..SimConfig::default()
        };
        let report = run(&reqs, &cfg);
        assert_eq!(report.completed, 8);
        assert!(report.peer_hits >= 1, "expected peer hits, got {report:?}");
        assert!(report.lan_bytes > 0);
        // Only one cloud fetch of the model should ever happen per edge at
        // most; with peer lookup, ideally once globally.
        assert!(
            report.cloud_trips <= 2,
            "cloud trips {}",
            report.cloud_trips
        );
    }

    #[test]
    fn multi_edge_without_peer_lookup_pays_cloud_per_edge() {
        let mut reqs = Vec::new();
        for i in 0..8u64 {
            reqs.push(Request {
                user: UserId(i as u32 % 4),
                zone: ZoneId((i % 4 % 2) as u32),
                at_ns: i * 400_000_000,
                kind: RequestKind::RenderLoad {
                    model_id: 7,
                    size_bytes: 300_000,
                },
            });
        }
        let mk = |peer_lookup| SimConfig {
            num_clients: 4,
            num_edges: 2,
            peer_lookup,
            ..SimConfig::default()
        };
        let without = run(&reqs, &mk(false));
        let with = run(&reqs, &mk(true));
        assert_eq!(without.peer_hits, 0);
        assert!(with.wan_bytes < without.wan_bytes);
        assert!(with.mean_latency_ms() <= without.mean_latency_ms());
    }

    #[test]
    fn peer_hit_latency_sits_between_local_and_cloud() {
        // One warmed peer: the home edge's first request is a peer hit,
        // its second a local hit; a fresh model is a cloud miss.
        let reqs = vec![
            // zone 1 warms edge 1
            Request {
                user: UserId(1),
                zone: ZoneId(1),
                at_ns: 0,
                kind: RequestKind::RenderLoad {
                    model_id: 3,
                    size_bytes: 500_000,
                },
            },
            // zone 0 asks for the same model → peer hit
            Request {
                user: UserId(0),
                zone: ZoneId(0),
                at_ns: 1_000_000_000,
                kind: RequestKind::RenderLoad {
                    model_id: 3,
                    size_bytes: 500_000,
                },
            },
            // zone 0 again → local hit
            Request {
                user: UserId(0),
                zone: ZoneId(0),
                at_ns: 2_000_000_000,
                kind: RequestKind::RenderLoad {
                    model_id: 3,
                    size_bytes: 500_000,
                },
            },
        ];
        let cfg = SimConfig {
            num_clients: 2,
            num_edges: 2,
            peer_lookup: true,
            ..SimConfig::default()
        };
        let report = run(&reqs, &cfg);
        assert_eq!(report.completed, 3);
        assert_eq!(report.cloud_trips, 1);
        assert_eq!(report.peer_hits, 1);
        assert_eq!(report.edge_hits, 1);
    }

    #[test]
    fn edge_execution_avoids_the_wan() {
        let trace = recognition_trace(20);
        let cloud_exec = run(&trace, &small_cfg());
        let edge_exec = run(
            &trace,
            &SimConfig {
                exec_tier: ExecTier::Edge,
                ..small_cfg()
            },
        );
        assert_eq!(edge_exec.completed, 20);
        // Recognition misses never cross the WAN under edge execution.
        assert_eq!(edge_exec.wan_bytes, 0);
        assert!(cloud_exec.wan_bytes > 0);
        // Accuracy unaffected: same model, different silicon.
        assert!(edge_exec.accuracy.unwrap() > 0.85);
    }

    #[test]
    fn origin_edge_execution_works_without_cache() {
        let trace = recognition_trace(12);
        let report = run(
            &trace,
            &SimConfig {
                mode: Mode::Origin,
                exec_tier: ExecTier::Edge,
                ..small_cfg()
            },
        );
        assert_eq!(report.completed, 12);
        assert_eq!(report.edge_hits, 0);
        assert_eq!(report.wan_bytes, 0);
    }

    #[test]
    fn client_shaper_throttles_uploads() {
        // Recognition misses upload ~300 kB frames; a 2 Mbit/s phone-side
        // shaper makes those uploads far slower than the unshaped run.
        let trace = recognition_trace(10);
        let free = run(&trace, &small_cfg());
        let shaped = run(
            &trace,
            &SimConfig {
                client_shaper: Some((2.0, 64 * 1024)),
                ..small_cfg()
            },
        );
        assert_eq!(shaped.completed, 10);
        assert!(
            shaped.mean_latency_ms() > 2.0 * free.mean_latency_ms(),
            "shaped {:.1} ms vs free {:.1} ms",
            shaped.mean_latency_ms(),
            free.mean_latency_ms()
        );
    }

    #[test]
    fn generous_shaper_changes_nothing() {
        let trace = recognition_trace(10);
        let free = run(&trace, &small_cfg());
        let shaped = run(
            &trace,
            &SimConfig {
                client_shaper: Some((1000.0, 8 << 20)),
                ..small_cfg()
            },
        );
        assert!((shaped.mean_latency_ms() - free.mean_latency_ms()).abs() < 1.0);
    }

    #[test]
    fn access_schedule_slows_transfers_after_the_step() {
        // Same trace; a mid-run bandwidth collapse must raise latencies.
        let trace = recognition_trace(20);
        let stable = run(&trace, &small_cfg());
        let fading = run(
            &trace,
            &SimConfig {
                access_schedule: vec![(200, 5.0)], // collapse to 5 Mbps at t=200ms
                ..small_cfg()
            },
        );
        assert_eq!(fading.completed, 20);
        assert!(
            fading.mean_latency_ms() > stable.mean_latency_ms(),
            "fading {:.1} ms should exceed stable {:.1} ms",
            fading.mean_latency_ms(),
            stable.mean_latency_ms()
        );
    }

    #[test]
    fn prefetch_turns_sequential_misses_into_hits() {
        // One viewer streams 12 sequential frames, spaced far enough apart
        // for prefetches to land between requests.
        let reqs: Vec<Request> = (0..12u64)
            .map(|f| Request {
                user: UserId(0),
                zone: ZoneId(0),
                at_ns: f * 500_000_000,
                kind: RequestKind::Panorama { frame_id: f },
            })
            .collect();
        let cold = run(&reqs, &SimConfig::default());
        let warm = run(
            &reqs,
            &SimConfig {
                prefetch_depth: 2,
                ..SimConfig::default()
            },
        );
        // Without prefetch every distinct frame misses; with it, only the
        // first does.
        assert_eq!(cold.edge_hits, 0);
        assert!(warm.edge_hits >= 10, "only {} hits", warm.edge_hits);
        assert!(warm.mean_latency_ms() < cold.mean_latency_ms() / 2.0);
    }

    #[test]
    fn prefetch_does_not_duplicate_wan_fetches() {
        let reqs: Vec<Request> = (0..10u64)
            .map(|f| Request {
                user: UserId(0),
                zone: ZoneId(0),
                at_ns: f * 500_000_000,
                kind: RequestKind::Panorama { frame_id: f },
            })
            .collect();
        let warm = run(
            &reqs,
            &SimConfig {
                prefetch_depth: 3,
                ..SimConfig::default()
            },
        );
        let cold = run(&reqs, &SimConfig::default());
        // Prefetching fetches each of the 10 frames (plus up to depth
        // overshoot beyond the stream end); it must not refetch frames.
        let per_frame = cold.wan_bytes / 10;
        assert!(
            warm.wan_bytes <= cold.wan_bytes + 4 * per_frame,
            "prefetch duplicated fetches: warm {} vs cold {}",
            warm.wan_bytes,
            cold.wan_bytes
        );
    }

    #[test]
    fn lossy_access_link_recovered_by_retries() {
        let trace = recognition_trace(20);
        let cfg = SimConfig {
            access_loss: 0.08,
            request_timeout_ms: 3_000,
            max_retries: 5,
            ..small_cfg()
        };
        let report = run(&trace, &cfg);
        // With 8% loss and 5 retries, effectively everything completes.
        assert_eq!(report.completed + report.failed as usize, 20);
        assert_eq!(report.failed, 0, "retries should mask 8% loss");
        // The retry counters must actually see the retransmissions.
        assert!(report.retries > 0, "8% loss must force some retransmission");
        assert!(report.retried_requests > 0);
        assert!(report.retried_requests as usize <= report.completed);
    }

    #[test]
    fn lossless_run_records_zero_retries() {
        let trace = recognition_trace(10);
        let report = run(&trace, &small_cfg());
        assert_eq!(report.retries, 0);
        assert_eq!(report.retried_requests, 0);
    }

    #[test]
    fn total_loss_fails_requests_without_hanging() {
        let trace = recognition_trace(6);
        let cfg = SimConfig {
            access_loss: 1.0, // nothing ever gets through
            request_timeout_ms: 1_000,
            max_retries: 2,
            ..small_cfg()
        };
        let report = run(&trace, &cfg);
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 6);
    }

    #[test]
    fn duplicate_replies_do_not_double_count() {
        // Moderate WAN loss causes retransmissions whose original replies
        // may still arrive; completions must equal the trace length exactly.
        let trace = recognition_trace(25);
        let cfg = SimConfig {
            wan_loss: 0.15,
            request_timeout_ms: 2_000,
            max_retries: 6,
            ..small_cfg()
        };
        let report = run(&trace, &cfg);
        assert_eq!(report.completed + report.failed as usize, 25);
    }

    #[test]
    fn wan_traffic_drops_under_coic() {
        let trace = recognition_trace(40);
        let (origin, coic, _) = compare(&trace, &small_cfg());
        assert!(
            coic.wan_bytes < origin.wan_bytes,
            "coic wan {} vs origin wan {}",
            coic.wan_bytes,
            origin.wan_bytes
        );
    }
}

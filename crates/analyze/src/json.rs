//! A dependency-free JSON parser for the trace verifier. The trace
//! exporter (`crates/obs`) writes one flat object per line; this parser
//! nevertheless handles full JSON (nesting, arrays, escapes) so a future
//! field shape never silently misparses. Numbers keep their raw text —
//! the verifier compares counts exactly and must not round-trip through
//! floats.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Raw number text as written (`"42"`, `"-1.5e3"`).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// A scalar rendered as a plain string (used for grouping keys).
    pub fn scalar_text(&self) -> Option<String> {
        match self {
            Json::Null => Some("null".into()),
            Json::Bool(b) => Some(b.to_string()),
            Json::Num(raw) => Some(raw.clone()),
            Json::Str(s) => Some(s.clone()),
            Json::Arr(_) | Json::Obj(_) => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected `{want}`, got `{got}` at offset {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            'n' => self.literal("null", Json::Null),
            't' => self.literal("true", Json::Bool(true)),
            'f' => self.literal("false", Json::Bool(false)),
            '"' => self.string().map(Json::Str),
            '[' => self.array(),
            '{' => self.object(),
            c if c == '-' || c.is_ascii_digit() => self.number(),
            c => Err(format!("unexpected `{c}` at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let raw: String = self.chars[start..self.pos].iter().collect();
        if raw.is_empty() || raw == "-" {
            return Err(format!("bad number at offset {start}"));
        }
        Ok(Json::Num(raw))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u escape digit `{d}`"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    e => return Err(format!("unknown escape `\\{e}`")),
                },
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Json::Arr(items)),
                c => return Err(format!("expected `,` or `]`, got `{c}`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Json::Obj(fields)),
                c => return Err(format!("expected `,` or `}}`, got `{c}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_trace_line() {
        let v = parse(r#"{"t":125000,"k":"event","n":"decision.peer_probe","f":{"edge":3,"req":17,"peer":5}}"#)
            .unwrap();
        assert_eq!(v.get("t").unwrap().as_u64(), Some(125000));
        assert_eq!(v.get("k").unwrap().as_str(), Some("event"));
        let f = v.get("f").unwrap();
        assert_eq!(f.get("edge").unwrap().scalar_text().as_deref(), Some("3"));
    }

    #[test]
    fn handles_escapes_nesting_and_scalars() {
        let v = parse(r#"{"a":"x\"y\n","b":[1,-2.5e3,true,null],"c":{"d":{}}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(
            v.get("b").unwrap(),
            &Json::Arr(vec![
                Json::Num("1".into()),
                Json::Num("-2.5e3".into()),
                Json::Bool(true),
                Json::Null,
            ])
        );
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("[1,]").is_err());
    }
}

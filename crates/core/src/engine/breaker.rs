//! Circuit breaker for the edge's upstream (cloud) leg.
//!
//! Clock-agnostic: callers pass the current time in nanoseconds (from a
//! [`super::clock::Clock`]) instead of the breaker reading `Instant::now`,
//! so the same transition logic runs under virtual and wall-clock time.

use super::sync::{AtomicU64, Mutex, Ordering};
use std::time::Duration;

/// Breaker state, exposed for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected without attempting the protected call.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Snake-case name used in trace events (`cluster.peer_state`) and
    /// checked by the trace verifier's `legal-transitions` invariant.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ns: Option<u64>,
    probe_in_flight: bool,
}

/// A circuit breaker protecting a downstream dependency (the edge's
/// forwarding leg to the cloud). After `failure_threshold` consecutive
/// failures the breaker opens for `cooldown`; it then half-opens, letting
/// a single probe through — success closes it, failure re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub cooldown: Duration,
    trips: AtomicU64,
    closes: AtomicU64,
}

impl CircuitBreaker {
    /// Breaker with the given trip threshold and open-state cooldown.
    pub fn new(failure_threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ns: None,
                probe_in_flight: false,
            }),
            failure_threshold: failure_threshold.max(1),
            cooldown,
            trips: AtomicU64::new(0),
            closes: AtomicU64::new(0),
        }
    }

    /// May a call proceed at `now_ns`? `true` either means the breaker is
    /// closed or this caller has been granted the half-open probe slot.
    pub fn allow(&self, now_ns: u64) -> bool {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = g
                    .opened_at_ns
                    .map(|t| now_ns.saturating_sub(t) >= self.cooldown.as_nanos() as u64)
                    == Some(true);
                if cooled {
                    g.state = BreakerState::HalfOpen;
                    g.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight {
                    false
                } else {
                    g.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record at `now_ns` the outcome of a call that
    /// [`CircuitBreaker::allow`]ed.
    ///
    /// A success recorded while the breaker is **open** is stale: the call
    /// was allowed before the breaker tripped (other callers' failures
    /// raced past it). Closing on it would skip the cooldown and the
    /// half-open probe entirely, so it is ignored — recovery is only ever
    /// concluded from a probe that was granted after the cooldown. The
    /// model checker in `tests/model.rs` pins this (it found the
    /// stale-close schedule in the previous version of this method).
    pub fn record(&self, success: bool, now_ns: u64) {
        let mut g = self.inner.lock();
        if g.state == BreakerState::Open && success {
            return;
        }
        g.probe_in_flight = false;
        if success {
            if g.state != BreakerState::Closed {
                self.closes.fetch_add(1, Ordering::Relaxed);
            }
            g.state = BreakerState::Closed;
            g.consecutive_failures = 0;
            g.opened_at_ns = None;
        } else {
            g.consecutive_failures += 1;
            let tripping = match g.state {
                BreakerState::Closed => g.consecutive_failures >= self.failure_threshold,
                BreakerState::HalfOpen => true,
                BreakerState::Open => false,
            };
            if tripping {
                g.state = BreakerState::Open;
                g.opened_at_ns = Some(now_ns);
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Return an unused probe grant. A caller that was
    /// [`CircuitBreaker::allow`]ed but never issued the protected call
    /// (its batch resolved early, for example) must hand the half-open
    /// slot back — otherwise the breaker waits forever for a
    /// [`CircuitBreaker::record`] that is never coming and the dependency
    /// can never rejoin. A no-op for grants issued while Closed (those
    /// reserve nothing).
    pub fn cancel_probe(&self) {
        let mut g = self.inner.lock();
        if g.state == BreakerState::HalfOpen {
            g.probe_in_flight = false;
        }
    }

    /// Current state (coarse; may change immediately after).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Times the breaker closed after recovery.
    pub fn closes(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn breaker_trips_and_recovers() {
        // Virtual time: no sleeps needed, transitions are pure in now_ns.
        let b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::Closed);
        for t in 0..3u64 {
            assert!(b.allow(t * MS));
            b.record(false, t * MS);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(10 * MS), "open breaker must reject");
        assert_eq!(b.trips(), 1);

        assert!(
            b.allow(40 * MS),
            "cooldown elapsed: probe should be granted"
        );
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(40 * MS), "only one probe at a time");
        b.record(true, 41 * MS);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        assert!(b.allow(0));
        b.record(false, 0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(15 * MS));
        b.record(false, 15 * MS);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn stale_success_cannot_close_an_open_breaker() {
        // A call is allowed while the breaker is closed; before its result
        // comes back, other callers' failures trip the breaker. The stale
        // success must not short-circuit the cooldown + probe sequence.
        let b = CircuitBreaker::new(3, Duration::from_millis(30));
        assert!(b.allow(0), "closed breaker admits the slow call");
        for t in 0..3u64 {
            assert!(b.allow(t));
            b.record(false, t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        b.record(true, 5); // the slow call's result arrives late
        assert_eq!(b.state(), BreakerState::Open, "stale success ignored");
        assert_eq!(b.closes(), 0);
        assert!(!b.allow(10 * MS), "cooldown still applies");
        assert!(b.allow(40 * MS), "probe granted only after cooldown");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true, 40 * MS);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
    }

    #[test]
    fn cancelled_probe_grant_is_reissued() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        assert!(b.allow(0));
        b.record(false, 0);
        // Cooldown lapses; the half-open slot is granted but the caller
        // bails out before probing. Cancelling must free the slot.
        assert!(b.allow(15 * MS));
        assert!(!b.allow(15 * MS), "slot is taken");
        b.cancel_probe();
        assert!(b.allow(16 * MS), "cancelled grant is available again");
        b.record(true, 17 * MS);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cancel_while_closed_is_a_noop() {
        let b = CircuitBreaker::new(2, Duration::from_millis(10));
        assert!(b.allow(0));
        b.cancel_probe();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(1), "closed breaker still admits");
    }

    #[test]
    fn cooldown_measured_from_latest_trip() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        assert!(b.allow(0));
        b.record(false, 0);
        assert!(b.allow(12 * MS)); // half-open probe
        b.record(false, 12 * MS); // re-opens at t=12ms
        assert!(!b.allow(20 * MS), "cooldown restarts at the re-trip");
        assert!(b.allow(23 * MS));
    }
}

//! Shared content universe: models and panoramas, with their digests.
//!
//! All nodes derive content deterministically from ids (the substitution
//! for the paper's real model files and video frames), so a client can
//! know the hash of "the avatar model for player 7" without downloading
//! it, exactly as a real app knows asset hashes from its manifest.

use bytes::Bytes;
use coic_cache::Digest;
use coic_render::{encode, procgen, Mat4, Panorama, Scene, Vec3};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Lazily generated, process-wide library of CMF model bytes.
///
/// Generation is deterministic in `(model_id, size_bytes)`, so every node
/// sharing a library (or even two distinct libraries) agrees on content
/// and digest.
pub struct ModelLibrary {
    entries: Mutex<HashMap<(u64, u64), (Bytes, Digest)>>,
}

impl Default for ModelLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelLibrary {
    /// Create an empty library.
    pub fn new() -> Self {
        ModelLibrary {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// CMF bytes and digest for a model, generating on first use.
    pub fn get(&self, model_id: u64, size_bytes: u64) -> (Bytes, Digest) {
        let mut entries = self.entries.lock();
        entries
            .entry((model_id, size_bytes))
            .or_insert_with(|| {
                let mesh = procgen::model_of_size(size_bytes, model_id);
                let bytes = encode(&mesh);
                let digest = Digest::of(&bytes);
                (bytes, digest)
            })
            .clone()
    }

    /// Just the digest (what the client's manifest would hold).
    pub fn digest(&self, model_id: u64, size_bytes: u64) -> Digest {
        self.get(model_id, size_bytes).1
    }

    /// Number of generated models.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing was generated yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// How panorama frames are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanoSource {
    /// Fast procedural synthesis (spherical wave bands).
    Procedural,
    /// Rasterize a deterministic 3D scene into a cubemap and project it —
    /// the real cloud-VR rendering path. `face_size` is the per-face
    /// resolution.
    Scene {
        /// Cubemap face resolution in pixels.
        face_size: u32,
    },
}

/// Build the deterministic VR world for one frame: a terrain floor and a
/// ring of avatars orbiting the viewer, advanced a step per frame (so
/// consecutive frames are distinct but related, like video).
fn frame_scene(frame_id: u64) -> Scene {
    let mut scene = Scene::new();
    let terrain = scene.add_model(procgen::terrain(24, 7, 0.6));
    scene.add_instance(
        terrain,
        Mat4::translate(Vec3::new(0.0, -1.2, 0.0)).mul(&Mat4::scale(Vec3::new(8.0, 1.0, 8.0))),
    );
    let avatar = scene.add_model(procgen::avatar(1));
    let orbit = frame_id as f32 * 0.15;
    for i in 0..3 {
        let a = orbit + i as f32 * std::f32::consts::TAU / 3.0;
        scene.add_instance(
            avatar,
            Mat4::translate(Vec3::new(3.0 * a.cos(), -0.4, 3.0 * a.sin())).mul(&Mat4::rotate_y(-a)),
        );
    }
    scene
}

/// Lazily generated library of panorama frames.
pub struct PanoLibrary {
    height: u32,
    source: PanoSource,
    entries: Mutex<HashMap<u64, (Bytes, Digest)>>,
}

impl PanoLibrary {
    /// Create a library synthesizing frames of the given equirect height
    /// (fast procedural source).
    pub fn new(height: u32) -> Self {
        Self::with_source(height, PanoSource::Procedural)
    }

    /// Create a library with an explicit frame source.
    pub fn with_source(height: u32, source: PanoSource) -> Self {
        PanoLibrary {
            height,
            source,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Panorama bytes and digest for a frame, generating on first use.
    pub fn get(&self, frame_id: u64) -> (Bytes, Digest) {
        let mut entries = self.entries.lock();
        entries
            .entry(frame_id)
            .or_insert_with(|| {
                let pano = match self.source {
                    PanoSource::Procedural => Panorama::synthesize(frame_id, self.height),
                    PanoSource::Scene { face_size } => coic_render::render_equirect(
                        &frame_scene(frame_id),
                        Vec3::new(0.0, 0.3, 0.0),
                        self.height,
                        face_size,
                    ),
                };
                let bytes = Bytes::copy_from_slice(pano.bytes());
                let digest = Digest::of(&bytes);
                (bytes, digest)
            })
            .clone()
    }

    /// Just the digest.
    pub fn digest(&self, frame_id: u64) -> Digest {
        self.get(frame_id).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_render::load_cmf;

    #[test]
    fn two_libraries_agree_on_content() {
        let a = ModelLibrary::new();
        let b = ModelLibrary::new();
        let (bytes_a, dig_a) = a.get(7, 100_000);
        let (bytes_b, dig_b) = b.get(7, 100_000);
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(dig_a, dig_b);
    }

    #[test]
    fn library_bytes_are_loadable_models() {
        let lib = ModelLibrary::new();
        let (bytes, _) = lib.get(3, 200_000);
        let loaded = load_cmf(&bytes).expect("library must produce valid CMF");
        loaded.mesh.validate().unwrap();
        // Size control within tolerance.
        let ratio = bytes.len() as f64 / 200_000.0;
        assert!((0.7..1.3).contains(&ratio), "size ratio {ratio}");
    }

    #[test]
    fn distinct_ids_distinct_digests() {
        let lib = ModelLibrary::new();
        assert_ne!(lib.digest(1, 100_000), lib.digest(2, 100_000));
        assert_ne!(lib.digest(1, 100_000), lib.digest(1, 200_000));
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn generation_is_cached() {
        let lib = ModelLibrary::new();
        let (a, _) = lib.get(5, 50_000);
        let (b, _) = lib.get(5, 50_000);
        assert_eq!(lib.len(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn scene_rendered_panoramas_are_deterministic_and_animated() {
        let lib = PanoLibrary::with_source(64, PanoSource::Scene { face_size: 48 });
        let (a, da) = lib.get(0);
        let (b, _) = lib.get(0);
        assert_eq!(a, b);
        // Consecutive frames differ (the avatars orbit).
        let (c, dc) = lib.get(1);
        assert_ne!(a, c);
        assert_ne!(da, dc);
        // The frame actually contains rendered content.
        assert!(a.iter().any(|&p| p > 0), "scene panorama is black");
        assert_eq!(a.len(), 128 * 64);
    }

    #[test]
    fn pano_library_roundtrip() {
        let lib = PanoLibrary::new(64);
        let (bytes, dig) = lib.get(9);
        assert_eq!(bytes.len(), 128 * 64);
        assert_eq!(lib.digest(9), dig);
        assert_ne!(lib.digest(9), lib.digest(10));
        // Content matches direct synthesis.
        let direct = Panorama::synthesize(9, 64);
        assert_eq!(&bytes[..], direct.bytes());
    }
}

//! The workspace itself must satisfy its own rules: `coic lint` over the
//! repository root with the checked-in `analyze/rules.toml` finds
//! nothing. Every deliberate exception in the tree carries a justified
//! `// lint: allow(rule, reason)` or a path-level exempt in the rules
//! file — this test is what keeps that closed.

use std::path::Path;

#[test]
fn the_workspace_lints_clean_under_its_own_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root");
    let rules = root.join("analyze").join("rules.toml");
    assert!(rules.is_file(), "missing {}", rules.display());
    let findings = coic_analyze::lint_root(root, &rules).expect("lint run");
    assert!(
        findings.is_empty(),
        "workspace lint violations:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_rules_cover_every_rule_kind() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let src = std::fs::read_to_string(root.join("analyze/rules.toml")).expect("read rules");
    let rules = coic_analyze::parse_rules(&src).expect("parse rules");
    let mut kinds: Vec<&str> = rules
        .iter()
        .map(|r| match r.kind {
            coic_analyze::RuleKind::ForbiddenPath { .. } => "forbidden-path",
            coic_analyze::RuleKind::NoUnwrap { .. } => "no-unwrap",
            coic_analyze::RuleKind::CrateAttr { .. } => "crate-attr",
            coic_analyze::RuleKind::NoIndexHotPath => "no-index-hot-path",
            coic_analyze::RuleKind::PairedCall { .. } => "paired-call",
            coic_analyze::RuleKind::ProtocolConformance { .. } => "protocol-conformance",
            coic_analyze::RuleKind::LockOrderGraph { .. } => "lock-order-graph",
            coic_analyze::RuleKind::TelemetryRegistry { .. } => "telemetry-registry",
        })
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(
        kinds,
        [
            "crate-attr",
            "forbidden-path",
            "lock-order-graph",
            "no-index-hot-path",
            "no-unwrap",
            "paired-call",
            "protocol-conformance",
            "telemetry-registry"
        ],
        "the checked-in rules should exercise every rule kind"
    );
}

//! The simulator's event queue.
//!
//! A thin wrapper over a binary heap that orders events by firing time and
//! breaks ties by insertion order, so that two events scheduled for the same
//! instant fire in the order they were scheduled (stable FIFO). Stability is
//! what makes simulation runs reproducible independent of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-scheduled) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event, if any, returning its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(9), ());
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}

//! VR panoramic streaming — the paper's third task family.
//!
//! "The server sends a panoramic frame to the client, and then the client
//! crops the panorama to generate the final frame for display. Multiple
//! users playing the same VR applications or watching the same VR video
//! might use the same panorama."
//!
//! Eight viewers co-watch a VR video through one edge. With CoIC the edge
//! caches each panoramic frame by content hash, so frames cross the WAN
//! once instead of eight times. Each client then crops its own viewport
//! (every viewer looks in a different direction) — personalization happens
//! after the shared, cacheable work.
//!
//! Run with: `cargo run --release --example vr_streaming`

use coic::core::{compare, Mode, SimConfig};
use coic::render::Panorama;
use coic::workload::{Population, VrVideo, ZoneId};

fn main() {
    let viewers = 8;
    let trace = VrVideo {
        population: Population::colocated(viewers, ZoneId(0)),
        frame_interval_ns: 100_000_000, // 10 fps key-panorama cadence
        max_start_skew_frames: 0,       // synchronized co-watching
        user_stagger_ns: 25_000_000,    // devices are ~25 ms apart in practice
        frames_per_user: 20,
    }
    .generate(5);

    let cfg = SimConfig {
        num_clients: viewers,
        pano_height: 256, // 512×256 equirect, 128 kB per frame
        ..SimConfig::default()
    };

    println!("VR streaming — {viewers} synchronized viewers, 20 frames each\n");
    let (origin, coic, reduction) = compare(&trace, &cfg);
    println!(
        "origin:   mean frame latency {:7.1} ms, WAN traffic {:6.1} MB",
        origin.mean_latency_ms(),
        origin.wan_bytes as f64 / 1e6
    );
    println!(
        "CoIC:     mean frame latency {:7.1} ms, WAN traffic {:6.1} MB",
        coic.mean_latency_ms(),
        coic.wan_bytes as f64 / 1e6
    );
    println!(
        "          hit ratio {:.0}%  →  latency reduction {:.1}%\n",
        coic.hit_ratio() * 100.0,
        reduction
    );

    // Desynchronized viewers share less — the redundancy is temporal.
    let skewed_trace = VrVideo {
        population: Population::colocated(viewers, ZoneId(0)),
        frame_interval_ns: 100_000_000,
        max_start_skew_frames: 200,
        user_stagger_ns: 25_000_000,
        frames_per_user: 20,
    }
    .generate(5);
    let skewed = coic::core::run(
        &skewed_trace,
        &SimConfig {
            mode: Mode::CoIc,
            ..cfg.clone()
        },
    );
    println!(
        "desynchronized viewers: hit ratio drops to {:.0}% (shared frames are the win)",
        skewed.hit_ratio() * 100.0
    );

    // Client-side personalization: each viewer crops their own viewport
    // from the same cached panorama.
    let pano = Panorama::synthesize(7, 256);
    println!("\nper-viewer viewport crops from one cached panorama:");
    for (name, yaw) in [
        ("north", 0.0f64),
        ("east", std::f64::consts::FRAC_PI_2),
        ("south", std::f64::consts::PI),
    ] {
        let vp = pano.crop_viewport(yaw, 0.0, 1.4, 32, 18);
        let mean = vp.iter().map(|&p| p as f64).sum::<f64>() / vp.len() as f64;
        println!("  viewer looking {name:<5} → 32×18 crop, mean luminance {mean:5.1}");
    }

    // The cloud can also *render* panoramas from a live 3D scene (cubemap →
    // equirect) instead of synthesizing them — same cache, same hashes.
    use coic::core::{PanoLibrary, PanoSource};
    let scene_lib = PanoLibrary::with_source(128, PanoSource::Scene { face_size: 96 });
    let (frame_bytes, digest) = scene_lib.get(0);
    let out = std::env::temp_dir().join("coic_vr_frame.pgm");
    if coic::render::write_pgm(&out, 256, 128, &frame_bytes).is_ok() {
        println!(
            "\nscene-rendered panorama frame 0 ({digest}) written to {}",
            out.display()
        );
    }
}

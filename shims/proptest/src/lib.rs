//! Minimal in-tree replacement for the `proptest` crate (see
//! shims/README.md).
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, `any::<T>()`,
//! range and string-pattern strategies, `prop::collection::{vec,
//! btree_set}`, `prop::option::of`, `prop_oneof!`, and the `proptest!`
//! test macro with an optional `#![proptest_config(..)]` header.
//!
//! Unlike upstream there is **no shrinking** and no persisted failure
//! seeds: each test derives a deterministic RNG from its own name, so runs
//! are reproducible but minimal counterexamples are not computed.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt};

/// Strategy trait and combinators.
pub mod strategy {
    use super::*;
    use std::marker::PhantomData;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Values generatable by [`any`].
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_std {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_std!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            let mut a = [0u8; N];
            rng.fill_bytes(&mut a);
            a
        }
    }

    /// Strategy for the full domain of `A` (see [`any`]).
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Strategy over the full domain of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!(
        (A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F)(A, B, C, D, E, F, G)(
            A, B, C, D, E, F, G, H
        )
    );

    // --- string pattern strategy -------------------------------------
    //
    // `&'static str` acts as a tiny regex-like generator supporting the
    // patterns the tests use: `.` (any printable ASCII), `[a-z]`-style
    // character classes, literal characters, and `{n}` / `{lo,hi}`
    // repetition suffixes.

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (0x20u8..=0x7E).map(|b| b as char).collect()
                }
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            for c in lo..=hi {
                                if let Some(c) = char::from_u32(c) {
                                    set.push(c);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // skip ']'
                    set
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {n} or {lo,hi} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                    None => {
                        let n: usize = spec.trim().parse().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let reps = rng.random_range(lo..=hi);
            for _ in 0..reps {
                if !class.is_empty() {
                    out.push(class[rng.random_range(0..class.len())]);
                }
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::collections::BTreeSet;

    /// Number-of-elements bound, convertible from `usize`, `Range`, and
    /// `RangeInclusive`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size bound.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s of `element` values.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates may make the exact target unreachable for narrow
            // element domains; bound the attempts.
            let mut budget = n * 10 + 20;
            while set.len() < n && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }

    /// `BTreeSet` strategy with the given element strategy and size bound.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy yielding `Some` roughly 4 times out of 5.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.8) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    use super::*;

    /// Subset of upstream's config: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Default config with the given case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG derived from the test's name (FNV-1a).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        rand::SeedableRng::seed_from_u64(h)
    }
}

/// Choose uniformly between strategies (possibly of different concrete
/// types) producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test assertion (here: a plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion (here: a plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion (here: a plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Everything the tests import via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace (`prop::collection`, `prop::option`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_maps(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 1..10)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 10);
        }

        #[test]
        fn oneof_and_option(
            e in prop_oneof![ (0u32..10).prop_map(|v| v as u64), any::<u64>() ],
            o in prop::option::of(1u8..5),
        ) {
            let _ = e;
            if let Some(n) = o {
                prop_assert!((1..5).contains(&n));
            }
        }

        #[test]
        fn string_patterns(s in "[a-z]{0,12}", junk in ".{0,30}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(junk.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::rng_for("t1");
        let mut b = crate::test_runner::rng_for("t1");
        use rand::RngExt;
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}

//! Feature descriptors — the cache keys of CoIC.
//!
//! "CoIC extracts dedicated property from each representative IC task as
//! the feature descriptor": a DNN feature vector for object recognition
//! (matched approximately under a distance threshold), and a content hash
//! for 3D models and panoramic frames (matched exactly).

use coic_cache::Digest;
use coic_vision::FeatureVec;
use serde::{Deserialize, Serialize};

/// The descriptor a client sends to the edge in place of its full input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureDescriptor {
    /// Recognition: the embedding SimNet produced from the camera frame.
    Dnn(FeatureVec),
    /// Rendering: hash of the required 3D model.
    ModelHash(Digest),
    /// VR streaming: hash of the required panoramic frame.
    PanoramaHash(Digest),
}

impl FeatureDescriptor {
    /// Bytes this descriptor occupies on the wire (payload only; framing
    /// is charged separately).
    pub fn byte_size(&self) -> u64 {
        match self {
            FeatureDescriptor::Dnn(v) => v.byte_size(),
            FeatureDescriptor::ModelHash(_) | FeatureDescriptor::PanoramaHash(_) => 32,
        }
    }

    /// Short label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            FeatureDescriptor::Dnn(_) => "dnn",
            FeatureDescriptor::ModelHash(_) => "model",
            FeatureDescriptor::PanoramaHash(_) => "panorama",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_kinds() {
        let dnn = FeatureDescriptor::Dnn(FeatureVec::new(vec![0.0; 32]));
        assert_eq!(dnn.byte_size(), 32 * 4 + 16);
        assert_eq!(dnn.kind(), "dnn");
        let mh = FeatureDescriptor::ModelHash(Digest::of(b"m"));
        assert_eq!(mh.byte_size(), 32);
        assert_eq!(mh.kind(), "model");
        let ph = FeatureDescriptor::PanoramaHash(Digest::of(b"p"));
        assert_eq!(ph.kind(), "panorama");
    }

    #[test]
    fn descriptor_is_much_smaller_than_typical_inputs() {
        // The protocol's whole premise: descriptors are tiny.
        let dnn = FeatureDescriptor::Dnn(FeatureVec::new(vec![0.0; 32]));
        let typical_camera_frame: u64 = 300_000;
        assert!(dnn.byte_size() * 100 < typical_camera_frame);
    }
}

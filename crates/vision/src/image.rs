//! Grayscale raster images.
//!
//! Camera frames in the CoIC pipeline are synthetic: the scene generator
//! draws them, the feature extractor consumes them, and their byte size is
//! what the network simulation charges for uploads. Grayscale is sufficient
//! because the recognition substrate only needs controllable *similarity
//! structure*, not photorealism.

use serde::{Deserialize, Serialize};

/// An owned 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl Image {
    /// Create an image filled with `fill`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32, fill: u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![fill; (width * height) as usize],
        }
    }

    /// Reassemble an image from raw row-major bytes (e.g. received over
    /// the wire).
    ///
    /// # Panics
    /// Panics if the buffer length does not match the dimensions.
    pub fn from_raw(width: u32, height: u32, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(
            pixels.len(),
            (width * height) as usize,
            "pixel buffer length mismatch"
        );
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Create an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u8) -> Self {
        let mut img = Image::new(width, height, 0);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw pixel bytes, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Size in bytes when shipped over the network (raw, uncompressed —
    /// a conservative stand-in for a camera JPEG of similar magnitude).
    pub fn byte_size(&self) -> u64 {
        self.pixels.len() as u64
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y * self.width + x) as usize]
    }

    /// Set pixel value at `(x, y)`.
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y * self.width + x) as usize] = v;
    }

    /// Pixel value with clamped coordinates (edge extension), usable with
    /// signed sample positions from geometric transforms.
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Bilinear sample at fractional coordinates, clamped at edges.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let x0 = x0 as i64;
        let y0 = y0 as i64;
        let p00 = self.get_clamped(x0, y0) as f64;
        let p10 = self.get_clamped(x0 + 1, y0) as f64;
        let p01 = self.get_clamped(x0, y0 + 1) as f64;
        let p11 = self.get_clamped(x0 + 1, y0 + 1) as f64;
        p00 * (1.0 - fx) * (1.0 - fy)
            + p10 * fx * (1.0 - fy)
            + p01 * (1.0 - fx) * fy
            + p11 * fx * fy
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Box-filtered downsample by integer factor `k` (each output pixel is
    /// the mean of a k×k block).
    ///
    /// # Panics
    /// Panics if `k` is zero or does not divide both dimensions.
    pub fn downsample(&self, k: u32) -> Image {
        assert!(k > 0, "downsample factor must be positive");
        assert!(
            self.width.is_multiple_of(k) && self.height.is_multiple_of(k),
            "downsample factor must divide image dimensions"
        );
        let w = self.width / k;
        let h = self.height / k;
        Image::from_fn(w, h, |ox, oy| {
            let mut acc = 0u32;
            for dy in 0..k {
                for dx in 0..k {
                    acc += self.get(ox * k + dx, oy * k + dy) as u32;
                }
            }
            (acc / (k * k)) as u8
        })
    }

    /// Crop the rectangle at `(x, y)` of size `w × h`.
    ///
    /// # Panics
    /// Panics if the rectangle exceeds the image bounds.
    pub fn crop(&self, x: u32, y: u32, w: u32, h: u32) -> Image {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "crop exceeds image bounds"
        );
        Image::from_fn(w, h, |ox, oy| self.get(x + ox, y + oy))
    }

    /// Scale all intensities by `gain`, saturating to `[0, 255]`.
    pub fn scaled(&self, gain: f64) -> Image {
        Image::from_fn(self.width, self.height, |x, y| {
            (self.get(x, y) as f64 * gain).round().clamp(0.0, 255.0) as u8
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let img = Image::from_fn(4, 3, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(3, 2), 23);
        assert_eq!(img.byte_size(), 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::new(2, 2, 0);
        let _ = img.get(2, 0);
    }

    #[test]
    fn clamped_access_extends_edges() {
        let img = Image::from_fn(2, 2, |x, y| (x + 2 * y) as u8 * 10);
        assert_eq!(img.get_clamped(-5, -5), img.get(0, 0));
        assert_eq!(img.get_clamped(99, 99), img.get(1, 1));
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let img = Image::from_fn(2, 1, |x, _| if x == 0 { 0 } else { 100 });
        assert!((img.sample_bilinear(0.5, 0.0) - 50.0).abs() < 1e-9);
        assert!((img.sample_bilinear(0.0, 0.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mean_intensity() {
        let img = Image::from_fn(2, 2, |x, y| ((x + y) * 100) as u8);
        // pixels: 0, 100, 100, 200
        assert!((img.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_averages_blocks() {
        let img = Image::from_fn(4, 4, |x, _| if x < 2 { 0 } else { 200 });
        let d = img.downsample(2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.get(0, 0), 0);
        assert_eq!(d.get(1, 1), 200);
    }

    #[test]
    #[should_panic(expected = "divide image dimensions")]
    fn downsample_requires_divisibility() {
        let _ = Image::new(5, 4, 0).downsample(2);
    }

    #[test]
    fn crop_extracts_rect() {
        let img = Image::from_fn(4, 4, |x, y| (y * 4 + x) as u8);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.get(0, 0), 9);
        assert_eq!(c.get(1, 1), 14);
    }

    #[test]
    fn scaled_saturates() {
        let img = Image::new(1, 1, 200);
        assert_eq!(img.scaled(2.0).get(0, 0), 255);
        assert_eq!(img.scaled(0.5).get(0, 0), 100);
    }
}

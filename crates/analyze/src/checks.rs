//! The rule implementations, operating on lexed token streams.

use crate::lexer::{Lexed, Token};
use crate::rules::{Rule, RuleKind};
use crate::Finding;

/// Run `rule` over one lexed file, appending findings.
pub fn run_rule(rule: &Rule, rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    match &rule.kind {
        RuleKind::ForbiddenPath {
            patterns,
            include_tests,
        } => forbidden_path(rule, rel_path, tokens, patterns, *include_tests, out),
        RuleKind::NoUnwrap { methods } => no_unwrap(rule, rel_path, tokens, methods, out),
        RuleKind::CrateAttr {
            attr_tokens,
            attr_text,
        } => crate_attr(rule, rel_path, tokens, attr_tokens, attr_text, out),
        RuleKind::LockOrder { first, then } => lock_order(rule, rel_path, tokens, first, then, out),
    }
}

fn texts_match(tokens: &[Token], at: usize, pattern: &[String]) -> bool {
    tokens.len() >= at + pattern.len()
        && pattern
            .iter()
            .zip(&tokens[at..])
            .all(|(want, tok)| *want == tok.text)
}

// ----------------------------------------------------------- forbidden-path

fn forbidden_path(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    patterns: &[Vec<String>],
    include_tests: bool,
    out: &mut Vec<Finding>,
) {
    let spans = if include_tests {
        Vec::new()
    } else {
        test_spans(tokens)
    };
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx < e);
    for pattern in patterns {
        for at in 0..tokens.len() {
            if !texts_match(tokens, at, pattern) {
                continue;
            }
            // Boundary: `my::std::net` is not `std::net`. Patterns that
            // deliberately start mid-path (e.g. `Instant::now`) still
            // match fully qualified uses via a companion absolute
            // pattern in the same rule.
            if at > 0 && tokens[at - 1].text == "::" {
                continue;
            }
            if in_test(at) {
                continue;
            }
            out.push(Finding {
                file: rel_path.to_string(),
                line: tokens[at].line,
                rule: rule.id.clone(),
                message: format!("forbidden path `{}`: {}", pattern.concat(), rule.reason),
            });
        }
    }
}

// ---------------------------------------------------------------- no-unwrap

/// Token index ranges covered by `#[cfg(test)]` / `#[test]` items
/// (attribute through the end of the following brace block or statement).
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr = Vec::new();
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                attr.push(tokens[j].text.as_str());
            }
            j += 1;
        }
        let is_test_attr = matches!(attr.first().copied(), Some("test"))
            || (matches!(attr.first().copied(), Some("cfg")) && attr.contains(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then cover the item: through the
        // matching `}` of its first brace block, or to a `;` for
        // brace-less items.
        let mut k = j;
        loop {
            match tokens.get(k).map(|t| t.text.as_str()) {
                Some("#") if tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[") => {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Some(";") => {
                    spans.push((i, k));
                    break;
                }
                Some("{") => {
                    let mut d = 1usize;
                    k += 1;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    spans.push((i, k));
                    break;
                }
                Some(_) => k += 1,
                None => {
                    spans.push((i, tokens.len()));
                    break;
                }
            }
        }
        i = j;
    }
    spans
}

fn no_unwrap(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    methods: &[String],
    out: &mut Vec<Finding>,
) {
    let spans = test_spans(tokens);
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx < e);
    for at in 0..tokens.len() {
        if tokens[at].text != "." {
            continue;
        }
        let Some(method) = tokens.get(at + 1) else {
            continue;
        };
        if !methods.contains(&method.text) {
            continue;
        }
        if tokens.get(at + 2).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        if in_test(at) {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: method.line,
            rule: rule.id.clone(),
            message: format!(".{}() outside test code: {}", method.text, rule.reason),
        });
    }
}

// --------------------------------------------------------------- crate-attr

fn crate_attr(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    attr_tokens: &[String],
    attr_text: &str,
    out: &mut Vec<Finding>,
) {
    // Expected shape: `#` `!` `[` <attr tokens> `]`.
    let mut expected: Vec<String> = vec!["#".into(), "!".into(), "[".into()];
    expected.extend(attr_tokens.iter().cloned());
    expected.push("]".into());
    let found = (0..tokens.len()).any(|at| texts_match(tokens, at, &expected));
    if !found {
        out.push(Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: rule.id.clone(),
            message: format!("missing `#![{attr_text}]`: {}", rule.reason),
        });
    }
}

// --------------------------------------------------------------- lock-order

const LOCK_OPS: [&str; 4] = ["lock", "read", "write", "try_lock"];

#[derive(Debug)]
struct LiveGuard {
    receiver: String,
    var: Option<String>,
    depth: i32,
}

/// Heuristic lock-order tracking: a guard is born at
/// `<recv> . <lock-op> (`, named by the `let` binding that starts the
/// statement (if any), and dies when its block closes, its variable is
/// `drop`ped, or — for unbound temporaries — at the end of the statement.
/// A violation is acquiring `first` while a guard on `then` is live:
/// declared order is `first` before `then`, so the reverse nesting is the
/// one that can deadlock against a path running in the declared order.
fn lock_order(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    first: &str,
    then: &str,
    out: &mut Vec<Finding>,
) {
    let mut depth: i32 = 0;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut stmt_start = 0usize;
    for at in 0..tokens.len() {
        match tokens[at].text.as_str() {
            "{" => {
                depth += 1;
                stmt_start = at + 1;
            }
            "}" => {
                depth -= 1;
                live.retain(|g| g.depth <= depth);
                stmt_start = at + 1;
            }
            ";" => {
                // Unbound temporaries die with their statement.
                live.retain(|g| g.var.is_some() || g.depth < depth);
                stmt_start = at + 1;
            }
            "drop"
                if tokens.get(at + 1).map(|t| t.text.as_str()) == Some("(")
                    && tokens.get(at + 3).map(|t| t.text.as_str()) == Some(")") =>
            {
                if let Some(var) = tokens.get(at + 2) {
                    live.retain(|g| g.var.as_deref() != Some(var.text.as_str()));
                }
            }
            op if LOCK_OPS.contains(&op)
                && at >= 2
                && tokens[at - 1].text == "."
                && tokens.get(at + 1).map(|t| t.text.as_str()) == Some("(") =>
            {
                let receiver = tokens[at - 2].text.clone();
                if receiver == first && live.iter().any(|g| g.receiver == then) {
                    out.push(Finding {
                        file: rel_path.to_string(),
                        line: tokens[at].line,
                        rule: rule.id.clone(),
                        message: format!(
                            "`{first}` acquired while holding `{then}` \
                             (declared order: {first} before {then}): {}",
                            rule.reason
                        ),
                    });
                }
                if receiver == first || receiver == then {
                    live.push(LiveGuard {
                        receiver,
                        var: binding_name(&tokens[stmt_start..at]),
                        depth,
                    });
                }
            }
            _ => {}
        }
    }
}

/// The variable a statement binds to the lock guard: last plain
/// identifier between `let` and `=` (handles `let mut x`). `None` for
/// statements that don't bind, and for lock calls nested inside another
/// call (`let p = take(&mut *x.lock())` — any `(` between `=` and the
/// lock op means the guard is a temporary, not what `let` binds).
fn binding_name(stmt: &[Token]) -> Option<String> {
    let let_at = stmt.iter().position(|t| t.text == "let")?;
    let eq_at = stmt.iter().position(|t| t.text == "=")?;
    if eq_at <= let_at {
        return None;
    }
    if stmt[eq_at + 1..].iter().any(|t| t.text == "(") {
        return None;
    }
    stmt[let_at + 1..eq_at]
        .iter()
        .rev()
        .find(|t| {
            t.text != "mut"
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .map(|t| t.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::parse_rules;

    fn findings(rules_src: &str, code: &str) -> Vec<(u32, String)> {
        let rules = parse_rules(rules_src).unwrap();
        let lexed = lex(code);
        let mut out = Vec::new();
        for rule in &rules {
            run_rule(rule, "f.rs", &lexed, &mut out);
        }
        out.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    const NET: &str = r#"
[[rule]]
id = "no-std-net"
kind = "forbidden-path"
patterns = ["std::net"]
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn forbidden_path_matches_code_not_prose() {
        let got = findings(
            NET,
            "use std::net::TcpStream;\n// std::net in a comment\nlet s = \"std::net\";\nmy::std::net::x();",
        );
        assert_eq!(got, [(1, "no-std-net".to_string())]);
    }

    #[test]
    fn forbidden_path_test_spans_depend_on_include_tests() {
        let code = "\
#[cfg(test)]
mod tests {
    fn t() { let s = std::net::TcpStream::connect(\"x\"); }
}
";
        // Default: test items are excluded (timing tests may read clocks).
        assert_eq!(findings(NET, code), []);
        // Opt in: the ban reaches into tests too.
        let strict = NET.replace("reason", "include-tests = true\nreason");
        assert_eq!(findings(&strict, code), [(3, "no-std-net".to_string())]);
    }

    const UNWRAP: &str = r#"
[[rule]]
id = "no-unwrap"
kind = "no-unwrap"
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let code = "\
fn live() { x.unwrap(); y.expect(\"m\"); }
#[cfg(test)]
mod tests {
    fn t() { z.unwrap(); }
}
#[test]
fn one() { q.unwrap(); }
fn live2() { r.unwrap(); }
";
        let got = findings(UNWRAP, code);
        assert_eq!(
            got,
            [
                (1, "no-unwrap".to_string()),
                (1, "no-unwrap".to_string()),
                (8, "no-unwrap".to_string()),
            ]
        );
    }

    const ATTR: &str = r#"
[[rule]]
id = "forbid-unsafe"
kind = "crate-attr"
attr = "forbid(unsafe_code)"
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn crate_attr_required() {
        assert_eq!(findings(ATTR, "#![forbid(unsafe_code)]\nfn x() {}"), []);
        assert_eq!(
            findings(ATTR, "//! docs only\nfn x() {}"),
            [(1, "forbid-unsafe".to_string())]
        );
    }

    const ORDER: &str = r#"
[[rule]]
id = "lock-order"
kind = "lock-order"
first = "cache"
then = "touches"
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn lock_order_violation_and_clean_patterns() {
        // Correct order: cache then touches.
        let ok = "\
fn insert(&self) {
    let mut guard = shard.cache.write();
    let pending = std::mem::take(&mut *shard.touches.lock());
    drop(guard);
}
fn lookup(&self) {
    let guard = shard.cache.read();
    if let Some(mut queue) = shard.touches.try_lock() {
        queue.push(1);
    }
}
";
        assert_eq!(findings(ORDER, ok), []);
        // Reversed: touches held while acquiring cache.
        let bad = "\
fn insert(&self) {
    let pending = shard.touches.lock();
    let mut guard = shard.cache.write();
}
";
        assert_eq!(findings(ORDER, bad), [(3, "lock-order".to_string())]);
        // Temporary touches guard dies at the semicolon: no violation.
        let temp = "\
fn insert(&self) {
    let pending = std::mem::take(&mut *shard.touches.lock());
    let mut guard = shard.cache.write();
}
";
        assert_eq!(findings(ORDER, temp), []);
        // drop() releases an explicit binding.
        let dropped = "\
fn insert(&self) {
    let pending = shard.touches.lock();
    drop(pending);
    let mut guard = shard.cache.write();
}
";
        assert_eq!(findings(ORDER, dropped), []);
    }
}

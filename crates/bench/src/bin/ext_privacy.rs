//! **Ext F** — descriptor privacy vs cache utility (paper §4 ongoing work).
//!
//! Sharing a cache leaks what users look at. The mitigations coarsen or
//! randomize descriptors — at some cost in hit ratio and accuracy. This
//! experiment quantifies the utility cost of quantization and noise on the
//! recognition cache, and of per-domain salting on the exact cache.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_privacy`

use coic_cache::{ApproxCache, ApproxLookup, Digest, IndexKind, PolicyKind};
use coic_core::privacy::{perturb, quantize, salted_digest};
use coic_core::RecognitionResult;
use coic_vision::{
    FeatureVec, ObjectClass, PrototypeClassifier, SceneGenerator, SimNet, ViewParams,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

enum Transform {
    None,
    Quantize(u32),
    Noise(f32),
}

impl Transform {
    fn apply(&self, v: &FeatureVec, rng: &mut StdRng) -> FeatureVec {
        match self {
            Transform::None => v.clone(),
            Transform::Quantize(bits) => quantize(v, *bits),
            Transform::Noise(sigma) => perturb(v, *sigma, rng),
        }
    }

    fn label(&self) -> String {
        match self {
            Transform::None => "none".into(),
            Transform::Quantize(bits) => format!("quantize {bits}b"),
            Transform::Noise(sigma) => format!("noise σ={sigma}"),
        }
    }
}

fn main() {
    let gen = SceneGenerator::new(64);
    let net = SimNet::default_net();
    let classes: Vec<_> = (0..10).map(ObjectClass).collect();
    let mut rng = StdRng::seed_from_u64(23);
    let clf = PrototypeClassifier::train(&net, &gen, &classes, 5, 0.08, 4.0, &mut rng);

    let observations: Vec<_> = (0..250)
        .map(|_| {
            let rank = (rng.random::<f64>().powi(2) * classes.len() as f64) as usize;
            let c = classes[rank.min(classes.len() - 1)];
            let v = ViewParams::jittered(&mut rng, 0.08, 4.0);
            (c, gen.observe(c, &v, &mut rng))
        })
        .collect();

    println!("Ext F — privacy transforms on recognition descriptors\n");
    println!("{:>14} | {:>6} {:>9}", "transform", "hit%", "accuracy");
    coic_bench::rule(34);
    let transforms = [
        Transform::None,
        Transform::Quantize(8),
        Transform::Quantize(4),
        Transform::Quantize(2),
        Transform::Noise(0.02),
        Transform::Noise(0.10),
        Transform::Noise(0.30),
    ];
    for t in &transforms {
        let mut cache: ApproxCache<RecognitionResult> =
            ApproxCache::new(64 << 20, PolicyKind::Lru, 0.45, IndexKind::Linear, 32);
        let mut trng = StdRng::seed_from_u64(101);
        let mut correct = 0u64;
        for (i, (truth, img)) in observations.iter().enumerate() {
            let descriptor = t.apply(&net.extract(img), &mut trng);
            let label = match cache.lookup(&descriptor, i as u64) {
                ApproxLookup::Hit { id, .. } => cache.value(id).unwrap().label,
                ApproxLookup::Miss { .. } => {
                    // Cloud recognizes on the *clean* embedding (the client
                    // uploads the frame on a miss), but the transformed
                    // descriptor keys the cache entry.
                    let (label, distance) = clf.predict(&net.extract(img));
                    cache.insert(
                        descriptor,
                        RecognitionResult {
                            label: label.0,
                            distance,
                        },
                        20_000,
                        i as u64,
                    );
                    label.0
                }
            };
            if label == truth.0 {
                correct += 1;
            }
        }
        let stats = cache.stats();
        println!(
            "{:>14} | {:>5.1}% {:>8.1}%",
            t.label(),
            stats.hit_ratio() * 100.0,
            correct as f64 / observations.len() as f64 * 100.0
        );
    }
    coic_bench::rule(34);

    println!("\nsalting exact descriptors (model/panorama hashes):");
    let content = Digest::of(b"shared avatar model");
    let same_a = salted_digest(&content, b"domain-A");
    let same_a2 = salted_digest(&content, b"domain-A");
    let other_b = salted_digest(&content, b"domain-B");
    println!("  same salt  → keys equal: {}", same_a == same_a2);
    println!(
        "  cross salt → keys equal: {}  (sharing blocked across domains)",
        same_a == other_b
    );
    println!("\nModerate quantization (8–4 bits) is nearly free; heavy noise");
    println!("destroys the neighbourhood structure the cache depends on.");
}

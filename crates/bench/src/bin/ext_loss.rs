//! **Ext H** — wireless loss resilience.
//!
//! The paper's client rides 802.11ac WiFi; real wireless links lose
//! frames. This experiment sweeps the access-link loss rate and shows how
//! timeout/retransmission keeps the request loop alive — and exposes a
//! protocol-design tradeoff: CoIC's descriptor-first flow exchanges more
//! messages per miss (query → need-payload → upload → result) than the
//! baseline's single offload round trip, so each miss is more exposed to
//! end-to-end loss. Above a few percent loss the extra round trips cost
//! more than the bandwidth savings — on real 802.11 the MAC layer retries
//! frames so end-to-end loss this high is rare, but the sensitivity is
//! inherent to chatty edge protocols.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_loss`

use coic_bench::{base_config, fig2a_trace};
use coic_core::simrun::{run, Mode, SimConfig};

fn main() {
    let trace = fig2a_trace(120, 42);
    println!("Ext H — access-link loss sweep (120 recognition requests,");
    println!("1 s timeout, up to 6 retries)\n");
    println!(
        "{:>6} | {:>11} {:>6} {:>8} | {:>11} {:>6} {:>8} | {:>10}",
        "loss", "origin-mean", "retx", "failed", "coic-mean", "retx", "failed", "reduction"
    );
    coic_bench::rule(80);
    for loss in [0.0f64, 0.01, 0.03, 0.05, 0.10, 0.20] {
        let mk = |mode| SimConfig {
            mode,
            access_loss: loss,
            request_timeout_ms: 1_000,
            max_retries: 6,
            ..base_config()
        };
        let origin = run(&trace, &mk(Mode::Origin));
        let coic = run(&trace, &mk(Mode::CoIc));
        let red = coic_core::reduction_percent(origin.mean_latency_ms(), coic.mean_latency_ms());
        println!(
            "{:>5.0}% | {:>8.1} ms {:>6} {:>8} | {:>8.1} ms {:>6} {:>8} | {:>9.2}%",
            loss * 100.0,
            origin.mean_latency_ms(),
            origin.retries,
            origin.failed,
            coic.mean_latency_ms(),
            coic.retries,
            coic.failed,
            red
        );
    }
    coic_bench::rule(80);
    println!("Retries mask loss at low rates, but CoIC's 4-message miss path is");
    println!("more loss-exposed than the baseline's 2-message offload: past a few");
    println!("percent end-to-end loss the extra round trips outweigh the bandwidth");
    println!("savings. (802.11 MAC retries keep real links below that regime.)");
}

//! Minimal in-tree replacement for the `bytes` crate (see shims/README.md).
//!
//! [`Bytes`] is a cheaply clonable immutable buffer (`Arc<[u8]>` plus a
//! view range), [`BytesMut`] a growable builder that freezes into one, and
//! [`Buf`]/[`BufMut`] the little-endian cursor traits the protocol codecs
//! use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Wrap a static slice (copies under the shim; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "…(+{}B)", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte builder; [`BytesMut::freeze`] converts it to [`Bytes`]
/// without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { v: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Is it empty?
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.v.extend_from_slice(s);
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.v.reserve(additional);
    }

    /// Remove all contents.
    pub fn clear(&mut self) {
        self.v.clear();
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.v
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.v
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.v
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.v.len())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { v }
    }
}

/// Read cursor over a byte source. All accessors panic when the source is
/// exhausted, matching the upstream crate; codecs bound-check first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copy exactly `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copy the next `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let b = Bytes::copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor for building buffers.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.v.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.slice(1..4), Bytes::from(vec![2, 3, 4]));
        assert_eq!(&a[..2], &[1, 2]);
    }

    #[test]
    fn buf_on_bytes() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.copy_to_bytes(2), Bytes::from(vec![8, 7]));
        assert!(b.is_empty());
    }
}

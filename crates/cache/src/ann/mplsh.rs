//! Multi-probe random-hyperplane LSH.
//!
//! Classic random-hyperplane LSH answers a query from the bucket its
//! signature selects in each table; a near-duplicate that flips one
//! low-margin bit lands one bucket over and is missed (or found only by
//! adding more tables). The descriptor-space-*sharded* cache this
//! replaces made that worse: it split every bucket's contents across
//! shards, so a hit had to probe up to N shard indexes and p95 latency
//! tripled (`bench/baseline.json` rev a68375a). Multi-probe keeps one
//! bucket array per table and instead *widens the probe set*: after the
//! base bucket, it probes the buckets reached by flipping the query's
//! lowest-|margin| signature bits — exactly the bits most likely to have
//! flipped for a true near neighbour.
//!
//! Determinism: hyperplanes derive from `splitmix64` of a fixed seed
//! (no RNG state), buckets are dense signature-indexed arrays filled in
//! ascending-slot order, candidates dedupe through a slot bitmask, and
//! ties break by id. If every probed bucket is empty
//! (or every candidate is filtered), lookup falls back to a full scan
//! rather than reporting a false miss — the same conservative contract
//! as the legacy `LshIndex`.

use super::{better, canonical_items, mix64, unit_f32, AnnIndex, ProbeStats};
use coic_vision::distance::l2;
use coic_vision::features::FeatureVec;

/// Fixed hyperplane seed: rebuilds of the same family over different
/// entry sets keep identical hash geometry, so probe behavior is stable
/// across snapshot generations.
const PLANE_SEED: u64 = 0xC01C_ABB1_5EED_0001;

/// Cap on how many low-margin bits the perturbation subsets draw from;
/// 2^cap candidate masks are scored per table, so this bounds per-lookup
/// probe-sequence work regardless of the `probes` setting. Four bits give
/// 16 candidate masks — double the default probe budget — while keeping
/// sequence generation a sub-microsecond affair; this matters because the
/// snapshot read path must beat an uncontended mutex on absolute cost,
/// not just on scalability.
const MAX_FLIP_BITS: usize = 4;

/// An immutable multi-probe LSH index (see the module docs).
pub struct MultiProbeLsh {
    dim: usize,
    bits: usize,
    probes: usize,
    /// `planes[t][b]` is the normal of table `t`'s bit-`b` hyperplane.
    planes: Vec<Vec<Vec<f32>>>,
    /// Per table: a dense `2^bits` array, signature → slots into `items`.
    /// Direct indexing keeps a probe at one pointer chase; the `bits`
    /// cap bounds the array to 64Ki buckets per table.
    buckets: Vec<Vec<Vec<u32>>>,
    /// Entries sorted by id; a "slot" is a position in this array.
    items: Vec<(u64, FeatureVec)>,
}

impl MultiProbeLsh {
    /// Build over `items` (sorted internally; ids unique).
    ///
    /// # Panics
    /// Panics if `dim`, `tables`, `bits` or `probes` is zero, `bits > 63`,
    /// or an item's dimensionality disagrees with `dim`.
    pub fn new(
        dim: usize,
        tables: usize,
        bits: usize,
        probes: usize,
        items: Vec<(u64, FeatureVec)>,
    ) -> MultiProbeLsh {
        assert!(
            tables > 0 && bits > 0 && probes > 0,
            "LSH parameters must be positive"
        );
        assert!(bits <= 16, "at most 16 bits per signature");
        let items = canonical_items(dim, items);
        let planes: Vec<Vec<Vec<f32>>> = (0..tables)
            .map(|t| {
                (0..bits)
                    .map(|b| {
                        (0..dim)
                            .map(|d| {
                                unit_f32(PLANE_SEED ^ mix64(((t * bits + b) * dim + d) as u64))
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut buckets = vec![vec![Vec::<u32>::new(); 1 << bits]; tables];
        let mut margins = Vec::with_capacity(bits);
        for (slot, (_, v)) in items.iter().enumerate() {
            for (t, table_buckets) in buckets.iter_mut().enumerate() {
                let sig = project(&planes[t], v, &mut margins);
                table_buckets[sig as usize].push(slot as u32);
            }
        }
        MultiProbeLsh {
            dim,
            bits,
            probes,
            planes,
            buckets,
            items,
        }
    }

    /// The probe sequence for one table, written into `scored`:
    /// signatures ordered by perturbation cost (sum of flipped-bit
    /// margins), starting with the base bucket. Buffers are caller-owned
    /// so a multi-table lookup allocates nothing per table.
    fn probe_sequence(
        &self,
        sig: u64,
        margins: &[f32],
        order: &mut Vec<usize>,
        scored: &mut Vec<(f32, u64)>,
    ) {
        // Rank bits by how close the query came to the hyperplane: the
        // lowest-margin bits are the likeliest to differ for a true
        // neighbour, so flipping them first maximizes recall per probe.
        order.clear();
        order.extend(0..self.bits);
        order.sort_unstable_by(|&a, &b| margins[a].total_cmp(&margins[b]).then_with(|| a.cmp(&b)));
        let flip_bits = self.bits.min(MAX_FLIP_BITS);
        let subsets = 1usize << flip_bits;
        scored.clear();
        for mask in 0..subsets {
            let mut cost = 0.0f32;
            let mut flipped = sig;
            for (i, &bit) in order.iter().take(flip_bits).enumerate() {
                if mask & (1 << i) != 0 {
                    cost += margins[bit];
                    flipped ^= 1 << bit;
                }
            }
            scored.push((cost, flipped));
        }
        scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        scored.truncate(self.probes);
    }

    /// Tables in this index.
    pub fn tables(&self) -> usize {
        self.planes.len()
    }

    /// Signature bits per table.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Buckets probed per table.
    pub fn probes(&self) -> usize {
        self.probes
    }
}

/// Signature of `v` against one table's planes; per-bit |margin|s are
/// written into the caller's reusable `margins` buffer.
fn project(planes: &[Vec<f32>], v: &FeatureVec, margins: &mut Vec<f32>) -> u64 {
    let mut sig = 0u64;
    margins.clear();
    for (b, plane) in planes.iter().enumerate() {
        let s: f32 = plane.iter().zip(v.as_slice()).map(|(p, x)| p * x).sum();
        if s >= 0.0 {
            sig |= 1 << b;
        }
        margins.push(s.abs());
    }
    sig
}

impl AnnIndex for MultiProbeLsh {
    fn nearest(
        &self,
        q: &FeatureVec,
        within: f32,
        accept: &dyn Fn(u64) -> bool,
        stats: &mut ProbeStats,
    ) -> Option<(u64, f32)> {
        if self.items.is_empty() {
            return None;
        }
        assert_eq!(q.dim(), self.dim, "query dim mismatch");
        let mut seen = vec![false; self.items.len()];
        let mut best: Option<(u64, f32)> = None;
        let mut margins = Vec::with_capacity(self.bits);
        let mut order = Vec::with_capacity(self.bits);
        let mut scored = Vec::with_capacity(1 << self.bits.min(MAX_FLIP_BITS));
        // A finite `within` arms the per-table satisficing exit: once a
        // table surfaces an accepted candidate inside the caller's hit
        // radius, later tables can only refine *which* in-radius entry is
        // returned, never the hit/miss decision — so skip them. Infinity
        // must not arm it (every distance is ≤ ∞).
        let satisficed =
            |b: &Option<(u64, f32)>| within.is_finite() && b.is_some_and(|(_, d)| d <= within);
        for (t, table_buckets) in self.buckets.iter().enumerate() {
            if satisficed(&best) {
                break;
            }
            let sig = project(&self.planes[t], q, &mut margins);
            self.probe_sequence(sig, &margins, &mut order, &mut scored);
            for &(_, probe_sig) in scored.iter() {
                stats.buckets += 1;
                for &slot in &table_buckets[probe_sig as usize] {
                    let slot = slot as usize;
                    if seen[slot] {
                        continue;
                    }
                    seen[slot] = true;
                    let (id, v) = &self.items[slot];
                    if !accept(*id) {
                        continue;
                    }
                    stats.distance_evals += 1;
                    let d = l2(q, v);
                    if better((*id, d), best) {
                        best = Some((*id, d));
                    }
                }
            }
        }
        if best.is_none() {
            // Every probed bucket was empty or fully filtered — the
            // tables told us nothing. Exact scan rather than a false
            // miss.
            stats.fallback_scans += 1;
            for (id, v) in &self.items {
                if !accept(*id) {
                    continue;
                }
                stats.distance_evals += 1;
                let d = l2(q, v);
                if better((*id, d), best) {
                    best = Some((*id, d));
                }
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn family(&self) -> &'static str {
        "mp-lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnnFamily, LinearAnn};
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    /// Deterministic clustered unit vectors (cluster centers on mixed
    /// hash directions, members perturbed slightly).
    fn clustered(dim: usize, clusters: usize, per: usize) -> Vec<(u64, FeatureVec)> {
        let mut out = Vec::new();
        let mut id = 0u64;
        for c in 0..clusters {
            let center: Vec<f32> = (0..dim)
                .map(|d| unit_f32(0xBEEF ^ mix64((c * dim + d) as u64)))
                .collect();
            for m in 0..per {
                let vec: Vec<f32> = center
                    .iter()
                    .enumerate()
                    .map(|(d, &x)| x + 0.03 * unit_f32(mix64((id as usize * dim + d + m) as u64)))
                    .collect();
                out.push((id, FeatureVec::new(vec).normalized()));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn finds_stored_vectors_exactly() {
        let items = clustered(16, 6, 8);
        let idx = MultiProbeLsh::new(16, 4, 8, 8, items.clone());
        for (id, vec) in &items {
            let mut stats = ProbeStats::default();
            let (got, d) = idx
                .nearest(vec, f32::INFINITY, &|_| true, &mut stats)
                .expect("index is non-empty");
            assert_eq!(got, *id);
            assert!(d < 1e-6);
        }
    }

    #[test]
    fn agrees_with_linear_on_clustered_queries() {
        let dim = 32;
        let items = clustered(dim, 10, 12);
        let mp = MultiProbeLsh::new(dim, 4, 8, 8, items.clone());
        let lin = LinearAnn::new(dim, items.clone());
        let mut agree = 0;
        let n = items.len();
        for (id, stored) in &items {
            // Perturb the stored vector slightly: the canonical
            // "another user's view of the same object" query.
            let q: Vec<f32> = stored
                .as_slice()
                .iter()
                .enumerate()
                .map(|(d, &x)| x + 0.01 * unit_f32(mix64(*id ^ d as u64)))
                .collect();
            let q = FeatureVec::new(q).normalized();
            let mut s1 = ProbeStats::default();
            let mut s2 = ProbeStats::default();
            let a = mp
                .nearest(&q, f32::INFINITY, &|_| true, &mut s1)
                .map(|(_, d)| d);
            let b = lin
                .nearest(&q, f32::INFINITY, &|_| true, &mut s2)
                .map(|(_, d)| d);
            // Compare the *distances* (hit decision), not ids: co-located
            // cluster members can be both acceptable.
            if let (Some(da), Some(db)) = (a, b) {
                if (da - db).abs() < 0.05 {
                    agree += 1;
                }
            }
        }
        assert!(agree * 100 >= n * 95, "recall too low: {agree}/{n}");
    }

    #[test]
    fn probes_fewer_candidates_than_linear() {
        let dim = 32;
        let items = clustered(dim, 16, 16);
        let n = items.len() as u64;
        let idx = MultiProbeLsh::new(dim, 4, 8, 8, items.clone());
        let mut stats = ProbeStats::default();
        let mut lookups = 0u64;
        for (_, q) in items.iter().step_by(7) {
            let _ = idx.nearest(q, f32::INFINITY, &|_| true, &mut stats);
            lookups += 1;
        }
        assert!(
            stats.distance_evals < lookups * n / 2,
            "multi-probe evaluated {} distances over {lookups} lookups on {n} items",
            stats.distance_evals
        );
    }

    #[test]
    fn empty_bucket_falls_back_to_full_scan() {
        // A single stored vector with a query pointing the opposite way:
        // every probed bucket is likely empty, the fallback must find it.
        let idx = MultiProbeLsh::new(4, 1, 8, 2, vec![(7, v(&[1.0, 0.0, 0.0, 0.0]))]);
        let mut stats = ProbeStats::default();
        let (id, _) = idx
            .nearest(
                &v(&[-1.0, 0.0, 0.0, 0.0]),
                f32::INFINITY,
                &|_| true,
                &mut stats,
            )
            .expect("fallback must find the only entry");
        assert_eq!(id, 7);
    }

    #[test]
    fn filtered_candidates_fall_back_rather_than_miss() {
        let items = clustered(8, 2, 4);
        let idx = MultiProbeLsh::new(8, 2, 6, 4, items.clone());
        let q = items[0].1.clone();
        let mut stats = ProbeStats::default();
        // Reject everything except the last id: the probed buckets may
        // only hold rejected ids, but the answer must still appear.
        let keep = items.last().expect("non-empty").0;
        let (id, _) = idx
            .nearest(&q, f32::INFINITY, &|i| i == keep, &mut stats)
            .expect("one id is accepted");
        assert_eq!(id, keep);
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = MultiProbeLsh::new(4, 2, 4, 4, Vec::new());
        let mut stats = ProbeStats::default();
        assert_eq!(
            idx.nearest(&v(&[0.0; 4]), f32::INFINITY, &|_| true, &mut stats),
            None
        );
    }

    #[test]
    fn rebuild_is_deterministic() {
        let items = clustered(16, 4, 8);
        let a = MultiProbeLsh::new(16, 4, 8, 8, items.clone());
        let b = MultiProbeLsh::new(16, 4, 8, 8, items.clone());
        for (_, q) in &items {
            let mut s1 = ProbeStats::default();
            let mut s2 = ProbeStats::default();
            assert_eq!(
                a.nearest(q, f32::INFINITY, &|_| true, &mut s1),
                b.nearest(q, f32::INFINITY, &|_| true, &mut s2)
            );
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn builds_through_family_config() {
        let fam = AnnFamily::MultiProbeLsh {
            tables: 2,
            bits: 4,
            probes: 4,
        };
        let idx = fam.build(4, vec![(1, v(&[1.0, 0.0, 0.0, 0.0]))]);
        assert_eq!(idx.family(), "mp-lsh");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "LSH parameters must be positive")]
    fn zero_probes_rejected() {
        let _ = MultiProbeLsh::new(4, 1, 4, 0, Vec::new());
    }
}

//! Real-socket deployment of CoIC.
//!
//! The same [`crate::services`] logic as the simulator, but deployed over
//! framed TCP ([`coic_netsim::rt`]): a cloud process, an edge process with
//! shared caches serving each client connection from its own thread, and a
//! blocking client. Used by the `live_deployment` example and the loopback
//! integration tests; latency here is real wall-clock time (the SimNet
//! inference, CMF parsing and panorama synthesis all actually run).
//!
//! Fault tolerance (configured by [`NetConfig`]):
//!
//! * every socket carries read/write deadlines, so no request can hang;
//! * the client retries failed attempts under a [`RetryPolicy`]
//!   (capped exponential backoff, seeded jitter) and reconnects on broken
//!   or desynchronized connections;
//! * when the edge stays unreachable (or replies [`Msg::Unavailable`]),
//!   a client constructed with [`NetClient::connect_with`] degrades to the
//!   origin path — direct [`Msg::BaselineRequest`] to the cloud — and
//!   periodically probes the edge to rejoin the cooperative path;
//! * the edge's own cloud leg sits behind a [`CircuitBreaker`], so a dead
//!   cloud makes the edge answer `Unavailable` fast instead of stalling
//!   every connection thread;
//! * concurrent identical misses coalesce into one upstream fetch
//!   (single-flight), so a thundering herd costs one cloud round trip.
//!
//! Every transition is counted in [`RobustnessStats`], surfaced through
//! [`NetClient::robustness`] and [`EdgeHandle::robustness`].

use crate::compute::ComputeConfig;
use crate::content::{ModelLibrary, PanoLibrary};
use crate::protocol::Msg;
use crate::qoe::Path;
use crate::robust::{CircuitBreaker, RetryPolicy, RobustnessStats};
use crate::services::{
    ClientConfig, ClientLogic, CloudService, EdgeConfig, EdgeReply, EdgeService,
};
use crate::task::TaskResult;
use coic_cache::Digest;
use coic_netsim::rt::{FaultError, FrameConn, FrameError, FrameServer};
use coic_vision::{ObjectClass, SceneGenerator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn epoch_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

/// Deadlines, retry and breaker parameters for the live deployment.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Client-side retry/backoff policy per request.
    pub retry: RetryPolicy,
    /// How long a client waits for any single reply frame.
    pub request_deadline: Duration,
    /// Bound on TCP connection establishment.
    pub connect_timeout: Duration,
    /// While degraded, how often the client probes the edge to rejoin.
    pub probe_interval: Duration,
    /// Deadline on the edge's own upstream calls (cloud, peers).
    pub edge_call_deadline: Duration,
    /// Consecutive cloud-leg failures that trip the edge's breaker.
    pub breaker_threshold: u32,
    /// How long the tripped breaker rejects before probing the cloud.
    pub breaker_cooldown: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            retry: RetryPolicy::default(),
            request_deadline: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(500),
            probe_interval: Duration::from_millis(100),
            edge_call_deadline: Duration::from_secs(3),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(300),
        }
    }
}

/// A running cloud process.
pub struct CloudHandle {
    addr: SocketAddr,
    _server: FrameServer,
}

impl CloudHandle {
    /// Address clients/edges should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Start a cloud server on an ephemeral loopback port.
pub fn spawn_cloud(
    classes: &[ObjectClass],
    image_side: u32,
    compute: ComputeConfig,
    models: Arc<ModelLibrary>,
    panos: Arc<PanoLibrary>,
    seed: u64,
) -> std::io::Result<CloudHandle> {
    let gen = SceneGenerator::new(image_side);
    let service = Arc::new(CloudService::new(
        classes, &gen, compute, models, panos, seed,
    ));
    let server = FrameServer::spawn("127.0.0.1:0", move |frame| {
        let msg = Msg::decode(&frame).ok()?;
        let reply = match msg {
            Msg::Forward { req_id, task } => {
                let (result, _cost) = service.execute(&task);
                Msg::CloudReply { req_id, result }
            }
            Msg::BaselineRequest { req_id, task } => {
                let (result, _cost) = service.execute(&task);
                Msg::BaselineReply { req_id, result }
            }
            _ => return None,
        };
        Some(reply.encode().to_vec())
    })?;
    Ok(CloudHandle {
        addr: server.local_addr(),
        _server: server,
    })
}

/// A running edge process. Dropping the handle (or calling
/// [`EdgeHandle::shutdown`]) tears the edge down for real — its accept
/// loop stops and live client connections are severed — which is what the
/// chaos tests rely on to kill an edge mid-workload.
pub struct EdgeHandle {
    addr: SocketAddr,
    peers: Arc<Mutex<Vec<SocketAddr>>>,
    stats: RobustnessStats,
    breaker: Arc<CircuitBreaker>,
    server: FrameServer,
}

impl EdgeHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Register a cooperating peer edge: exact-task misses will ask it
    /// before going to the cloud.
    pub fn add_peer(&self, addr: SocketAddr) {
        self.peers.lock().push(addr);
    }

    /// Fault-handling counters for this edge (breaker trips, unavailable
    /// replies, upstream timeouts).
    pub fn robustness(&self) -> RobustnessStats {
        self.stats.clone()
    }

    /// State of the edge→cloud circuit breaker.
    pub fn breaker_state(&self) -> crate::robust::BreakerState {
        self.breaker.state()
    }

    /// Stop the edge: no new connections, live ones severed. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// Call the cloud through the circuit breaker. Returns `None` when the
/// breaker is open or the call fails (the breaker records the outcome).
fn guarded_cloud_call(
    cloud_addr: SocketAddr,
    msg: &Msg,
    net: &NetConfig,
    breaker: &CircuitBreaker,
    stats: &RobustnessStats,
) -> Option<TaskResult> {
    if !breaker.allow() {
        return None;
    }
    let trips = breaker.trips();
    let closes = breaker.closes();
    let result = (|| {
        let mut cloud = FrameConn::connect_timeout(&cloud_addr, net.connect_timeout).ok()?;
        cloud.set_read_deadline(Some(net.edge_call_deadline)).ok()?;
        cloud
            .set_write_deadline(Some(net.edge_call_deadline))
            .ok()?;
        cloud.send(&msg.encode()).ok()?;
        let resp = match cloud.recv() {
            Ok(r) => r,
            Err(e) => {
                if e.fault() == FaultError::Timeout {
                    stats.count_timeout();
                }
                return None;
            }
        };
        match Msg::decode(&resp).ok()? {
            Msg::CloudReply { result, .. } => Some(result),
            _ => None,
        }
    })();
    breaker.record(result.is_some());
    if breaker.trips() > trips {
        stats.count_breaker_trip();
    }
    if breaker.closes() > closes {
        stats.count_breaker_close();
    }
    result
}

/// Start an edge server on an ephemeral loopback port with default
/// fault-tolerance parameters, forwarding misses to `cloud_addr`.
pub fn spawn_edge(cloud_addr: SocketAddr, cfg: &EdgeConfig) -> std::io::Result<EdgeHandle> {
    spawn_edge_with(cloud_addr, cfg, NetConfig::default(), None)
}

/// Start an edge server, forwarding misses to `cloud_addr` under the given
/// [`NetConfig`]. `bind` pins the listening address (an edge restarted on
/// its old address lets degraded clients rejoin); `None` picks an
/// ephemeral loopback port.
pub fn spawn_edge_with(
    cloud_addr: SocketAddr,
    cfg: &EdgeConfig,
    net: NetConfig,
    bind: Option<SocketAddr>,
) -> std::io::Result<EdgeHandle> {
    let service = Arc::new(Mutex::new(EdgeService::new(cfg)));
    let pending = Arc::new(Mutex::new(HashMap::new()));
    let peers: Arc<Mutex<Vec<SocketAddr>>> = Arc::new(Mutex::new(Vec::new()));
    let peers_in_handler = peers.clone();
    let stats = RobustnessStats::default();
    let breaker = Arc::new(CircuitBreaker::new(
        net.breaker_threshold,
        net.breaker_cooldown,
    ));
    // Single-flight table: one upstream fetch per content digest at a time;
    // losers of the race re-check the cache instead of refetching.
    let inflight: Arc<Mutex<HashMap<Digest, Arc<Mutex<()>>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let (stats_h, breaker_h, inflight_h) = (stats.clone(), breaker.clone(), inflight.clone());
    let start = Instant::now();
    let bind = bind.unwrap_or_else(|| "127.0.0.1:0".parse().unwrap());
    let server = FrameServer::spawn(bind, move |frame| {
        let peers = &peers_in_handler;
        let msg = Msg::decode(&frame).ok()?;
        let now = epoch_ns(start);
        let reply = match msg {
            Msg::Query {
                req_id,
                descriptor,
                hint,
            } => {
                let decision = service.lock().handle_query(&descriptor, hint.as_ref(), now);
                match decision {
                    EdgeReply::Hit(result) => Msg::Hit { req_id, result },
                    EdgeReply::NeedPayload => {
                        pending.lock().insert(req_id, descriptor);
                        Msg::NeedPayload { req_id }
                    }
                    EdgeReply::Forward(task) => {
                        let digest = crate::services::descriptor_digest(&descriptor);
                        // Serialize identical misses: only the first thread
                        // fetches; the rest find the result cached when the
                        // guard is released.
                        let flight_guard = digest.map(|d| {
                            inflight_h
                                .lock()
                                .entry(d)
                                .or_insert_with(|| Arc::new(Mutex::new(())))
                                .clone()
                        });
                        let _held = flight_guard.as_ref().map(|m| m.lock());
                        if let Some(d) = &digest {
                            if let Some(result) = service.lock().exact_lookup(d, now) {
                                return Some(Msg::Hit { req_id, result }.encode().to_vec());
                            }
                        }
                        // Cooperative lookup: ask each registered peer edge
                        // before paying the cloud round trip (exact tasks
                        // carry their digest in the descriptor).
                        let peer_hit = digest.and_then(|digest| {
                            let addrs = peers.lock().clone();
                            for addr in addrs {
                                let Ok(mut peer) =
                                    FrameConn::connect_timeout(&addr, net.connect_timeout)
                                else {
                                    continue;
                                };
                                if peer
                                    .set_read_deadline(Some(net.edge_call_deadline))
                                    .is_err()
                                {
                                    continue;
                                }
                                let _ = peer.set_write_deadline(Some(net.edge_call_deadline));
                                if peer
                                    .send(&Msg::PeerQuery { req_id, digest }.encode())
                                    .is_err()
                                {
                                    continue;
                                }
                                let Ok(resp) = peer.recv() else { continue };
                                if let Ok(Msg::PeerReply {
                                    result: Some(result),
                                    ..
                                }) = Msg::decode(&resp)
                                {
                                    return Some(result);
                                }
                            }
                            None
                        });
                        if let Some(result) = peer_hit {
                            service.lock().insert(&descriptor, &result, now);
                            Msg::PeerResult { req_id, result }
                        } else {
                            match guarded_cloud_call(
                                cloud_addr,
                                &Msg::Forward { req_id, task },
                                &net,
                                &breaker_h,
                                &stats_h,
                            ) {
                                Some(result) => {
                                    service.lock().insert(&descriptor, &result, now);
                                    Msg::Result { req_id, result }
                                }
                                None => {
                                    stats_h.count_unavailable();
                                    Msg::Unavailable { req_id }
                                }
                            }
                        }
                    }
                }
            }
            Msg::PeerQuery { req_id, digest } => {
                let result = service.lock().exact_lookup(&digest, now);
                Msg::PeerReply { req_id, result }
            }
            Msg::Upload { req_id, task } => {
                let descriptor = pending.lock().remove(&req_id)?;
                match guarded_cloud_call(
                    cloud_addr,
                    &Msg::Forward { req_id, task },
                    &net,
                    &breaker_h,
                    &stats_h,
                ) {
                    Some(result) => {
                        service.lock().insert(&descriptor, &result, now);
                        Msg::Result { req_id, result }
                    }
                    None => {
                        stats_h.count_unavailable();
                        Msg::Unavailable { req_id }
                    }
                }
            }
            _ => return None,
        };
        Some(reply.encode().to_vec())
    })?;
    Ok(EdgeHandle {
        addr: server.local_addr(),
        peers,
        stats,
        breaker,
        server,
    })
}

/// Outcome of one live request.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The result delivered to the client.
    pub result: TaskResult,
    /// Wall-clock latency.
    pub elapsed: std::time::Duration,
    /// Hit/miss path taken.
    pub path: Path,
    /// Attempts beyond the first this request needed.
    pub retries: u32,
}

/// What one attempt against the edge produced.
enum AttemptOutcome {
    /// Got a terminal reply.
    Done(TaskResult, Path),
    /// The edge told us to go away; do not retry the edge.
    Unavailable,
    /// Transport-level failure; retrying may help.
    Failed,
}

/// A blocking CoIC client over a live edge connection, with retry,
/// reconnect and (when constructed via [`NetClient::connect_with`])
/// graceful degradation to the origin path.
pub struct NetClient {
    edge_addr: SocketAddr,
    cloud_addr: Option<SocketAddr>,
    conn: Option<FrameConn>,
    logic: ClientLogic,
    next_req: u64,
    net: NetConfig,
    degraded: bool,
    last_probe: Option<Instant>,
    stats: RobustnessStats,
}

impl NetClient {
    /// Connect to a live edge (no origin fallback, default deadlines).
    pub fn connect(
        edge_addr: SocketAddr,
        client_cfg: ClientConfig,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
    ) -> std::io::Result<NetClient> {
        let mut c = Self::connect_with(
            edge_addr,
            None,
            NetConfig::default(),
            client_cfg,
            compute,
            models,
            panos,
        )?;
        // Preserve the historical contract: fail fast if the edge is down.
        if c.conn.is_none() {
            c.reconnect_edge()
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        Ok(c)
    }

    /// Connect with explicit fault-tolerance parameters. With a
    /// `cloud_addr`, the client survives edge failure: requests fall back
    /// to the origin path and the edge is re-probed every
    /// [`NetConfig::probe_interval`]. An initially-unreachable edge makes
    /// the client start degraded rather than fail construction.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with(
        edge_addr: SocketAddr,
        cloud_addr: Option<SocketAddr>,
        net: NetConfig,
        client_cfg: ClientConfig,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
    ) -> std::io::Result<NetClient> {
        let stats = RobustnessStats::default();
        let mut client = NetClient {
            edge_addr,
            cloud_addr,
            conn: None,
            logic: ClientLogic::new(client_cfg, compute, models, panos),
            next_req: 1,
            net,
            degraded: false,
            last_probe: None,
            stats,
        };
        if client.reconnect_edge().is_err() && client.cloud_addr.is_some() {
            client.degraded = true;
            client.stats.count_degraded();
        }
        Ok(client)
    }

    /// Fault-handling counters for this client.
    pub fn robustness(&self) -> RobustnessStats {
        self.stats.clone()
    }

    /// Is the client currently on the origin (cloud-direct) path?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn reconnect_edge(&mut self) -> Result<(), FrameError> {
        let conn = FrameConn::connect_timeout(&self.edge_addr, self.net.connect_timeout)?;
        conn.set_read_deadline(Some(self.net.request_deadline))?;
        conn.set_write_deadline(Some(self.net.request_deadline))?;
        self.conn = Some(conn);
        Ok(())
    }

    /// While degraded: occasionally try the edge again; on success, rejoin
    /// the cooperative path.
    fn maybe_probe_edge(&mut self) {
        let due = self
            .last_probe
            .map(|t| t.elapsed() >= self.net.probe_interval)
            .unwrap_or(true);
        if !due {
            return;
        }
        self.last_probe = Some(Instant::now());
        self.stats.count_probe();
        if self.reconnect_edge().is_ok() {
            self.degraded = false;
            self.stats.count_recovered();
        }
    }

    /// One attempt against the edge: send the query, pump replies.
    fn attempt_edge(
        &mut self,
        req_id: u64,
        prepared: &crate::services::PreparedRequest,
    ) -> AttemptOutcome {
        if self.conn.is_none() {
            match self.reconnect_edge() {
                Ok(()) => self.stats.count_reconnect(),
                Err(_) => return AttemptOutcome::Failed,
            }
        }
        let conn = self.conn.as_mut().expect("just connected");
        let hint = match &prepared.task {
            crate::task::TaskRequest::Recognition { .. } => None,
            t => Some(t.clone()),
        };
        let query = Msg::Query {
            req_id,
            descriptor: prepared.descriptor.clone(),
            hint,
        };
        let on_error = |stats: &RobustnessStats, e: &FrameError| match e.fault() {
            FaultError::Timeout => stats.count_timeout(),
            FaultError::Corrupt => stats.count_corrupt(),
            _ => {}
        };
        if let Err(e) = conn.send(&query.encode()) {
            on_error(&self.stats, &e);
            self.conn = None;
            return AttemptOutcome::Failed;
        }
        loop {
            let frame = match self.conn.as_mut().expect("conn live").recv() {
                Ok(f) => f,
                Err(e) => {
                    on_error(&self.stats, &e);
                    // Timeouts desynchronize the stream; all errors drop
                    // the connection so the next attempt starts clean.
                    self.conn = None;
                    return AttemptOutcome::Failed;
                }
            };
            let msg = match Msg::decode(&frame) {
                Ok(m) => m,
                Err(_) => {
                    self.conn = None;
                    return AttemptOutcome::Failed;
                }
            };
            match msg {
                Msg::Hit { result, .. } => return AttemptOutcome::Done(result, Path::EdgeHit),
                Msg::Result { result, .. } => return AttemptOutcome::Done(result, Path::CloudMiss),
                Msg::PeerResult { result, .. } => {
                    return AttemptOutcome::Done(result, Path::PeerHit)
                }
                Msg::Unavailable { .. } => {
                    self.stats.count_unavailable();
                    return AttemptOutcome::Unavailable;
                }
                Msg::NeedPayload { req_id } => {
                    let upload = Msg::Upload {
                        req_id,
                        task: prepared.task.clone(),
                    };
                    if let Err(e) = self
                        .conn
                        .as_mut()
                        .expect("conn live")
                        .send(&upload.encode())
                    {
                        on_error(&self.stats, &e);
                        self.conn = None;
                        return AttemptOutcome::Failed;
                    }
                }
                // A stale reply to an earlier (timed-out) request id can
                // not appear here — timeouts drop the connection — so any
                // other message is a protocol violation.
                _ => {
                    self.conn = None;
                    return AttemptOutcome::Failed;
                }
            }
        }
    }

    /// Origin path: ask the cloud directly, bypassing the edge.
    fn attempt_origin(
        &mut self,
        req_id: u64,
        prepared: &crate::services::PreparedRequest,
    ) -> Result<TaskResult, FrameError> {
        let mut cloud = FrameConn::connect_timeout(
            &self.cloud_addr.expect("origin path needs cloud_addr"),
            self.net.connect_timeout,
        )?;
        cloud.set_read_deadline(Some(self.net.request_deadline))?;
        cloud.set_write_deadline(Some(self.net.request_deadline))?;
        cloud.send(
            &Msg::BaselineRequest {
                req_id,
                task: prepared.task.clone(),
            }
            .encode(),
        )?;
        let resp = cloud.recv()?;
        match Msg::decode(&resp) {
            Ok(Msg::BaselineReply { result, .. }) => Ok(result),
            _ => Err(FrameError::Closed),
        }
    }

    /// Execute one workload request end to end, returning the result, the
    /// measured wall latency and the path that served it. With a cloud
    /// fallback configured this only errors when *both* paths are dead.
    pub fn execute(
        &mut self,
        req: &coic_workload::Request,
    ) -> Result<LiveOutcome, Box<dyn std::error::Error>> {
        let started = Instant::now();
        let prepared = self.logic.prepare(req);
        let req_id = self.next_req;
        self.next_req += 1;
        let mut retries = 0u32;

        if self.degraded {
            self.maybe_probe_edge();
        }
        if !self.degraded {
            for attempt in 0..self.net.retry.max_attempts {
                if attempt > 0 {
                    retries += 1;
                    self.stats.count_retry();
                    std::thread::sleep(self.net.retry.backoff(req_id, attempt - 1));
                }
                self.stats.count_attempt();
                match self.attempt_edge(req_id, &prepared) {
                    AttemptOutcome::Done(result, path) => {
                        return Ok(LiveOutcome {
                            result,
                            elapsed: started.elapsed(),
                            path,
                            retries,
                        })
                    }
                    AttemptOutcome::Unavailable => break,
                    AttemptOutcome::Failed => {}
                }
            }
            // Cooperative path exhausted.
            if self.cloud_addr.is_none() {
                return Err(format!(
                    "edge at {} unreachable after {} attempts",
                    self.edge_addr, self.net.retry.max_attempts
                )
                .into());
            }
            self.degraded = true;
            self.last_probe = Some(Instant::now());
            self.stats.count_degraded();
        }

        // Degraded: origin path, still under the retry budget.
        for attempt in 0..self.net.retry.max_attempts {
            if attempt > 0 {
                retries += 1;
                self.stats.count_retry();
                std::thread::sleep(self.net.retry.backoff(req_id, attempt - 1));
            }
            self.stats.count_attempt();
            match self.attempt_origin(req_id, &prepared) {
                Ok(result) => {
                    self.stats.count_fallback();
                    return Ok(LiveOutcome {
                        result,
                        elapsed: started.elapsed(),
                        path: Path::Baseline,
                        retries,
                    });
                }
                Err(e) => {
                    if e.fault() == FaultError::Timeout {
                        self.stats.count_timeout();
                    }
                }
            }
        }
        Err(format!(
            "both edge {} and cloud {:?} unreachable",
            self.edge_addr, self.cloud_addr
        )
        .into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_workload::{Request, RequestKind, UserId, ZoneId};

    fn stack() -> (CloudHandle, EdgeHandle, NetClient) {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes: Vec<_> = (0..5).map(ObjectClass).collect();
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let client =
            NetClient::connect(edge.addr(), ClientConfig::default(), compute, models, panos)
                .unwrap();
        (cloud, edge, client)
    }

    fn recog(class: u32, seed: u64) -> Request {
        Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Recognition {
                class,
                view_seed: seed,
            },
        }
    }

    #[test]
    fn live_recognition_miss_then_hit() {
        let (_cloud, _edge, mut client) = stack();
        let first = client.execute(&recog(2, 10)).unwrap();
        assert_eq!(first.path, Path::CloudMiss);
        match &first.result {
            TaskResult::Recognition(r) => assert_eq!(r.label, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Same viewpoint again: identical descriptor, guaranteed hit.
        let second = client.execute(&recog(2, 10)).unwrap();
        assert_eq!(second.path, Path::EdgeHit);
    }

    #[test]
    fn live_model_load_shares_across_clients() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 5,
                size_bytes: 60_000,
            },
        };
        let mut a = NetClient::connect(
            edge.addr(),
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap();
        let mut b =
            NetClient::connect(edge.addr(), ClientConfig::default(), compute, models, panos)
                .unwrap();
        // Client A warms the cache; client B hits it.
        assert_eq!(a.execute(&req).unwrap().path, Path::CloudMiss);
        let out = b.execute(&req).unwrap();
        assert_eq!(out.path, Path::EdgeHit);
        match out.result {
            TaskResult::Model(bytes) => {
                coic_render::load_cmf(&bytes).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn live_peer_edges_cooperate() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let edge_a = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        let edge_b = spawn_edge(cloud.addr(), &EdgeConfig::default()).unwrap();
        edge_a.add_peer(edge_b.addr());
        edge_b.add_peer(edge_a.addr());

        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 3,
                size_bytes: 80_000,
            },
        };
        // Warm edge B through its own client.
        let mut b_client = NetClient::connect(
            edge_b.addr(),
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        )
        .unwrap();
        assert_eq!(b_client.execute(&req).unwrap().path, Path::CloudMiss);

        // Edge A's client now gets the model via the peer, not the cloud.
        let mut a_client = NetClient::connect(
            edge_a.addr(),
            ClientConfig::default(),
            compute,
            models,
            panos,
        )
        .unwrap();
        let out = a_client.execute(&req).unwrap();
        assert_eq!(out.path, Path::PeerHit);
        // And it is now cached locally at A.
        assert_eq!(a_client.execute(&req).unwrap().path, Path::EdgeHit);
    }

    #[test]
    fn live_panorama_flow() {
        let (_cloud, _edge, mut client) = stack();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Panorama { frame_id: 3 },
        };
        let miss = client.execute(&req).unwrap();
        assert_eq!(miss.path, Path::CloudMiss);
        let hit = client.execute(&req).unwrap();
        assert_eq!(hit.path, Path::EdgeHit);
        assert_eq!(miss.result, hit.result);
    }

    #[test]
    fn client_without_fallback_errors_when_edge_dies() {
        let (_cloud, mut edge, mut client) = stack();
        client.execute(&recog(1, 5)).unwrap();
        edge.shutdown();
        let net = NetConfig::default();
        let start = Instant::now();
        let err = client.execute(&recog(1, 6));
        assert!(err.is_err(), "edgeless client should fail");
        // It must fail by deadline/refusal, not hang forever.
        assert!(
            start.elapsed()
                < net.request_deadline * (net.retry.max_attempts + 1) + Duration::from_secs(2)
        );
    }

    #[test]
    fn breaker_makes_edge_answer_unavailable_fast() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let classes = vec![ObjectClass(0)];
        let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), 3).unwrap();
        let cloud_addr = cloud.addr();
        let net = NetConfig {
            edge_call_deadline: Duration::from_millis(300),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(30),
            ..NetConfig::default()
        };
        let edge = spawn_edge_with(cloud_addr, &EdgeConfig::default(), net.clone(), None).unwrap();
        drop(cloud); // kill the cloud: the edge's forwarding leg is now dead

        let mut conn = FrameConn::connect(edge.addr()).unwrap();
        conn.set_read_deadline(Some(Duration::from_secs(5)))
            .unwrap();
        let query = |frame_id: u64, req_id: u64| {
            Msg::Query {
                req_id,
                descriptor: crate::descriptor::FeatureDescriptor::PanoramaHash(Digest::of(
                    &frame_id.to_le_bytes(),
                )),
                hint: Some(crate::task::TaskRequest::Panorama { frame_id }),
            }
            .encode()
        };
        // First misses fail against the dead cloud and trip the breaker…
        for req_id in 0..2u64 {
            conn.send(&query(req_id, req_id + 1)).unwrap();
            let resp = conn.recv().unwrap();
            assert!(matches!(
                Msg::decode(&resp).unwrap(),
                Msg::Unavailable { .. }
            ));
        }
        // …after which refusals are immediate (no upstream connect at all).
        let t = Instant::now();
        conn.send(&query(99, 100)).unwrap();
        let resp = conn.recv().unwrap();
        assert!(matches!(
            Msg::decode(&resp).unwrap(),
            Msg::Unavailable { .. }
        ));
        assert!(
            t.elapsed() < Duration::from_millis(200),
            "open breaker should refuse fast, took {:?}",
            t.elapsed()
        );
        assert_eq!(edge.breaker_state(), crate::robust::BreakerState::Open);
        let snap = edge.robustness().snapshot();
        assert!(snap.breaker_trips >= 1);
        assert_eq!(snap.unavailable_replies, 3);
    }
}

//! The edge cache service behind shared references.
//!
//! [`crate::services::EdgeService`] is deliberately single-threaded
//! (`&mut self`): the simulator owns one and drives it deterministically.
//! The live TCP edge instead serves every client connection from its own
//! thread, and wrapping the whole service in a mutex serializes the hot
//! path. [`SharedEdgeService`] is the concurrent counterpart: the same
//! decision logic, same cache-sizing rules and same reply semantics as
//! `EdgeService`, but every method takes `&self`:
//!
//! * recognition descriptors go through the snapshot/journal cache
//!   ([`coic_cache::SnapshotApproxCache`]) — lookups walk an immutable
//!   `Arc`-swapped snapshot lock-free, inserts journal, and the engine
//!   tick drives [`SharedEdgeService::maintain`] to fold rebuilds at
//!   deterministic points;
//! * exact digests go through the sharded wrapper
//!   ([`coic_cache::ShardedExactCache`]), where a hit share-locks one
//!   shard.
//!
//! The hit/miss *decisions* match the unsharded service: the snapshot
//! lookup scans the journal before declaring a miss (an insert is visible
//! immediately), and the exact lookup's shard holds all entries for its
//! digest. What changes is performance metadata only (recency is a
//! relaxed tick replayed at fold time, stats live in relaxed atomics),
//! which the deterministic simulation never sees — the sim path keeps
//! using `EdgeService` untouched.

use crate::descriptor::FeatureDescriptor;
use crate::services::{EdgeConfig, EdgeReply};
use crate::task::{TaskRequest, TaskResult};
use coic_cache::{
    Digest, IndexTelemetry, Lookup, Metrics, ShardedExactCache, SnapshotApproxCache,
    DEFAULT_REBUILD_BATCH,
};
use coic_obs::MetricsRegistry;

/// A concurrently shareable edge cache service (`&self` everywhere).
pub struct SharedEdgeService {
    recog: SnapshotApproxCache<crate::task::RecognitionResult>,
    exact: ShardedExactCache<TaskResult>,
}

impl SharedEdgeService {
    /// Create the service with `shards` lock shards for the exact cache
    /// (the snapshot recognition cache is unsharded by design — see the
    /// module docs).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(cfg: &EdgeConfig, shards: usize) -> Self {
        SharedEdgeService {
            recog: SnapshotApproxCache::new(
                cfg.recog_cache_bytes,
                cfg.threshold,
                cfg.index.ann_family(),
                cfg.embedding_dim,
                DEFAULT_REBUILD_BATCH,
            ),
            exact: {
                let ttl_ns = cfg.exact_ttl_ms.map(|ms| ms * 1_000_000);
                let c = ShardedExactCache::new(cfg.exact_cache_bytes, cfg.policy, ttl_ns, shards);
                match cfg.admission {
                    Some(a) => c.with_admission(a),
                    None => c,
                }
            },
        }
    }

    /// Look a descriptor up in the matching cache — the typed outcome
    /// [`SharedEdgeService::handle_query`] and the per-request telemetry
    /// share (the trace records `kind_str()` and the approx distance).
    pub fn lookup(&self, descriptor: &FeatureDescriptor, now_ns: u64) -> Lookup<TaskResult> {
        match descriptor {
            FeatureDescriptor::Dnn(v) => self
                .recog
                .lookup(v, now_ns)
                .map(|r| TaskResult::Recognition(*r)),
            FeatureDescriptor::ModelHash(d) | FeatureDescriptor::PanoramaHash(d) => {
                // The Arc clone happens under the shard read lock; the
                // payload deep clone happens here, after release.
                match self.exact.lookup(d, now_ns) {
                    Some(result) => Lookup::ExactHit(TaskResult::clone(&result)),
                    None => Lookup::Miss,
                }
            }
        }
    }

    /// Handle a descriptor query — same decision table as
    /// [`crate::services::EdgeService::handle_query`].
    pub fn handle_query(
        &self,
        descriptor: &FeatureDescriptor,
        hint: Option<&TaskRequest>,
        now_ns: u64,
    ) -> EdgeReply {
        match self.lookup(descriptor, now_ns).into_value() {
            Some(result) => EdgeReply::Hit(result),
            None => match hint {
                Some(task) => EdgeReply::Forward(task.clone()),
                None => EdgeReply::NeedPayload,
            },
        }
    }

    /// Insert a freshly computed result under its descriptor (same size
    /// accounting as [`crate::services::EdgeService::insert`]). Returns
    /// how many journal entries a recognition insert folded when it
    /// tripped the snapshot cache's self-fold (zero otherwise) — callers
    /// use this to trace `index.rebuild` events.
    ///
    /// # Panics
    /// Panics when the descriptor and result kinds disagree.
    pub fn insert(
        &self,
        descriptor: &FeatureDescriptor,
        result: &TaskResult,
        now_ns: u64,
    ) -> usize {
        match (descriptor, result) {
            (FeatureDescriptor::Dnn(v), TaskResult::Recognition(r)) => {
                let size = v.byte_size() + result.byte_size();
                self.recog.insert(v.clone(), *r, size, now_ns)
            }
            (FeatureDescriptor::ModelHash(d) | FeatureDescriptor::PanoramaHash(d), result) => {
                self.exact
                    .insert(*d, result.clone(), result.byte_size(), now_ns);
                0
            }
            (d, r) => panic!(
                "descriptor kind {} does not match result kind {}",
                d.kind(),
                r.kind()
            ),
        }
    }

    /// Does the exact cache currently hold this digest? (No stats or
    /// recency side effects.)
    pub fn exact_contains(&self, digest: &Digest, now_ns: u64) -> bool {
        self.exact.contains(digest, now_ns)
    }

    /// Direct exact-cache lookup by digest (peer queries / single-flight
    /// re-checks). The payload clone runs outside the shard lock.
    pub fn exact_lookup(&self, digest: &Digest, now_ns: u64) -> Option<TaskResult> {
        self.exact.lookup_owned(digest, now_ns)
    }

    /// Recognition cache metrics, merged across shards.
    pub fn recog_metrics(&self) -> Metrics {
        self.recog.metrics()
    }

    /// Exact cache metrics, merged across shards.
    pub fn exact_metrics(&self) -> Metrics {
        self.exact.metrics()
    }

    /// Publish both caches' metrics into the shared registry under
    /// `cache.recog.*` and `cache.exact.*` (the same keys the simulator's
    /// unsharded edge publishes, so reports compare across stacks), plus
    /// the recognition index hot-path telemetry under `index.*`.
    pub fn publish_metrics(&self, reg: &MetricsRegistry) {
        self.recog_metrics().publish(reg, "cache.recog");
        self.exact_metrics().publish(reg, "cache.exact");
        self.index_telemetry().publish(reg);
    }

    /// Snapshot of the recognition index hot-path telemetry (probe
    /// counts, rebuilds, journal depth, snapshot age).
    pub fn index_telemetry(&self) -> IndexTelemetry {
        self.recog.index_telemetry()
    }

    /// Fold the recognition cache's journal into a fresh snapshot (see
    /// [`SnapshotApproxCache::maintain`]). The live edge's engine tick
    /// calls this between requests so index rebuilds land at
    /// deterministic points rather than mid-lookup. Returns how many
    /// journal entries were folded.
    pub fn maintain(&self, now_ns: u64) -> usize {
        self.recog.maintain(now_ns)
    }

    /// The recognition index family's label (`mp-lsh`, `hnsw`, `linear`).
    pub fn index_family(&self) -> &'static str {
        self.recog.family_label()
    }

    /// Combined hit ratio over both caches.
    pub fn hit_ratio(&self) -> f64 {
        let r = self.recog_metrics();
        let e = self.exact_metrics();
        let hits = r.hits + e.hits;
        let total = r.lookups() + e.lookups();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Shard count of the underlying caches.
    pub fn shard_count(&self) -> usize {
        self.exact.shard_count()
    }

    /// Which exact-cache shard serves this digest (telemetry label only —
    /// the lookup itself routes internally).
    pub fn exact_shard_of(&self, digest: &Digest) -> usize {
        self.exact.shard_of_key(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::RecognitionResult;
    use coic_vision::FeatureVec;

    fn svc() -> SharedEdgeService {
        SharedEdgeService::new(&EdgeConfig::default(), 4)
    }

    #[test]
    fn recognition_miss_then_hit_matches_edge_service() {
        let edge = svc();
        let d = FeatureDescriptor::Dnn(FeatureVec::new(vec![1.0; 32]));
        assert_eq!(edge.handle_query(&d, None, 0), EdgeReply::NeedPayload);
        let r = TaskResult::Recognition(RecognitionResult {
            label: 3,
            distance: 0.1,
        });
        edge.insert(&d, &r, 0);
        match edge.handle_query(&d, None, 1) {
            EdgeReply::Hit(TaskResult::Recognition(rr)) => assert_eq!(rr.label, 3),
            other => panic!("expected Hit, got {other:?}"),
        }
        let s = edge.recog_metrics();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn typed_lookup_and_shard_labels() {
        let edge = svc();
        let digest = Digest::of(b"model 1");
        let d = FeatureDescriptor::ModelHash(digest);
        assert_eq!(edge.lookup(&d, 0), Lookup::Miss);
        let r = TaskResult::Model(bytes::Bytes::from(vec![0u8; 10]));
        edge.insert(&d, &r, 0);
        assert!(matches!(edge.lookup(&d, 1), Lookup::ExactHit(_)));
        assert!(edge.exact_shard_of(&digest) < edge.shard_count());
    }

    #[test]
    fn maintain_folds_recognition_journal_and_publishes_telemetry() {
        let edge = svc();
        let r = TaskResult::Recognition(RecognitionResult {
            label: 1,
            distance: 0.0,
        });
        for i in 0..5u64 {
            let mut raw = vec![0.0f32; 32];
            raw[(i as usize) % 32] = 1.0;
            edge.insert(&FeatureDescriptor::Dnn(FeatureVec::new(raw)), &r, i);
        }
        let t = edge.index_telemetry();
        assert_eq!(t.journal_depth, 5);
        assert_eq!(edge.maintain(10), 5);
        let t = edge.index_telemetry();
        assert_eq!((t.journal_depth, t.rebuilds, t.snapshot_len), (0, 1, 5));
        let reg = MetricsRegistry::new();
        edge.publish_metrics(&reg);
        assert_eq!(reg.counter("index.rebuild"), 1);
        assert_eq!(reg.gauge("index.snapshot_len"), 5);
        assert!(!edge.index_family().is_empty());
    }

    #[test]
    fn exact_path_and_contains() {
        let edge = svc();
        let digest = Digest::of(b"model 9");
        let d = FeatureDescriptor::ModelHash(digest);
        assert!(!edge.exact_contains(&digest, 0));
        let task = TaskRequest::RenderLoad {
            model_id: 9,
            size_bytes: 100,
        };
        match edge.handle_query(&d, Some(&task), 0) {
            EdgeReply::Forward(t) => assert_eq!(t, task),
            other => panic!("expected Forward, got {other:?}"),
        }
        let r = TaskResult::Model(bytes::Bytes::from(vec![0u8; 100]));
        edge.insert(&d, &r, 0);
        assert!(edge.exact_contains(&digest, 1));
        assert!(matches!(
            edge.handle_query(&d, Some(&task), 1),
            EdgeReply::Hit(TaskResult::Model(_))
        ));
        assert_eq!(edge.exact_lookup(&digest, 2), Some(r));
        assert!((edge.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_queries_share_one_service() {
        let edge = std::sync::Arc::new(svc());
        let digest = Digest::of(b"pano 1");
        edge.insert(
            &FeatureDescriptor::PanoramaHash(digest),
            &TaskResult::Panorama(bytes::Bytes::from(vec![1u8; 64])),
            0,
        );
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let e = std::sync::Arc::clone(&edge);
                std::thread::spawn(move || {
                    matches!(
                        e.handle_query(&FeatureDescriptor::PanoramaHash(digest), None, 1),
                        EdgeReply::Hit(_)
                    )
                })
            })
            .collect();
        assert!(handles.into_iter().all(|h| h.join().unwrap()));
        assert_eq!(edge.exact_metrics().hits, 8);
    }

    #[test]
    #[should_panic(expected = "does not match result kind")]
    fn mismatched_insert_panics() {
        let edge = svc();
        let d = FeatureDescriptor::Dnn(FeatureVec::new(vec![0.0; 32]));
        edge.insert(&d, &TaskResult::Model(bytes::Bytes::new()), 0);
    }
}

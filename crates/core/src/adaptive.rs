//! Online threshold adaptation via shadow verification.
//!
//! The similarity threshold is CoIC's riskiest constant: too tight wastes
//! hits, too loose serves wrong labels — and the right value drifts with
//! the scene (lighting, object mix, viewpoint spread). This module closes
//! the loop: a deterministic sample of cache *hits* is also sent to the
//! cloud ("shadow verification" — the user already has their answer, so
//! the check costs bandwidth but no latency), the measured hit accuracy is
//! compared against a target, and the threshold is nudged multiplicatively
//! (AIMD-style: gentle widening, sharp tightening).

use serde::{Deserialize, Serialize};

/// Controller configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Fraction of hits to shadow-verify (deterministic stride sampling).
    pub shadow_rate: f64,
    /// Hit-accuracy target the controller defends.
    pub target_accuracy: f64,
    /// Verifications per adjustment window.
    pub window: usize,
    /// Multiplicative widening when accuracy is comfortably above target.
    pub widen: f32,
    /// Multiplicative tightening when accuracy falls below target.
    pub tighten: f32,
    /// Threshold bounds.
    pub min_threshold: f32,
    /// Upper threshold bound.
    pub max_threshold: f32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            shadow_rate: 0.2,
            target_accuracy: 0.95,
            window: 20,
            widen: 1.06,
            tighten: 0.85,
            min_threshold: 0.05,
            max_threshold: 1.5,
        }
    }
}

/// The threshold controller. Owns no cache — callers ask
/// [`AdaptiveThreshold::should_shadow`] on each hit, report outcomes with
/// [`AdaptiveThreshold::record`], and read the current threshold back.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    cfg: AdaptiveConfig,
    threshold: f32,
    /// Stride-sampling accumulator (deterministic, evenly spaced).
    acc: f64,
    /// Verification outcomes in the current window.
    correct: u32,
    seen: u32,
    /// Totals for reporting.
    total_verified: u64,
    total_correct: u64,
    adjustments: u64,
}

impl AdaptiveThreshold {
    /// Create a controller starting from `initial_threshold`.
    ///
    /// # Panics
    /// Panics on nonsensical configuration.
    pub fn new(initial_threshold: f32, cfg: AdaptiveConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.shadow_rate),
            "shadow rate must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.target_accuracy),
            "target accuracy must be in [0,1]"
        );
        assert!(cfg.window > 0, "window must be positive");
        assert!(
            cfg.min_threshold > 0.0 && cfg.max_threshold > cfg.min_threshold,
            "threshold bounds must be ordered and positive"
        );
        assert!(
            cfg.tighten < 1.0 && cfg.widen > 1.0,
            "tighten must shrink and widen must grow"
        );
        AdaptiveThreshold {
            cfg,
            threshold: initial_threshold.clamp(cfg.min_threshold, cfg.max_threshold),
            acc: 0.0,
            correct: 0,
            seen: 0,
            total_verified: 0,
            total_correct: 0,
            adjustments: 0,
        }
    }

    /// The threshold the cache should currently use.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Should this hit be shadow-verified? Deterministic stride sampling:
    /// exactly `shadow_rate` of calls return true, evenly spaced.
    pub fn should_shadow(&mut self) -> bool {
        self.acc += self.cfg.shadow_rate;
        if self.acc >= 1.0 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// Report one verification outcome (`true` = cached label matched the
    /// cloud's). Returns the new threshold if this outcome closed a window
    /// and triggered an adjustment.
    pub fn record(&mut self, correct: bool) -> Option<f32> {
        self.seen += 1;
        self.total_verified += 1;
        if correct {
            self.correct += 1;
            self.total_correct += 1;
        }
        if (self.seen as usize) < self.cfg.window {
            return None;
        }
        let accuracy = self.correct as f64 / self.seen as f64;
        self.seen = 0;
        self.correct = 0;
        self.adjustments += 1;
        let old = self.threshold;
        if accuracy < self.cfg.target_accuracy {
            self.threshold = (self.threshold * self.cfg.tighten)
                .clamp(self.cfg.min_threshold, self.cfg.max_threshold);
        } else if accuracy > self.cfg.target_accuracy + 0.02 {
            self.threshold = (self.threshold * self.cfg.widen)
                .clamp(self.cfg.min_threshold, self.cfg.max_threshold);
        }
        (self.threshold != old).then_some(self.threshold)
    }

    /// Lifetime verification accuracy.
    pub fn measured_accuracy(&self) -> f64 {
        if self.total_verified == 0 {
            return 1.0;
        }
        self.total_correct as f64 / self.total_verified as f64
    }

    /// Total verifications performed.
    pub fn verified(&self) -> u64 {
        self.total_verified
    }

    /// Windows that triggered an adjustment check.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig::default()
    }

    #[test]
    fn stride_sampling_hits_the_rate_exactly() {
        let mut a = AdaptiveThreshold::new(
            0.5,
            AdaptiveConfig {
                shadow_rate: 0.25,
                ..cfg()
            },
        );
        let sampled = (0..1000).filter(|_| a.should_shadow()).count();
        assert_eq!(sampled, 250);
        // And the samples are evenly spaced: every 4th call.
        let mut b = AdaptiveThreshold::new(
            0.5,
            AdaptiveConfig {
                shadow_rate: 0.25,
                ..cfg()
            },
        );
        let pattern: Vec<bool> = (0..8).map(|_| b.should_shadow()).collect();
        assert_eq!(pattern.iter().filter(|&&x| x).count(), 2);
    }

    #[test]
    fn zero_rate_never_samples() {
        let mut a = AdaptiveThreshold::new(
            0.5,
            AdaptiveConfig {
                shadow_rate: 0.0,
                ..cfg()
            },
        );
        assert!((0..100).all(|_| !a.should_shadow()));
    }

    #[test]
    fn low_accuracy_tightens() {
        let mut a = AdaptiveThreshold::new(0.8, cfg());
        // A full window of wrong answers.
        let mut changed = None;
        for _ in 0..20 {
            changed = a.record(false).or(changed);
        }
        let new = changed.expect("window must trigger adjustment");
        assert!(new < 0.8);
        assert_eq!(a.adjustments(), 1);
    }

    #[test]
    fn high_accuracy_widens() {
        let mut a = AdaptiveThreshold::new(0.3, cfg());
        for _ in 0..20 {
            a.record(true);
        }
        assert!(a.threshold() > 0.3);
    }

    #[test]
    fn accuracy_near_target_holds_steady() {
        // 19/20 correct = 0.95 exactly: inside the dead band.
        let mut a = AdaptiveThreshold::new(0.4, cfg());
        for i in 0..20 {
            a.record(i != 0);
        }
        assert_eq!(a.threshold(), 0.4);
    }

    #[test]
    fn threshold_respects_bounds() {
        let mut a = AdaptiveThreshold::new(0.1, cfg());
        for _ in 0..40 {
            for _ in 0..20 {
                a.record(false);
            }
        }
        assert!(a.threshold() >= 0.05);
        let mut b = AdaptiveThreshold::new(1.4, cfg());
        for _ in 0..40 {
            for _ in 0..20 {
                b.record(true);
            }
        }
        assert!(b.threshold() <= 1.5);
    }

    #[test]
    fn measured_accuracy_tracks_reports() {
        let mut a = AdaptiveThreshold::new(0.5, cfg());
        for i in 0..10 {
            a.record(i % 2 == 0);
        }
        assert!((a.measured_accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(a.verified(), 10);
    }

    #[test]
    #[should_panic(expected = "shadow rate")]
    fn bad_rate_rejected() {
        let _ = AdaptiveThreshold::new(
            0.5,
            AdaptiveConfig {
                shadow_rate: 2.0,
                ..cfg()
            },
        );
    }
}

//! The shared canonical-snapshot writer.
//!
//! Every byte-stable text export in the workspace — `coic sim
//! --canonical`, the metrics snapshot, `coic bench --metrics-out` — is
//! emitted through this one writer so they share a single format: lines
//! of space-separated tokens, where a token is either a bare word
//! ([`CanonicalWriter::word`]) or a `key=value` pair
//! ([`CanonicalWriter::field`]). Keys are emitted in the order the caller
//! provides them; callers that need sorted output iterate a `BTreeMap`.

use std::fmt::Display;

/// Builds a canonical text snapshot line by line.
#[derive(Debug, Default)]
pub struct CanonicalWriter {
    out: String,
    line_has_tokens: bool,
}

impl CanonicalWriter {
    /// An empty writer.
    pub fn new() -> CanonicalWriter {
        CanonicalWriter::default()
    }

    fn sep(&mut self) {
        if self.line_has_tokens {
            self.out.push(' ');
        }
        self.line_has_tokens = true;
    }

    /// Append a bare token to the current line.
    pub fn word(&mut self, token: &str) -> &mut Self {
        self.sep();
        self.out.push_str(token);
        self
    }

    /// Append a `key=value` token to the current line.
    pub fn field(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.sep();
        self.out.push_str(key);
        self.out.push('=');
        use std::fmt::Write as _;
        let _ = write!(self.out, "{value}");
        self
    }

    /// Append a `key=value` token with the fixed 6-decimal float format
    /// every canonical float in the workspace uses.
    pub fn float6(&mut self, key: &str, value: f64) -> &mut Self {
        self.field(key, format_args!("{value:.6}"))
    }

    /// Terminate the current line.
    pub fn end_line(&mut self) -> &mut Self {
        self.out.push('\n');
        self.line_has_tokens = false;
        self
    }

    /// The accumulated snapshot.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_fields_share_lines() {
        let mut w = CanonicalWriter::new();
        w.word("latency").float6("mean", 1.5).end_line();
        w.field("completed", 3u64).field("failed", 0u64).end_line();
        assert_eq!(w.finish(), "latency mean=1.500000\ncompleted=3 failed=0\n");
    }

    #[test]
    fn empty_writer_emits_nothing() {
        assert_eq!(CanonicalWriter::new().finish(), "");
    }
}

//! Cross-crate integration tests: the full CoIC pipeline (workload →
//! client → netsim → edge cache → cloud → QoE) on all three task families.

use coic::core::simrun::{compare, run, SimConfig};
use coic::workload::{
    ArenaMultiplayer, Population, Request, RequestKind, SafeDrivingAr, UserId, VrVideo, ZoneId,
    ZoneModel,
};

fn recognition_trace(n: usize, seed: u64) -> Vec<Request> {
    SafeDrivingAr {
        population: Population::colocated(4, ZoneId(0)),
        zones: ZoneModel::new(1, 12, 1.0, 3),
        rate_per_sec: 4.0,
        zipf_s: 0.9,
        total_requests: n,
    }
    .generate(seed)
}

fn cfg4() -> SimConfig {
    SimConfig {
        num_clients: 4,
        ..SimConfig::default()
    }
}

#[test]
fn recognition_pipeline_beats_baseline() {
    let trace = recognition_trace(60, 5);
    let (origin, coic, red) = compare(&trace, &cfg4());
    assert_eq!(origin.completed, 60);
    assert_eq!(coic.completed, 60);
    assert_eq!(origin.edge_hits, 0);
    assert!(coic.edge_hits > 0);
    assert!(red > 20.0, "reduction {red:.1}%");
    // Cached results must not wreck accuracy.
    assert!(coic.accuracy.unwrap() > 0.85);
    assert!(origin.accuracy.unwrap() > 0.9);
}

#[test]
fn render_pipeline_ships_loadable_models() {
    // The simulation is not just numbers: the cloud produced real CMF
    // bytes. Verify via the live service (simrun asserts internally that
    // every request completes with a result).
    let mut reqs = Vec::new();
    for i in 0..12u64 {
        reqs.push(Request {
            user: UserId((i % 3) as u32),
            zone: ZoneId(0),
            at_ns: i * 200_000_000,
            kind: RequestKind::RenderLoad {
                model_id: i % 3,
                size_bytes: 200_000,
            },
        });
    }
    let report = run(
        &reqs,
        &SimConfig {
            num_clients: 3,
            ..SimConfig::default()
        },
    );
    assert_eq!(report.completed, 12);
    assert!(report.edge_hits >= 6, "hits {}", report.edge_hits);
}

#[test]
fn panorama_pipeline_with_coalescing() {
    let trace = VrVideo {
        population: Population::colocated(6, ZoneId(0)),
        frame_interval_ns: 100_000_000,
        max_start_skew_frames: 0,
        user_stagger_ns: 0, // perfectly synchronized: coalescing must cope
        frames_per_user: 10,
    }
    .generate(2);
    let cfg = SimConfig {
        num_clients: 6,
        ..SimConfig::default()
    };
    let (origin, coic, _) = compare(&trace, &cfg);
    assert_eq!(coic.completed, 60);
    // Perfect sync means the requests race, but coalescing keeps the WAN
    // traffic near one fetch per unique frame instead of one per request.
    assert!(
        coic.wan_bytes * 3 < origin.wan_bytes,
        "coalescing should collapse WAN traffic: coic {} vs origin {}",
        coic.wan_bytes,
        origin.wan_bytes
    );
}

#[test]
fn mixed_workload_all_task_families() {
    let mut trace = recognition_trace(20, 9);
    let arena = ArenaMultiplayer {
        population: Population::colocated(4, ZoneId(0)),
        models: vec![(0, 150_000), (1, 150_000)],
        zipf_s: 0.8,
        rate_per_sec: 2.0,
        total_requests: 16,
    }
    .generate(10);
    let vr = VrVideo {
        population: Population::colocated(4, ZoneId(0)),
        frame_interval_ns: 150_000_000,
        max_start_skew_frames: 0,
        user_stagger_ns: 30_000_000,
        frames_per_user: 4,
    }
    .generate(11);
    trace.extend(arena);
    trace.extend(vr);
    trace.sort_by_key(|r| r.at_ns);
    let report = run(&trace, &cfg4());
    assert_eq!(report.completed, 52);
    // All three families appear in the per-kind breakdown.
    assert!(report.latency_by_kind.contains_key("recognition"));
    assert!(report.latency_by_kind.contains_key("render_load"));
    assert!(report.latency_by_kind.contains_key("panorama"));
}

#[test]
fn determinism_across_identical_runs() {
    let trace = recognition_trace(40, 77);
    let a = run(&trace, &cfg4());
    let b = run(&trace, &cfg4());
    assert_eq!(a.edge_hits, b.edge_hits);
    assert_eq!(a.access_bytes, b.access_bytes);
    assert_eq!(a.wan_bytes, b.wan_bytes);
    assert_eq!(a.latency_ms.values(), b.latency_ms.values());
}

#[test]
fn seed_changes_details_not_structure() {
    let t1 = recognition_trace(40, 1);
    let t2 = recognition_trace(40, 2);
    let a = run(&t1, &cfg4());
    let b = run(&t2, &cfg4());
    assert_eq!(a.completed, b.completed);
    assert_ne!(a.latency_ms.values(), b.latency_ms.values());
}

#[test]
fn open_loop_mode_also_completes() {
    let trace = recognition_trace(30, 3);
    let cfg = SimConfig {
        closed_loop: false,
        ..cfg4()
    };
    let report = run(&trace, &cfg);
    assert_eq!(report.completed, 30);
}

#[test]
fn origin_and_coic_agree_on_results_not_latency() {
    // Accuracy should be statistically similar; latency should not.
    let trace = recognition_trace(60, 13);
    let (origin, coic, _) = compare(&trace, &cfg4());
    let gap = (origin.accuracy.unwrap() - coic.accuracy.unwrap()).abs();
    assert!(gap < 0.15, "accuracy gap {gap}");
    assert!(coic.mean_latency_ms() < origin.mean_latency_ms());
}

#[test]
fn cache_pressure_degrades_gracefully() {
    let trace = recognition_trace(60, 21);
    let mut small = cfg4();
    small.edge.recog_cache_bytes = 64 * 1024; // fits only a couple entries
    let starved = run(&trace, &small);
    let roomy = run(&trace, &cfg4());
    assert_eq!(starved.completed, 60);
    assert!(starved.edge_hits <= roomy.edge_hits);
}

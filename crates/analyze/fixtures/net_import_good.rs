//! Fixture: no sockets here; mentions in prose and strings don't count.
//!
//! The engine feeds bytes in and out through pure calls — std::net never
//! appears in code.

/// Looks like a path but lives in a string: "std::net::TcpStream".
fn describe() -> &'static str {
    "transport lives behind std::net in the netrun crate only"
}

/// A locally named `net` module is not `std::net`.
mod net {
    pub fn frame(bytes: &[u8]) -> usize {
        bytes.len()
    }
}

fn use_it() -> usize {
    let _ = describe();
    net::frame(b"ok")
}

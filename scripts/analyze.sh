#!/usr/bin/env sh
# Run the full static + dynamic analysis pass — the same sequence CI's
# `analyze` job runs:
#
#   1. `coic lint` over the workspace against analyze/rules.toml
#      (sans-IO import bans, wall-clock/nondeterminism bans, unwrap bans,
#      lock-order, #![forbid(unsafe_code)] coverage — DESIGN.md §11);
#   2. the coic-obs unit tests (deterministic registry, histogram
#      bucket boundaries, canonical snapshot ordering — the invariants
#      the determinism jobs build on);
#   3. the mini-loom model checker's self-tests (shims/loom);
#   4. the exhaustive-interleaving model tests for the sharded cache's
#      deferred-touch drain, the snapshot ANN cache's snapshot/journal
#      handoff, and the circuit breaker / single-flight engine structures
#      (the `model-check` feature swaps parking_lot and std atomics for
#      the loom shims).
#
# Usage: scripts/analyze.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> workspace lint (analyze/rules.toml)"
cargo run -q --locked -p coic-analyze -- --root .

echo "==> observability layer (coic-obs) unit tests"
cargo test -q --locked -p coic-obs

echo "==> mini-loom self-tests"
cargo test -q --locked -p loom

echo "==> model check: cache drain + snapshot/journal handoff"
cargo test -q --locked -p coic-cache --features model-check --test model

echo "==> model check: circuit breaker + single-flight"
cargo test -q --locked -p coic-core --features model-check --test model

echo "analysis pass clean"

//! Peer liveness: one circuit breaker per cluster member.

use super::ring::EdgeId;
use crate::engine::{BreakerState, CircuitBreaker};
use std::time::Duration;

/// Liveness view of the cluster, built on PR 1's [`CircuitBreaker`]: a
/// peer whose probes keep failing trips Open and drops out of every probe
/// plan; after the cooldown the breaker half-opens and grants a single
/// rejoin probe, exactly the failover behavior the client↔edge path
/// already has. Each Closed→Open trip and each rejoin back to Closed
/// counts as one ring rebuild (the effective ring changed shape).
pub struct Membership {
    breakers: Vec<CircuitBreaker>,
    me: EdgeId,
    rebuilds: u64,
}

impl Membership {
    /// Track `edges` members from the viewpoint of edge `me`.
    pub fn new(me: EdgeId, edges: u32, threshold: u32, cooldown: Duration) -> Self {
        Membership {
            breakers: (0..edges)
                .map(|_| CircuitBreaker::new(threshold, cooldown))
                .collect(),
            me,
            rebuilds: 0,
        }
    }

    /// May `peer` be probed right now? Consults (and, for a cooled-down
    /// Open breaker, half-opens) its breaker — callers must follow every
    /// granted probe with a [`Membership::record`] so the half-open
    /// single-probe accounting stays balanced.
    pub fn allow_probe(&mut self, peer: EdgeId, now_ns: u64) -> bool {
        peer != self.me
            && self
                .breakers
                .get(peer as usize)
                .is_some_and(|b| b.allow(now_ns))
    }

    /// Hand back a probe grant that will not be used (the caller's batch
    /// resolved before this peer's turn). Keeps the half-open
    /// single-probe accounting balanced without inventing an outcome.
    pub fn cancel_probe(&mut self, peer: EdgeId) {
        if peer == self.me {
            return;
        }
        if let Some(b) = self.breakers.get(peer as usize) {
            b.cancel_probe();
        }
    }

    /// Non-mutating liveness check: is `peer` fully Closed? Used for
    /// replication targets, where a probing half-open peer is not yet a
    /// safe place to put a failover copy.
    pub fn is_closed(&self, peer: EdgeId) -> bool {
        peer != self.me
            && self
                .breakers
                .get(peer as usize)
                .is_some_and(|b| b.state() == BreakerState::Closed)
    }

    /// Breaker state of a peer; `None` when the id is outside the
    /// cluster (self reports Closed).
    pub fn peer_state(&self, peer: EdgeId) -> Option<BreakerState> {
        self.breakers.get(peer as usize).map(|b| b.state())
    }

    /// Record a probe outcome. Returns the breaker's `(from, to)` state
    /// transition when it changed state, `None` otherwise (including for
    /// self and out-of-range ids). The effective ring changed shape —
    /// and a rebuild is counted — when the peer tripped out
    /// (Closed→Open) or rejoined (HalfOpen→Closed); a HalfOpen→Open
    /// re-trip changes nothing the ring already routed around.
    pub fn record(
        &mut self,
        peer: EdgeId,
        ok: bool,
        now_ns: u64,
    ) -> Option<(BreakerState, BreakerState)> {
        if peer == self.me {
            return None;
        }
        let b = self.breakers.get(peer as usize)?;
        let before = b.state();
        b.record(ok, now_ns);
        let after = b.state();
        if before == after {
            return None;
        }
        let tripped = before == BreakerState::Closed && after == BreakerState::Open;
        let rejoined = after == BreakerState::Closed;
        if tripped || rejoined {
            self.rebuilds += 1;
        }
        Some((before, after))
    }

    /// How many times the effective ring changed shape (trips + rejoins).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn failures_trip_a_peer_and_count_a_rebuild() {
        let mut m = Membership::new(0, 3, 2, Duration::from_millis(100));
        assert!(m.allow_probe(1, 0));
        assert!(m.record(1, false, MS).is_none());
        assert!(m.allow_probe(1, 2 * MS));
        assert_eq!(
            m.record(1, false, 3 * MS),
            Some((BreakerState::Closed, BreakerState::Open)),
            "threshold trip rebuilds"
        );
        assert_eq!(m.rebuilds(), 1);
        assert!(!m.allow_probe(1, 4 * MS), "open peer is skipped");
        assert!(!m.is_closed(1));
    }

    #[test]
    fn cooldown_rejoin_counts_a_second_rebuild() {
        let mut m = Membership::new(0, 2, 1, Duration::from_millis(10));
        m.allow_probe(1, 0);
        m.record(1, false, 0);
        assert_eq!(m.rebuilds(), 1);
        // Cooldown passed: half-open grants exactly one probe.
        assert!(m.allow_probe(1, 20 * MS));
        assert!(!m.allow_probe(1, 20 * MS), "single half-open probe");
        assert_eq!(
            m.record(1, true, 21 * MS),
            Some((BreakerState::HalfOpen, BreakerState::Closed)),
            "rejoin rebuilds"
        );
        assert_eq!(m.rebuilds(), 2);
        assert!(m.is_closed(1));
    }

    #[test]
    fn cancelled_grant_leaves_the_rejoin_probe_available() {
        let mut m = Membership::new(0, 2, 1, Duration::from_millis(10));
        m.allow_probe(1, 0);
        m.record(1, false, 0);
        // Half-open slot granted, then the caller resolves early without
        // probing: the grant must come back so the peer can still rejoin.
        assert!(m.allow_probe(1, 20 * MS));
        m.cancel_probe(1);
        assert!(m.allow_probe(1, 21 * MS), "grant reissued after cancel");
        assert!(
            m.record(1, true, 22 * MS).is_some(),
            "rejoin still possible"
        );
        assert!(m.is_closed(1));
    }

    #[test]
    fn out_of_range_peer_is_harmless() {
        let mut m = Membership::new(0, 2, 1, Duration::from_millis(10));
        assert!(!m.allow_probe(7, 0));
        assert!(!m.is_closed(7));
        assert_eq!(m.peer_state(7), None);
        assert!(m.record(7, false, 0).is_none());
        m.cancel_probe(7);
        assert_eq!(m.rebuilds(), 0);
    }

    #[test]
    fn self_is_never_probed() {
        let mut m = Membership::new(1, 3, 1, Duration::from_millis(10));
        assert!(!m.allow_probe(1, 0));
        assert!(!m.is_closed(1));
        assert!(m.record(1, false, 0).is_none());
        assert_eq!(m.rebuilds(), 0);
    }
}

//! Protocol-conformance: a semantic pass over the wire-protocol file.
//!
//! The `Msg` enum, its `tag()` map, `decode()`'s tag match, and the
//! encode-side functions are four hand-maintained views of the same wire
//! contract; tags 13–15 were appended by hand in later PRs and a single
//! typo there is a silent cross-version corruption bug. This pass parses
//! all four from tokens and checks:
//!
//! * every variant is assigned a tag, tags are unique, and the tag space
//!   is dense (`0..n` with no gaps — a gap means a reserved value nobody
//!   remembers);
//! * every `tag()` entry has a `decode()` arm constructing the *same*
//!   variant, and decode has no arms for unknown tags;
//! * every variant appears in each `require-in` function (`encode`,
//!   `encoded_len`, …) — a new variant that misses one of them would
//!   otherwise only fail at runtime.
//!
//! Anything the parser cannot recognise (no enum, no tag fn, an arm
//! without a constructed variant) is itself a loud finding, never a
//! silent skip.

use std::collections::BTreeMap;

use crate::checks::{fn_spans, is_ident};
use crate::lexer::Token;
use crate::rules::Rule;
use crate::Finding;

/// A parsed enum variant: name plus declaration line.
struct Variant {
    name: String,
    line: u32,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn protocol_conformance(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    enum_name: &str,
    tag_fn: &str,
    decode_fn: &str,
    require_in: &[String],
    out: &mut Vec<Finding>,
) {
    let push = |out: &mut Vec<Finding>, line: u32, message: String| {
        out.push(Finding {
            file: rel_path.to_string(),
            line,
            rule: rule.id.clone(),
            message,
        });
    };

    let Some(variants) = enum_variants(tokens, enum_name) else {
        push(
            out,
            1,
            format!("enum `{enum_name}` not found: {}", rule.reason),
        );
        return;
    };
    let spans = fn_spans(tokens);
    let body_of = |name: &str| -> Vec<(usize, usize)> {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| (s.body, s.end))
            .collect()
    };

    // --- tag() map: variant -> tag ---------------------------------------
    let tag_bodies = body_of(tag_fn);
    if tag_bodies.is_empty() {
        push(out, 1, format!("fn `{tag_fn}` not found: {}", rule.reason));
        return;
    }
    let mut tags: BTreeMap<String, (u64, u32)> = BTreeMap::new();
    for &(body, end) in &tag_bodies {
        for (variant, tag, line) in tag_arms(tokens, enum_name, body, end) {
            if let Some(&(prev, _)) = tags.get(&variant) {
                if prev != tag {
                    push(
                        out,
                        line,
                        format!("variant `{variant}` mapped to both tag {prev} and tag {tag}"),
                    );
                }
            } else {
                tags.insert(variant, (tag, line));
            }
        }
    }
    for v in &variants {
        if !tags.contains_key(&v.name) {
            push(
                out,
                v.line,
                format!("variant `{}` has no arm in fn `{tag_fn}`", v.name),
            );
        }
    }
    // Unique + dense.
    let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (variant, (tag, _)) in &tags {
        by_tag.entry(*tag).or_default().push(variant);
    }
    for (tag, vs) in &by_tag {
        if vs.len() > 1 {
            let line = tags[vs[0]].1;
            push(
                out,
                line,
                format!(
                    "wire tag {tag} assigned to multiple variants: {}",
                    vs.join(", ")
                ),
            );
        }
    }
    let expect_dense: Vec<u64> = (0..by_tag.len() as u64).collect();
    let actual: Vec<u64> = by_tag.keys().copied().collect();
    if actual != expect_dense {
        let line = tag_bodies
            .first()
            .and_then(|&(b, _)| tokens.get(b))
            .map_or(1, |t| t.line);
        push(
            out,
            line,
            format!(
                "wire tags are not dense 0..{}: got {actual:?}",
                by_tag.len()
            ),
        );
    }

    // --- decode() arms: tag -> variant ------------------------------------
    let decode_bodies = body_of(decode_fn);
    if decode_bodies.is_empty() {
        push(
            out,
            1,
            format!("fn `{decode_fn}` not found: {}", rule.reason),
        );
        return;
    }
    let mut decode: BTreeMap<u64, (String, u32)> = BTreeMap::new();
    for &(body, end) in &decode_bodies {
        for (tag, variant, line) in decode_arms(tokens, enum_name, body, end, out, rel_path, rule) {
            decode.entry(tag).or_insert((variant, line));
        }
    }
    for (variant, &(tag, line)) in &tags {
        match decode.get(&tag) {
            None => push(
                out,
                line,
                format!("tag {tag} (`{variant}`) has no arm in fn `{decode_fn}`"),
            ),
            Some((decoded, dline)) if decoded != variant => push(
                out,
                *dline,
                format!(
                    "fn `{decode_fn}` arm for tag {tag} constructs `{decoded}` \
                     but fn `{tag_fn}` assigns that tag to `{variant}`"
                ),
            ),
            Some(_) => {}
        }
    }
    for (tag, (variant, line)) in &decode {
        if !by_tag.contains_key(tag) {
            push(
                out,
                *line,
                format!("fn `{decode_fn}` decodes unassigned tag {tag} as `{variant}`"),
            );
        }
    }

    // --- required coverage: every variant in encode/encoded_len/... -------
    for fn_name in require_in {
        let bodies = body_of(fn_name);
        if bodies.is_empty() {
            push(out, 1, format!("fn `{fn_name}` not found: {}", rule.reason));
            continue;
        }
        let mut seen: Vec<&str> = Vec::new();
        for &(body, end) in &bodies {
            let mut i = body;
            while i + 2 < end.min(tokens.len()) {
                if tokens[i].text == enum_name
                    && tokens[i + 1].text == "::"
                    && is_ident(&tokens[i + 2])
                {
                    seen.push(tokens[i + 2].text.as_str());
                }
                i += 1;
            }
        }
        for v in &variants {
            if !seen.contains(&v.name.as_str()) {
                push(
                    out,
                    v.line,
                    format!("variant `{}` is not handled in fn `{fn_name}`", v.name),
                );
            }
        }
    }
}

/// Variant names (with lines) of `enum <name> { ... }`; `None` if the
/// enum is absent.
fn enum_variants(tokens: &[Token], enum_name: &str) -> Option<Vec<Variant>> {
    let mut at = None;
    for i in 0..tokens.len().saturating_sub(1) {
        if tokens[i].text == "enum" && tokens[i + 1].text == enum_name {
            at = Some(i);
            break;
        }
    }
    let start = at?;
    let body = (start..tokens.len()).find(|&i| tokens[i].text == "{")?;
    let mut variants = Vec::new();
    let mut i = body + 1;
    let mut depth = 1usize;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        match t.text.as_str() {
            "}" => {
                depth -= 1;
                i += 1;
            }
            // Attributes on variants: skip to the matching `]`.
            "#" if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") => {
                let mut d = 1usize;
                i += 2;
                while i < tokens.len() && d > 0 {
                    match tokens[i].text.as_str() {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ if is_ident(t) => {
                variants.push(Variant {
                    name: t.text.clone(),
                    line: t.line,
                });
                // Skip the payload/discriminant through the variant's
                // trailing comma at enum-body depth.
                let mut d = 0usize;
                i += 1;
                while i < tokens.len() {
                    match tokens[i].text.as_str() {
                        "{" | "(" | "[" => d += 1,
                        ")" | "]" => d = d.saturating_sub(1),
                        "}" => {
                            if d == 0 {
                                break; // enum body closes
                            }
                            d -= 1;
                        }
                        "," if d == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// `(variant, tag, line)` triples from a `tag()`-style body: arms whose
/// pattern mentions `Enum::Variant` (or-patterns allowed) and whose arm
/// value is a bare integer literal.
fn tag_arms(tokens: &[Token], enum_name: &str, body: usize, end: usize) -> Vec<(String, u64, u32)> {
    let mut out = Vec::new();
    let mut pending: Vec<(String, u32)> = Vec::new();
    let mut i = body;
    let end = end.min(tokens.len());
    while i < end {
        if tokens[i].text == enum_name
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && tokens.get(i + 2).is_some_and(is_ident)
        {
            pending.push((tokens[i + 2].text.clone(), tokens[i + 2].line));
            i += 3;
            continue;
        }
        if tokens[i].text == "=" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(">") {
            if let Some(tag) = tokens.get(i + 2).and_then(|t| t.text.parse::<u64>().ok()) {
                for (variant, line) in pending.drain(..) {
                    out.push((variant, tag, line));
                }
            } else {
                pending.clear();
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// `(tag, variant, line)` triples from a `decode()`-style body: the
/// integer-pattern arms at the top level of the body's outer `match`;
/// the constructed variant is the first `Enum::Variant` before the next
/// such arm. An int arm that constructs nothing is a loud finding.
#[allow(clippy::too_many_arguments)]
fn decode_arms(
    tokens: &[Token],
    enum_name: &str,
    body: usize,
    end: usize,
    findings: &mut Vec<Finding>,
    rel_path: &str,
    rule: &Rule,
) -> Vec<(u64, String, u32)> {
    let end = end.min(tokens.len());
    // The decode body's outer `match`: its top-level integer patterns are
    // the wire-tag arms. Nested matches (optional sub-fields decode with
    // the same `N =>` shape) sit at deeper brace depth and are skipped.
    let mut open = None;
    let mut i = body;
    'find: while i < end {
        if tokens[i].text == "match" {
            let mut d = 0i32;
            let mut j = i + 1;
            while j < end {
                match tokens[j].text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    "{" if d == 0 => {
                        open = Some(j);
                        break 'find;
                    }
                    _ => {}
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    let Some(open) = open else {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: tokens.get(body).map_or(1, |t| t.line),
            rule: rule.id.clone(),
            message: "decode fn body contains no `match`".to_string(),
        });
        return Vec::new();
    };
    let mut arms: Vec<(usize, u64)> = Vec::new();
    let mut close = end;
    let mut d = 0i32;
    let mut i = open + 1;
    while i < end {
        match tokens[i].text.as_str() {
            "{" | "(" | "[" => d += 1,
            ")" | "]" => d -= 1,
            "}" => {
                if d == 0 {
                    close = i;
                    break;
                }
                d -= 1;
            }
            _ => {
                if d == 0
                    && tokens[i].literal.is_none()
                    && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("=")
                    && tokens.get(i + 2).map(|t| t.text.as_str()) == Some(">")
                {
                    if let Ok(tag) = tokens[i].text.parse::<u64>() {
                        arms.push((i, tag));
                    }
                }
            }
        }
        i += 1;
    }
    let mut out = Vec::new();
    for (k, &(at, tag)) in arms.iter().enumerate() {
        let stop = arms.get(k + 1).map_or(close, |&(next, _)| next);
        let mut variant = None;
        let mut i = at + 3;
        while i + 2 < stop {
            if tokens[i].text == enum_name && tokens[i + 1].text == "::" && is_ident(&tokens[i + 2])
            {
                variant = Some((tokens[i + 2].text.clone(), tokens[i + 2].line));
                break;
            }
            i += 1;
        }
        match variant {
            Some((name, line)) => out.push((tag, name, line)),
            None => findings.push(Finding {
                file: rel_path.to_string(),
                line: tokens[at].line,
                rule: rule.id.clone(),
                message: format!("decode arm for tag {tag} constructs no `{enum_name}` variant"),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::lexer::lex;
    use crate::rules::parse_rules;

    const RULES: &str = r#"
[[rule]]
id = "proto"
kind = "protocol-conformance"
enum = "Msg"
require-in = ["encode"]
reason = "r"
paths = ["**"]
"#;

    fn check(code: &str) -> Vec<(u32, String)> {
        let rules = parse_rules(RULES).unwrap();
        let lexed = lex(code);
        let mut out = Vec::new();
        crate::checks::run_rule(&rules[0], "p.rs", &lexed, &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    const GOOD: &str = "\
pub enum Msg {
    Hello { proto: u8 },
    Data(Vec<u8>),
    Bye,
}
impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 0,
            Msg::Data { .. } => 1,
            Msg::Bye => 2,
        }
    }
    fn encode(&self) {
        match self {
            Msg::Hello { .. } | Msg::Data { .. } => {}
            Msg::Bye => {}
        }
    }
    fn decode(tag: u8) -> Result<Msg, E> {
        Ok(match tag {
            0 => Msg::Hello { proto: 1 },
            1 => {
                let v = Vec::new();
                Msg::Data(v)
            }
            2 => Msg::Bye,
            t => return Err(E::BadTag(t)),
        })
    }
}
";

    #[test]
    fn conformant_protocol_is_clean() {
        assert_eq!(check(GOOD), []);
    }

    #[test]
    fn missing_tag_arm_and_encode_coverage_flagged() {
        let code = GOOD.replace("Msg::Bye => 2,", "");
        let got = check(&code);
        assert!(
            got.iter().any(|(_, m)| m.contains("no arm in fn `tag`")),
            "{got:?}"
        );
        let code = GOOD.replace("| Msg::Data { .. } ", "");
        let got = check(&code);
        assert!(
            got.iter()
                .any(|(_, m)| m.contains("not handled in fn `encode`")),
            "{got:?}"
        );
    }

    #[test]
    fn duplicate_and_sparse_tags_flagged() {
        let code = GOOD.replace("Msg::Bye => 2,", "Msg::Bye => 1,");
        let got = check(&code);
        assert!(
            got.iter().any(|(_, m)| m.contains("multiple variants")),
            "{got:?}"
        );
        let code = GOOD
            .replace("Msg::Bye => 2,", "Msg::Bye => 7,")
            .replace("2 => Msg::Bye,", "7 => Msg::Bye,");
        let got = check(&code);
        assert!(got.iter().any(|(_, m)| m.contains("not dense")), "{got:?}");
    }

    #[test]
    fn decode_mismatches_flagged() {
        // Arm decodes the wrong variant for the tag.
        let code = GOOD.replace("2 => Msg::Bye,", "2 => Msg::Hello { proto: 2 },");
        let got = check(&code);
        assert!(
            got.iter().any(|(_, m)| m.contains("constructs `Hello`")),
            "{got:?}"
        );
        // Arm for a tag nobody assigns.
        let code = GOOD.replace("2 => Msg::Bye,", "2 => Msg::Bye,\n9 => Msg::Bye,");
        let got = check(&code);
        assert!(
            got.iter().any(|(_, m)| m.contains("unassigned tag 9")),
            "{got:?}"
        );
        // Missing decode arm entirely.
        let code = GOOD.replace("2 => Msg::Bye,", "");
        let got = check(&code);
        assert!(
            got.iter().any(|(_, m)| m.contains("no arm in fn `decode`")),
            "{got:?}"
        );
    }

    #[test]
    fn nested_match_arms_are_not_decode_arms() {
        // An optional sub-field decodes with its own `0 => / 1 =>` match
        // inside tag 0's block arm — those must not read as wire tags.
        let code = GOOD.replace(
            "0 => Msg::Hello { proto: 1 },",
            "0 => {\n                let p = match flag {\n                    0 => 1,\n                    1 => 2,\n                    t => return Err(E::BadTag(t)),\n                };\n                Msg::Hello { proto: p }\n            }",
        );
        assert_eq!(check(&code), []);
    }

    #[test]
    fn absent_pieces_are_loud() {
        let got = check("fn unrelated() {}");
        assert!(
            got.iter().any(|(_, m)| m.contains("enum `Msg` not found")),
            "{got:?}"
        );
    }
}

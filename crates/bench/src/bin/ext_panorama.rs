//! **Ext D** — panoramic VR streaming through the edge cache.
//!
//! The third task family: co-watching viewers fetch the same panoramic
//! frames; CoIC caches frames by content hash (with miss coalescing for
//! simultaneous requests). Sweeps viewer count and playhead
//! synchronization.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_panorama`

use coic_bench::{base_config, vr_trace};
use coic_core::simrun::compare;
use coic_workload::{Population, VrVideo, ZoneId};

fn main() {
    println!("Ext D — VR panoramic streaming (512×256 frames, 10 fps cadence)\n");

    println!("synchronized viewers (25 ms device stagger, 20 frames each):");
    println!(
        "{:>8} | {:>6} | {:>11} {:>11} | {:>10}",
        "viewers", "hit%", "origin-mean", "coic-mean", "reduction"
    );
    coic_bench::rule(58);
    for viewers in [1u32, 2, 4, 8, 16] {
        let t = vr_trace(viewers, 20, 25, 9);
        let mut cfg = base_config();
        cfg.num_clients = viewers;
        let (origin, coic, red) = compare(&t, &cfg);
        println!(
            "{:>8} | {:>5.1}% | {:>8.1} ms {:>8.1} ms | {:>9.2}%",
            viewers,
            coic.hit_ratio() * 100.0,
            origin.mean_latency_ms(),
            coic.mean_latency_ms(),
            red
        );
    }

    println!("\nplayhead skew (8 viewers; frames shared only when playheads align):");
    println!("{:>10} | {:>6} | {:>10}", "skew", "hit%", "reduction");
    coic_bench::rule(34);
    for skew_frames in [0u64, 5, 20, 100, 500] {
        let t = VrVideo {
            population: Population::colocated(8, ZoneId(0)),
            frame_interval_ns: 100_000_000,
            max_start_skew_frames: skew_frames,
            user_stagger_ns: 25_000_000,
            frames_per_user: 20,
        }
        .generate(9);
        let mut cfg = base_config();
        cfg.num_clients = 8;
        let (_, coic, red) = compare(&t, &cfg);
        println!(
            "{:>7} fr | {:>5.1}% | {:>9.2}%",
            skew_frames,
            coic.hit_ratio() * 100.0,
            red
        );
    }
    println!("\nSynchronized audiences turn N WAN fetches per frame into one;");
    println!("the benefit decays as playheads drift apart.");
}

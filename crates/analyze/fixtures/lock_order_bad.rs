//! Fixture: the same two locks nested in opposite orders — a deadlock
//! in waiting. The graph pass reports the cycle once, anchored at the
//! first witness of its first edge (cache -> touches, sorted order puts
//! this file ahead of the declared edge in rules.toml). Never compiled.

fn insert(shard: &Shard, key: u64) {
    let mut guard = shard.cache.write();
    let mut pending = shard.touches.lock(); // LINT-EXPECT: lock-cycles
    pending.push(key);
    guard.touch(&key);
}

fn drain(shard: &Shard) {
    let pending = shard.touches.lock();
    let mut guard = shard.cache.write();
    for key in pending.iter() {
        guard.touch(key);
    }
}

//! The CoIC wire protocol.
//!
//! One message enum serves both transports: the discrete-event simulator
//! moves `Msg` values directly (charging the encoded size on the links),
//! and the real-TCP deployment ships the binary encoding produced here.
//!
//! Encoding: `magic(1) | version(1) | tag(1) | req_id(8 LE) | payload`.
//! All integers little-endian. Every decode validates magic, version, tag
//! and length so a corrupt or mismatched peer fails loudly.

use crate::descriptor::FeatureDescriptor;
use crate::task::{RecognitionResult, TaskRequest, TaskResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use coic_cache::Digest;
use coic_vision::{FeatureVec, Image};

/// Protocol magic byte.
pub const MAGIC: u8 = 0xC0;
/// Protocol version.
pub const VERSION: u8 = 1;

/// A protocol message.
///
/// # Examples
/// ```
/// use coic_core::Msg;
///
/// let msg = Msg::NeedPayload { req_id: 42 };
/// let bytes = msg.encode();
/// assert_eq!(bytes.len() as u64, msg.encoded_len());
/// assert_eq!(Msg::decode(&bytes).unwrap(), msg);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → edge: "is the result for this descriptor cached?"
    ///
    /// For render/panorama tasks the request itself is tiny, so it rides
    /// along as `hint` and lets the edge forward a miss to the cloud
    /// without another client round trip. Recognition queries carry no
    /// hint — the heavy camera frame is only uploaded when the edge asks
    /// for it with [`Msg::NeedPayload`].
    Query {
        /// Request id, unique per client.
        req_id: u64,
        /// The descriptor extracted on-device.
        descriptor: FeatureDescriptor,
        /// The compact task, when it fits in a descriptor-sized message.
        hint: Option<TaskRequest>,
    },
    /// Edge → client: cache hit, here is the result.
    Hit {
        /// Request id being answered.
        req_id: u64,
        /// The cached result.
        result: TaskResult,
    },
    /// Edge → client: recognition miss — upload the full input.
    NeedPayload {
        /// Request id being answered.
        req_id: u64,
    },
    /// Client → edge: full task after a `NeedPayload`.
    Upload {
        /// Request id.
        req_id: u64,
        /// The complete task.
        task: TaskRequest,
    },
    /// Edge → cloud: execute this task.
    Forward {
        /// Request id (edge-scoped).
        req_id: u64,
        /// The task to execute.
        task: TaskRequest,
    },
    /// Cloud → edge: execution finished.
    CloudReply {
        /// Request id being answered.
        req_id: u64,
        /// The computed result.
        result: TaskResult,
    },
    /// Edge → client: result for a miss path.
    Result {
        /// Request id being answered.
        req_id: u64,
        /// The result (freshly computed and now cached).
        result: TaskResult,
    },
    /// Client → cloud (via edge relay): the origin baseline's full offload.
    BaselineRequest {
        /// Request id.
        req_id: u64,
        /// The complete task.
        task: TaskRequest,
    },
    /// Cloud → client (via edge relay): baseline reply.
    BaselineReply {
        /// Request id being answered.
        req_id: u64,
        /// The computed result.
        result: TaskResult,
    },
    /// Edge → peer edge: "do you have this content?" (exact tasks only).
    PeerQuery {
        /// Request id (home-edge scoped).
        req_id: u64,
        /// Content digest being looked up.
        digest: Digest,
    },
    /// Peer edge → edge: answer to a [`Msg::PeerQuery`].
    PeerReply {
        /// Request id being answered.
        req_id: u64,
        /// The cached result, or `None` on a peer miss.
        result: Option<TaskResult>,
    },
    /// Edge → client: result served by a cooperating peer edge.
    PeerResult {
        /// Request id being answered.
        req_id: u64,
        /// The result fetched from the peer (now cached locally too).
        result: TaskResult,
    },
    /// Edge → client: the edge cannot serve this request right now (its
    /// cloud leg is circuit-broken or it is shutting down). The client
    /// should fall back to the origin path instead of retrying the edge.
    Unavailable {
        /// Request id being refused.
        req_id: u64,
    },
    /// Edge → client: the edge shed this request under overload
    /// (admission queue full, aged out, or brownout shedding). Unlike
    /// [`Msg::Unavailable`] the refusal is load-dependent and transient:
    /// the client should route this request to the cloud (or wait at
    /// least `retry_after_ms` before retrying the edge).
    Overloaded {
        /// Request id being shed.
        req_id: u64,
        /// Server-supplied hint: milliseconds to wait before retrying.
        retry_after_ms: u32,
    },
    /// Edge → peer edge: install this content (cluster replication — a
    /// non-owner placing a cloud-fetched result at its partition owner,
    /// or an owner pushing a hot entry's failover copy to its ring
    /// successor).
    Replicate {
        /// Request id (sender-scoped).
        req_id: u64,
        /// Cluster replication token: receivers install the entry only
        /// when this matches their own cluster's token, so a connection
        /// that merely reaches the edge port cannot poison the cache.
        token: u64,
        /// Content digest of the entry.
        digest: Digest,
        /// The result to install.
        result: TaskResult,
    },
    /// Peer edge → edge: a [`Msg::Replicate`] was installed. Exists so
    /// replication pushes are a normal request/reply exchange on the live
    /// framed transport (a handler that stays silent closes the
    /// connection).
    ReplicateAck {
        /// Request id being acknowledged.
        req_id: u64,
    },
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Buffer too short.
    Truncated,
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Version mismatch.
    BadVersion(u8),
    /// Unknown message/desc/task/result tag.
    BadTag(u8),
    /// A length field exceeded sanity limits.
    TooLarge(u64),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::BadMagic(b) => write!(f, "bad magic {b:#04x}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported version {v}"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtoError::TooLarge(n) => write!(f, "length {n} exceeds limit"),
        }
    }
}

impl std::error::Error for ProtoError {}

const MAX_BLOB: u64 = 256 * 1024 * 1024;

fn need(buf: &impl Buf, n: usize) -> Result<(), ProtoError> {
    if buf.remaining() < n {
        Err(ProtoError::Truncated)
    } else {
        Ok(())
    }
}

fn put_descriptor(buf: &mut BytesMut, d: &FeatureDescriptor) {
    match d {
        FeatureDescriptor::Dnn(v) => {
            buf.put_u8(0);
            buf.put_u32_le(v.dim() as u32);
            for &x in v.as_slice() {
                buf.put_f32_le(x);
            }
        }
        FeatureDescriptor::ModelHash(h) => {
            buf.put_u8(1);
            buf.put_slice(h.as_bytes());
        }
        FeatureDescriptor::PanoramaHash(h) => {
            buf.put_u8(2);
            buf.put_slice(h.as_bytes());
        }
    }
}

fn get_descriptor(buf: &mut &[u8]) -> Result<FeatureDescriptor, ProtoError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as u64;
            if n > 1_000_000 {
                return Err(ProtoError::TooLarge(n));
            }
            need(buf, n as usize * 4)?;
            let mut v = Vec::with_capacity(n as usize);
            for _ in 0..n {
                v.push(buf.get_f32_le());
            }
            Ok(FeatureDescriptor::Dnn(FeatureVec::new(v)))
        }
        t @ (1 | 2) => {
            need(buf, 32)?;
            let mut h = [0u8; 32];
            buf.copy_to_slice(&mut h);
            let d = Digest(h);
            Ok(if t == 1 {
                FeatureDescriptor::ModelHash(d)
            } else {
                FeatureDescriptor::PanoramaHash(d)
            })
        }
        t => Err(ProtoError::BadTag(t)),
    }
}

fn put_task(buf: &mut BytesMut, t: &TaskRequest) {
    match t {
        TaskRequest::Recognition { image } => {
            buf.put_u8(0);
            buf.put_u32_le(image.width());
            buf.put_u32_le(image.height());
            buf.put_slice(image.pixels());
        }
        TaskRequest::RenderLoad {
            model_id,
            size_bytes,
        } => {
            buf.put_u8(1);
            buf.put_u64_le(*model_id);
            buf.put_u64_le(*size_bytes);
        }
        TaskRequest::Panorama { frame_id } => {
            buf.put_u8(2);
            buf.put_u64_le(*frame_id);
        }
    }
}

fn get_task(buf: &mut &[u8]) -> Result<TaskRequest, ProtoError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => {
            need(buf, 8)?;
            let w = buf.get_u32_le();
            let h = buf.get_u32_le();
            let n = w as u64 * h as u64;
            if n == 0 || n > MAX_BLOB {
                return Err(ProtoError::TooLarge(n));
            }
            need(buf, n as usize)?;
            let mut pixels = vec![0u8; n as usize];
            buf.copy_to_slice(&mut pixels);
            Ok(TaskRequest::Recognition {
                image: Image::from_raw(w, h, pixels),
            })
        }
        1 => {
            need(buf, 16)?;
            Ok(TaskRequest::RenderLoad {
                model_id: buf.get_u64_le(),
                size_bytes: buf.get_u64_le(),
            })
        }
        2 => {
            need(buf, 8)?;
            Ok(TaskRequest::Panorama {
                frame_id: buf.get_u64_le(),
            })
        }
        t => Err(ProtoError::BadTag(t)),
    }
}

fn put_result(buf: &mut BytesMut, r: &TaskResult) {
    match r {
        TaskResult::Recognition(rr) => {
            buf.put_u8(0);
            buf.put_u32_le(rr.label);
            buf.put_f32_le(rr.distance);
        }
        TaskResult::Model(b) => {
            buf.put_u8(1);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        TaskResult::Panorama(b) => {
            buf.put_u8(2);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

fn get_result(buf: &mut &[u8]) -> Result<TaskResult, ProtoError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => {
            need(buf, 8)?;
            Ok(TaskResult::Recognition(RecognitionResult {
                label: buf.get_u32_le(),
                distance: buf.get_f32_le(),
            }))
        }
        t @ (1 | 2) => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as u64;
            if n > MAX_BLOB {
                return Err(ProtoError::TooLarge(n));
            }
            need(buf, n as usize)?;
            let b = Bytes::copy_from_slice(&buf[..n as usize]);
            buf.advance(n as usize);
            Ok(if t == 1 {
                TaskResult::Model(b)
            } else {
                TaskResult::Panorama(b)
            })
        }
        t => Err(ProtoError::BadTag(t)),
    }
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Query { .. } => 0,
            Msg::Hit { .. } => 1,
            Msg::NeedPayload { .. } => 2,
            Msg::Upload { .. } => 3,
            Msg::Forward { .. } => 4,
            Msg::CloudReply { .. } => 5,
            Msg::Result { .. } => 6,
            Msg::BaselineRequest { .. } => 7,
            Msg::BaselineReply { .. } => 8,
            Msg::PeerQuery { .. } => 9,
            Msg::PeerReply { .. } => 10,
            Msg::PeerResult { .. } => 11,
            Msg::Unavailable { .. } => 12,
            Msg::Overloaded { .. } => 13,
            Msg::Replicate { .. } => 14,
            Msg::ReplicateAck { .. } => 15,
        }
    }

    /// The request id carried by any message.
    pub fn req_id(&self) -> u64 {
        match self {
            Msg::Query { req_id, .. }
            | Msg::Hit { req_id, .. }
            | Msg::NeedPayload { req_id }
            | Msg::Upload { req_id, .. }
            | Msg::Forward { req_id, .. }
            | Msg::CloudReply { req_id, .. }
            | Msg::Result { req_id, .. }
            | Msg::BaselineRequest { req_id, .. }
            | Msg::BaselineReply { req_id, .. }
            | Msg::PeerQuery { req_id, .. }
            | Msg::PeerReply { req_id, .. }
            | Msg::PeerResult { req_id, .. }
            | Msg::Unavailable { req_id }
            | Msg::Overloaded { req_id, .. }
            | Msg::Replicate { req_id, .. }
            | Msg::ReplicateAck { req_id } => *req_id,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.tag());
        buf.put_u64_le(self.req_id());
        match self {
            Msg::Query {
                descriptor, hint, ..
            } => {
                put_descriptor(&mut buf, descriptor);
                match hint {
                    Some(task) => {
                        buf.put_u8(1);
                        put_task(&mut buf, task);
                    }
                    None => buf.put_u8(0),
                }
            }
            Msg::Hit { result, .. }
            | Msg::CloudReply { result, .. }
            | Msg::Result { result, .. }
            | Msg::BaselineReply { result, .. }
            | Msg::PeerResult { result, .. } => put_result(&mut buf, result),
            Msg::PeerQuery { digest, .. } => buf.put_slice(digest.as_bytes()),
            Msg::PeerReply { result, .. } => match result {
                Some(r) => {
                    buf.put_u8(1);
                    put_result(&mut buf, r);
                }
                None => buf.put_u8(0),
            },
            Msg::NeedPayload { .. } | Msg::Unavailable { .. } | Msg::ReplicateAck { .. } => {}
            Msg::Overloaded { retry_after_ms, .. } => buf.put_u32_le(*retry_after_ms),
            Msg::Replicate {
                token,
                digest,
                result,
                ..
            } => {
                buf.put_u64_le(*token);
                buf.put_slice(digest.as_bytes());
                put_result(&mut buf, result);
            }
            Msg::Upload { task, .. }
            | Msg::Forward { task, .. }
            | Msg::BaselineRequest { task, .. } => put_task(&mut buf, task),
        }
        buf.freeze()
    }

    /// Length of [`Msg::encode`] without materializing the buffer — what
    /// the simulator charges on links.
    pub fn encoded_len(&self) -> u64 {
        let payload = match self {
            Msg::Query {
                descriptor, hint, ..
            } => {
                let d = 1 + match descriptor {
                    FeatureDescriptor::Dnn(v) => 4 + 4 * v.dim() as u64,
                    _ => 32,
                };
                let h = 1 + match hint {
                    None => 0,
                    Some(TaskRequest::Recognition { image }) => 9 + image.byte_size(),
                    Some(TaskRequest::RenderLoad { .. }) => 17,
                    Some(TaskRequest::Panorama { .. }) => 9,
                };
                d + h
            }
            Msg::Hit { result, .. }
            | Msg::CloudReply { result, .. }
            | Msg::Result { result, .. }
            | Msg::BaselineReply { result, .. }
            | Msg::PeerResult { result, .. } => {
                1 + match result {
                    TaskResult::Recognition(_) => 8,
                    TaskResult::Model(b) | TaskResult::Panorama(b) => 4 + b.len() as u64,
                }
            }
            Msg::PeerQuery { .. } => 32,
            Msg::PeerReply { result, .. } => {
                1 + match result {
                    None => 0,
                    Some(TaskResult::Recognition(_)) => 1 + 8,
                    Some(TaskResult::Model(b)) | Some(TaskResult::Panorama(b)) => {
                        1 + 4 + b.len() as u64
                    }
                }
            }
            Msg::NeedPayload { .. } | Msg::Unavailable { .. } | Msg::ReplicateAck { .. } => 0,
            Msg::Overloaded { .. } => 4,
            Msg::Replicate { result, .. } => {
                8 + 32
                    + 1
                    + match result {
                        TaskResult::Recognition(_) => 8,
                        TaskResult::Model(b) | TaskResult::Panorama(b) => 4 + b.len() as u64,
                    }
            }
            Msg::Upload { task, .. }
            | Msg::Forward { task, .. }
            | Msg::BaselineRequest { task, .. } => {
                1 + match task {
                    TaskRequest::Recognition { image } => 8 + image.byte_size(),
                    TaskRequest::RenderLoad { .. } => 16,
                    TaskRequest::Panorama { .. } => 8,
                }
            }
        };
        11 + payload
    }

    /// Parse wire bytes.
    pub fn decode(data: &[u8]) -> Result<Msg, ProtoError> {
        let mut buf = data;
        need(&buf, 11)?;
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let tag = buf.get_u8();
        let req_id = buf.get_u64_le();
        let msg = match tag {
            0 => {
                let descriptor = get_descriptor(&mut buf)?;
                need(&buf, 1)?;
                let hint = match buf.get_u8() {
                    0 => None,
                    1 => Some(get_task(&mut buf)?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                Msg::Query {
                    req_id,
                    descriptor,
                    hint,
                }
            }
            1 => Msg::Hit {
                req_id,
                result: get_result(&mut buf)?,
            },
            2 => Msg::NeedPayload { req_id },
            3 => Msg::Upload {
                req_id,
                task: get_task(&mut buf)?,
            },
            4 => Msg::Forward {
                req_id,
                task: get_task(&mut buf)?,
            },
            5 => Msg::CloudReply {
                req_id,
                result: get_result(&mut buf)?,
            },
            6 => Msg::Result {
                req_id,
                result: get_result(&mut buf)?,
            },
            7 => Msg::BaselineRequest {
                req_id,
                task: get_task(&mut buf)?,
            },
            8 => Msg::BaselineReply {
                req_id,
                result: get_result(&mut buf)?,
            },
            9 => {
                need(&buf, 32)?;
                let mut h = [0u8; 32];
                buf.copy_to_slice(&mut h);
                Msg::PeerQuery {
                    req_id,
                    digest: Digest(h),
                }
            }
            10 => {
                need(&buf, 1)?;
                let result = match buf.get_u8() {
                    0 => None,
                    1 => Some(get_result(&mut buf)?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                Msg::PeerReply { req_id, result }
            }
            11 => Msg::PeerResult {
                req_id,
                result: get_result(&mut buf)?,
            },
            12 => Msg::Unavailable { req_id },
            13 => {
                need(&buf, 4)?;
                Msg::Overloaded {
                    req_id,
                    retry_after_ms: buf.get_u32_le(),
                }
            }
            14 => {
                need(&buf, 8 + 32)?;
                let token = buf.get_u64_le();
                let mut h = [0u8; 32];
                buf.copy_to_slice(&mut h);
                Msg::Replicate {
                    req_id,
                    token,
                    digest: Digest(h),
                    result: get_result(&mut buf)?,
                }
            }
            15 => Msg::ReplicateAck { req_id },
            t => return Err(ProtoError::BadTag(t)),
        };
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Query {
                req_id: 1,
                descriptor: FeatureDescriptor::Dnn(FeatureVec::new(vec![0.5, -0.25, 1.0])),
                hint: None,
            },
            Msg::Query {
                req_id: 2,
                descriptor: FeatureDescriptor::ModelHash(Digest::of(b"model-7")),
                hint: Some(TaskRequest::RenderLoad {
                    model_id: 7,
                    size_bytes: 123_456,
                }),
            },
            Msg::Query {
                req_id: 3,
                descriptor: FeatureDescriptor::PanoramaHash(Digest::of(b"frame-9")),
                hint: Some(TaskRequest::Panorama { frame_id: 9 }),
            },
            Msg::Hit {
                req_id: 4,
                result: TaskResult::Recognition(RecognitionResult {
                    label: 42,
                    distance: 0.125,
                }),
            },
            Msg::NeedPayload { req_id: 5 },
            Msg::Upload {
                req_id: 6,
                task: TaskRequest::Recognition {
                    image: Image::from_fn(8, 8, |x, y| (x * 8 + y) as u8),
                },
            },
            Msg::Forward {
                req_id: 7,
                task: TaskRequest::RenderLoad {
                    model_id: 99,
                    size_bytes: 1_000_000,
                },
            },
            Msg::CloudReply {
                req_id: 8,
                result: TaskResult::Model(Bytes::from(vec![1, 2, 3, 4])),
            },
            Msg::Result {
                req_id: 9,
                result: TaskResult::Panorama(Bytes::from(vec![9; 100])),
            },
            Msg::BaselineRequest {
                req_id: 10,
                task: TaskRequest::Panorama { frame_id: 77 },
            },
            Msg::BaselineReply {
                req_id: 11,
                result: TaskResult::Recognition(RecognitionResult {
                    label: 0,
                    distance: 0.0,
                }),
            },
            Msg::PeerQuery {
                req_id: 12,
                digest: Digest::of(b"peer-content"),
            },
            Msg::PeerReply {
                req_id: 13,
                result: Some(TaskResult::Model(Bytes::from(vec![5, 6, 7]))),
            },
            Msg::PeerReply {
                req_id: 14,
                result: None,
            },
            Msg::PeerResult {
                req_id: 15,
                result: TaskResult::Panorama(Bytes::from(vec![8; 20])),
            },
            Msg::Unavailable { req_id: 16 },
            Msg::Overloaded {
                req_id: 17,
                retry_after_ms: 250,
            },
            Msg::Replicate {
                req_id: 18,
                token: 0xC0FF_EE00_DEAD_BEEF,
                digest: Digest::of(b"replicated-content"),
                result: TaskResult::Model(Bytes::from(vec![11, 22, 33])),
            },
            Msg::ReplicateAck { req_id: 19 },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for msg in samples() {
            let bytes = msg.encode();
            let back = Msg::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn encoded_len_matches_encoding() {
        for msg in samples() {
            assert_eq!(
                msg.encode().len() as u64,
                msg.encoded_len(),
                "mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn req_id_preserved() {
        for (i, msg) in samples().iter().enumerate() {
            assert_eq!(msg.req_id(), i as u64 + 1);
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        for msg in samples() {
            let bytes = msg.encode();
            for keep in 0..bytes.len() {
                match Msg::decode(&bytes[..keep]) {
                    Err(_) => {}
                    Ok(m) => panic!("decoded {m:?} from {keep}/{} bytes", bytes.len()),
                }
            }
        }
    }

    #[test]
    fn bad_magic_version_tag() {
        let good = Msg::NeedPayload { req_id: 1 }.encode();
        let mut bad = good.to_vec();
        bad[0] = 0xFF;
        assert_eq!(Msg::decode(&bad), Err(ProtoError::BadMagic(0xFF)));
        let mut bad = good.to_vec();
        bad[1] = 9;
        assert_eq!(Msg::decode(&bad), Err(ProtoError::BadVersion(9)));
        let mut bad = good.to_vec();
        bad[2] = 99;
        assert_eq!(Msg::decode(&bad), Err(ProtoError::BadTag(99)));
    }

    #[test]
    fn absurd_lengths_rejected() {
        // Hand-craft a Query with a descriptor length field of 2^31.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0); // Query
        buf.put_u64_le(1);
        buf.put_u8(0); // Dnn descriptor
        buf.put_u32_le(u32::MAX);
        match Msg::decode(&buf) {
            Err(ProtoError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn descriptor_query_is_small_upload_is_large() {
        // The protocol asymmetry CoIC relies on.
        let img = Image::from_fn(64, 64, |x, _| x as u8);
        let query = Msg::Query {
            req_id: 1,
            descriptor: FeatureDescriptor::Dnn(FeatureVec::new(vec![0.0; 32])),
            hint: None,
        };
        let upload = Msg::Upload {
            req_id: 1,
            task: TaskRequest::Recognition { image: img },
        };
        assert!(query.encoded_len() * 10 < upload.encoded_len());
    }
}

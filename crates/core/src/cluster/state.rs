//! The composed cluster policy one edge runs.

use super::hot::HotTracker;
use super::membership::Membership;
use super::ring::{EdgeId, HashRing};
use super::stats::ClusterStats;
use super::ClusterConfig;
use crate::engine::BreakerState;
use coic_cache::Digest;
use std::time::Duration;

/// The bounded probe plan for one miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbePlan {
    /// Peers to probe, ring-walk order from the owner, at most
    /// `peer_fanout` entries, self and breaker-open peers skipped. Empty
    /// means go straight to the cloud.
    pub peers: Vec<EdgeId>,
    /// True when the digest's owner was skipped as dead and the plan
    /// re-routes to ring successors instead.
    pub failover: bool,
}

/// Sans-IO cluster policy from the viewpoint of one edge: where a digest
/// lives ([`HashRing`]), which peers are alive ([`Membership`]), and what
/// is hot enough to replicate ([`HotTracker`] ×2 — one counting this
/// edge's own miss demand, one counting peer-probe demand on entries it
/// owns). Drivers feed it `now_ns` and realize its plans as messages.
pub struct ClusterState {
    cfg: ClusterConfig,
    me: EdgeId,
    ring: HashRing,
    membership: Membership,
    /// Miss-path requests landing on *this* edge, per digest: crossing
    /// the threshold keeps a local replica of a non-owned entry.
    local_hot: HotTracker,
    /// Peer probes answered from this edge's cache, per digest: crossing
    /// the threshold pushes a failover copy to the ring successor.
    owner_hot: HotTracker,
    stats: ClusterStats,
}

impl ClusterState {
    /// Build the policy for edge `me` of a `num_edges` cluster.
    ///
    /// # Panics
    /// Panics when `me` is out of range or the cluster is empty.
    pub fn new(me: EdgeId, num_edges: u32, cfg: ClusterConfig) -> Self {
        assert!(me < num_edges, "edge {me} outside cluster of {num_edges}");
        ClusterState {
            me,
            ring: HashRing::new(num_edges, cfg.vnodes),
            membership: Membership::new(
                me,
                num_edges,
                cfg.breaker_threshold,
                Duration::from_millis(cfg.breaker_cooldown_ms),
            ),
            local_hot: HotTracker::new(cfg.replicate_hot),
            owner_hot: HotTracker::new(cfg.replicate_hot),
            stats: ClusterStats::default(),
            cfg,
        }
    }

    /// This edge's id.
    pub fn me(&self) -> EdgeId {
        self.me
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The ring (owner/walk queries for tests and tools).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The edge owning `d`'s partition.
    pub fn owner(&self, d: &Digest) -> EdgeId {
        self.ring.owner(d)
    }

    /// Does this edge own `d`?
    pub fn is_owner(&self, d: &Digest) -> bool {
        self.owner(d) == self.me
    }

    /// Shareable counter handle.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Breaker state of a peer as seen from this edge; `None` when the
    /// id is outside the cluster.
    pub fn peer_state(&self, peer: EdgeId) -> Option<BreakerState> {
        self.membership.peer_state(peer)
    }

    /// Build the probe plan for a miss on `d`: walk the ring from the
    /// owner, skip self and peers whose breaker refuses, stop at
    /// `peer_fanout`. Every planned peer consumes a breaker probe grant,
    /// so the driver must settle each one: report the probe's outcome via
    /// [`ClusterState::record_probe`], or hand an unused grant back via
    /// [`ClusterState::cancel_probe`] when the plan resolves before that
    /// peer's probe is sent. The driver also counts
    /// [`ClusterStats::count_probe`] at send time, so the `cluster.
    /// peer_probe` counter reflects probes actually sent, not planned.
    pub fn plan(&mut self, d: &Digest, now_ns: u64) -> ProbePlan {
        let owner = self.ring.owner(d);
        let mut peers = Vec::new();
        for e in self.ring.walk(d) {
            if peers.len() as u32 >= self.cfg.peer_fanout {
                break;
            }
            if e == self.me {
                continue;
            }
            // lint: allow(settle-probe-grants, every grant is returned in ProbePlan.peers and the driver settles each via record_probe or cancel_probe — the contract this fn's docs pin)
            if self.membership.allow_probe(e, now_ns) {
                peers.push(e);
            }
        }
        let failover = owner != self.me && !peers.is_empty() && !peers.contains(&owner);
        if failover {
            self.stats.count_failover();
        }
        ProbePlan { peers, failover }
    }

    /// Hand back the probe grant of a planned peer that will not be
    /// probed after all (an earlier peer in the plan already answered).
    /// Without this a half-open peer's single rejoin probe is consumed
    /// by a probe that never happens and the peer can never rejoin.
    pub fn cancel_probe(&mut self, peer: EdgeId) {
        self.membership.cancel_probe(peer);
    }

    /// Report a probe outcome (reply received = `ok`, even a content
    /// miss; timeout / connect failure = `!ok`). Feeds the peer's
    /// breaker, counts a ring rebuild on trip or rejoin, and returns the
    /// breaker's `(from, to)` transition when its state changed so the
    /// driver can emit a `cluster.peer_state` trace event.
    pub fn record_probe(
        &mut self,
        peer: EdgeId,
        ok: bool,
        now_ns: u64,
    ) -> Option<(BreakerState, BreakerState)> {
        let transition = self.membership.record(peer, ok, now_ns);
        if let Some((from, to)) = transition {
            // Trip and rejoin reshape the effective ring; a HalfOpen→Open
            // re-trip routes exactly as before.
            if to == BreakerState::Closed || from == BreakerState::Closed {
                self.stats.count_ring_rebuild();
            }
        }
        transition
    }

    /// Count a miss-path request landing on this edge for `d`. Returns
    /// `true` when the demand just crossed the hot threshold — keep a
    /// local replica of the next result even though we do not own `d`.
    pub fn note_local_request(&mut self, d: &Digest) -> bool {
        self.local_hot.note(d)
    }

    /// Has this edge's own demand for `d` crossed the hot threshold?
    pub fn is_locally_hot(&self, d: &Digest) -> bool {
        self.local_hot.is_hot(d)
    }

    /// Count a peer probe answered from this edge's cache. Returns `true`
    /// when cluster-wide demand for this owned entry just crossed the hot
    /// threshold — push a failover copy to the ring successor.
    pub fn note_owner_request(&mut self, d: &Digest) -> bool {
        self.owner_hot.note(d)
    }

    /// Where a non-owner should push the copy it fetched from the cloud:
    /// the owner, when it is alive. `None` when this edge *is* the owner
    /// or the owner is not safely reachable.
    pub fn placement_target(&self, d: &Digest) -> Option<EdgeId> {
        let owner = self.ring.owner(d);
        (owner != self.me && self.membership.is_closed(owner)).then_some(owner)
    }

    /// Where an owner should push a hot entry's failover copy: the first
    /// alive edge after it on `d`'s ring walk. `None` when no peer is
    /// safely reachable.
    pub fn successor_target(&self, d: &Digest) -> Option<EdgeId> {
        self.ring
            .walk(d)
            .into_iter()
            .find(|&e| e != self.me && self.membership.is_closed(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dig(i: u64) -> Digest {
        Digest::of(&i.to_le_bytes())
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            peer_fanout: 2,
            replicate_hot: 2,
            breaker_threshold: 1,
            ..ClusterConfig::default()
        }
    }

    /// A digest owned by neither edge 0 nor the walk's second entry being 0.
    fn owned_elsewhere(cl: &ClusterState) -> Digest {
        (0..)
            .map(dig)
            .find(|d| cl.owner(d) != cl.me())
            .expect("some digest is owned elsewhere")
    }

    #[test]
    fn plan_probes_owner_first_and_respects_fanout() {
        let mut cl = ClusterState::new(0, 8, cfg());
        let d = owned_elsewhere(&cl);
        let plan = cl.plan(&d, 0);
        assert_eq!(plan.peers.len(), 2, "fanout bound");
        assert_eq!(plan.peers[0], cl.owner(&d), "owner probed first");
        assert!(!plan.failover);
        assert_eq!(
            cl.stats().snapshot().peer_probes,
            0,
            "probes are counted by the driver at send time, not planned"
        );
    }

    #[test]
    fn dead_owner_reroutes_to_ring_successor() {
        let mut cl = ClusterState::new(0, 4, cfg());
        let d = owned_elsewhere(&cl);
        let owner = cl.owner(&d);
        let walk = cl.ring().walk(&d);
        cl.record_probe(owner, false, 0); // threshold 1: trips immediately
        assert_eq!(cl.stats().snapshot().ring_rebuilds, 1);
        let plan = cl.plan(&d, 1_000_000);
        assert!(plan.failover, "owner skipped as dead");
        assert!(!plan.peers.contains(&owner));
        let successor = walk
            .iter()
            .copied()
            .find(|&e| e != owner && e != cl.me())
            .expect("4-edge walk has a successor");
        assert_eq!(plan.peers[0], successor, "keyspace re-routes in ring order");
        assert_eq!(cl.stats().snapshot().peer_failovers, 1);
    }

    #[test]
    fn plan_excludes_self_and_single_edge_goes_to_cloud() {
        let mut cl = ClusterState::new(0, 1, cfg());
        let plan = cl.plan(&dig(1), 0);
        assert!(plan.peers.is_empty());
        assert!(!plan.failover);
    }

    #[test]
    fn placement_and_successor_targets_track_liveness() {
        let cl0 = ClusterState::new(0, 3, cfg());
        let d = owned_elsewhere(&cl0);
        let owner = cl0.owner(&d);
        assert_eq!(cl0.placement_target(&d), Some(owner));
        // From the owner's own viewpoint there is no placement push…
        let mut at_owner = ClusterState::new(owner, 3, cfg());
        assert_eq!(at_owner.placement_target(&d), None);
        // …and the successor target is the next alive edge on the walk.
        let succ = at_owner.successor_target(&d).expect("3 edges: successor");
        assert_ne!(succ, owner);
        at_owner.record_probe(succ, false, 0);
        let next = at_owner.successor_target(&d);
        assert_ne!(next, Some(succ), "dead successor skipped");
    }

    #[test]
    fn hot_counters_fire_once_per_crossing() {
        let mut cl = ClusterState::new(0, 2, cfg());
        let d = dig(5);
        assert!(!cl.note_local_request(&d));
        assert!(cl.note_local_request(&d), "threshold 2 crossing");
        assert!(!cl.note_local_request(&d));
        assert!(cl.is_locally_hot(&d));
        assert!(!cl.note_owner_request(&d));
        assert!(cl.note_owner_request(&d));
    }

    #[test]
    fn rejoin_after_cooldown_closes_the_breaker() {
        let mut cl = ClusterState::new(0, 2, cfg());
        cl.record_probe(1, false, 0);
        assert_eq!(cl.peer_state(1), Some(BreakerState::Open));
        let after = cl.config().breaker_cooldown_ms * 2 * 1_000_000;
        let plan = cl.plan(&dig(0), after);
        assert_eq!(plan.peers, vec![1], "half-open grants the rejoin probe");
        cl.record_probe(1, true, after + 1);
        assert_eq!(cl.peer_state(1), Some(BreakerState::Closed));
        assert_eq!(cl.stats().snapshot().ring_rebuilds, 2);
    }

    #[test]
    fn cancelled_plan_entry_keeps_the_rejoin_probe_available() {
        let mut cl = ClusterState::new(0, 4, cfg());
        let d = owned_elsewhere(&cl);
        let dead = cl.owner(&d);
        cl.record_probe(dead, false, 0); // threshold 1: trips immediately
        let after = cl.config().breaker_cooldown_ms * 2 * 1_000_000;
        // The plan half-opens `dead` and grants its single rejoin probe,
        // but an earlier peer answers first and the driver never probes
        // it. Cancelling the grant must leave the rejoin path open.
        let plan = cl.plan(&d, after);
        assert!(plan.peers.contains(&dead), "half-open peer is planned");
        cl.cancel_probe(dead);
        let replan = cl.plan(&d, after + 1);
        assert!(
            replan.peers.contains(&dead),
            "rejoin probe still granted after a cancelled plan entry"
        );
        cl.record_probe(dead, true, after + 2);
        assert_eq!(cl.peer_state(dead), Some(BreakerState::Closed));
    }

    #[test]
    fn out_of_range_peer_state_is_none() {
        let cl = ClusterState::new(0, 2, cfg());
        assert_eq!(cl.peer_state(9), None);
    }
}

//! **Ext O** — cross-application sharing.
//!
//! The paper's insight 1 is explicitly *cross-app*: "two safe-driving
//! applications are likely to recognize the same stop sign ... IC tasks
//! across different applications or users are often executed in similar or
//! even redundant way." This experiment runs two distinct applications —
//! a navigation AR app and a tourism AR app, different users, different
//! request patterns, same streetscape — first through **isolated**
//! per-app edge caches, then through one **shared** CoIC cache.
//!
//! Run with: `cargo run --release -p coic-bench --bin ext_crossapp`

use coic_core::simrun::{run, SimConfig};
use coic_workload::{Population, Request, SafeDrivingAr, UserId, ZoneId, ZoneModel};

/// Two apps over the same landmark pool, distinguished by user ids and
/// request rates. `zone` controls which edge serves the app when edges are
/// split per app. User ids stay contiguous (0..3 and 3..6) so the
/// user→client round-robin keeps each client single-app.
fn app_trace(zone: u32, user_base: u32, rate: f64, requests: usize, seed: u64) -> Vec<Request> {
    // Same zone-model seed ⇒ the *same* streetscape for both apps.
    let mut t = SafeDrivingAr {
        population: Population::colocated(3, ZoneId(0)),
        zones: ZoneModel::new(1, 60, 1.0, 5),
        rate_per_sec: rate,
        zipf_s: 0.7,
        total_requests: requests,
    }
    .generate(seed);
    for r in &mut t {
        r.user = UserId(r.user.0 + user_base);
        r.zone = ZoneId(zone);
    }
    t
}

fn merge(mut a: Vec<Request>, b: Vec<Request>) -> Vec<Request> {
    a.extend(b);
    a.sort_by_key(|r| r.at_ns);
    a
}

fn main() {
    println!("Ext O — cross-application sharing (two AR apps, same streetscape)\n");

    // App zones decide edge assignment: distinct zones = isolated caches
    // (two edges, no peer lookup — recognition caches never cooperate);
    // same zone = one shared CoIC cache.
    let nav_iso = app_trace(0, 0, 4.0, 90, 81);
    let tour_iso = app_trace(1, 3, 2.0, 90, 82);
    let isolated_trace = merge(nav_iso, tour_iso);

    let nav_sh = app_trace(0, 0, 4.0, 90, 81);
    let tour_sh = app_trace(0, 3, 2.0, 90, 82);
    let shared_trace = merge(nav_sh, tour_sh);

    let isolated = run(
        &isolated_trace,
        &SimConfig {
            num_clients: 6,
            num_edges: 2,
            ..SimConfig::default()
        },
    );
    let shared = run(
        &shared_trace,
        &SimConfig {
            num_clients: 6,
            num_edges: 1,
            ..SimConfig::default()
        },
    );

    println!(
        "{:<22} | {:>6} | {:>10} | {:>8} | {:>9}",
        "deployment", "hit%", "mean-lat", "WAN MB", "accuracy"
    );
    coic_bench::rule(68);
    for (label, report) in [
        ("per-app caches", &isolated),
        ("shared CoIC cache", &shared),
    ] {
        println!(
            "{:<22} | {:>5.1}% | {:>7.1} ms | {:>8.2} | {:>8.1}%",
            label,
            report.hit_ratio() * 100.0,
            report.latency_ms.mean(),
            report.wan_bytes as f64 / 1e6,
            report.accuracy.unwrap_or(0.0) * 100.0
        );
    }
    coic_bench::rule(68);
    let gain = (shared.hit_ratio() - isolated.hit_ratio()) * 100.0;
    println!("cross-app sharing adds {gain:+.1} points of hit ratio: the tourism");
    println!("app rides on recognitions the navigation app already paid for,");
    println!("and vice versa — the paper's \"across different applications\" claim.");
}

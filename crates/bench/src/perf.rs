//! The `coic bench` performance harness.
//!
//! Three layers of measurement, emitted as one canonical `BENCH_edge.json`:
//!
//! 1. **Exact-cache microbenchmarks** — the sharded wrappers
//!    ([`coic_cache::sharded`]) against the single-mutex baseline
//!    ([`coic_cache::concurrent`]) on identical workloads: exact lookups
//!    over ~4 KiB payloads with a Zipf-skewed key stream, plus exact
//!    inserts, each at 1/4/16 threads. Lookups go through each wrapper's
//!    production read path: the mutex wrapper clones the payload under its
//!    lock, the sharded wrapper hands out an `Arc` from a shard read lock
//!    — that asymmetry *is* the design difference being measured.
//! 2. **Approx (descriptor) microbenchmarks** — the snapshot ANN index
//!    ([`coic_cache::snapshot`], `mp-lsh` and `hnsw` families) against the
//!    mutex baseline (one [`ApproxCache`] behind a lock, `linear` and
//!    classic `lsh` indexes), on identical query streams:
//!    `approx_lookup/*` is read-only steady state, `approx_mixed/*`
//!    interleaves one fresh insert every [`INSERT_EVERY`] ops so the write
//!    side — journal appends and the periodic batch rebuild — is paid
//!    inside the timed region.
//! 3. **Loopback edge end-to-end** — a real [`spawn_edge`]/[`spawn_cloud`]
//!    pair with M concurrent [`NetClient`]s re-requesting a shared
//!    panorama pool; per-request wall latencies and the edge's merged
//!    cache hit ratio.
//!
//! Every cell reports p50/p95/p99 per-op nanoseconds, throughput and hit
//! ratio. Two derived ratios are machine-speed-independent (both sides of
//! each run on the same box in the same process) and regression-gated:
//! `speedup_sharded_vs_mutex` (exact lookups at the highest thread count)
//! and `speedup_snapshot_vs_mutex` (the default snapshot family over the
//! mutex LSH baseline). [`check_approx_gate`] additionally enforces the
//! snapshot-index acceptance claim per thread count — see DESIGN.md §14.
//!
//! [`spawn_edge`]: coic_core::netrun::spawn_edge
//! [`spawn_cloud`]: coic_core::netrun::spawn_cloud
//! [`NetClient`]: coic_core::netrun::NetClient

use crate::json::{self, num, obj, s, Json};
use coic_cache::approx::ApproxCache;
use coic_cache::{
    Digest, ExactCache, IndexKind, PolicyKind, ShardedExactCache, SharedApproxCache,
    SharedExactCache, SnapshotApproxCache, DEFAULT_REBUILD_BATCH,
};
use coic_core::compute::ComputeConfig;
use coic_core::content::{ModelLibrary, PanoLibrary};
use coic_core::netrun::{spawn_cloud, spawn_edge_with, NetClient, NetConfig};
use coic_core::services::{ClientConfig, EdgeConfig};
use coic_obs::Telemetry;
use coic_vision::{FeatureVec, ObjectClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Payload size for exact-cache cells: the ballpark of a small 3D model
/// or encoded panorama tile, big enough that cloning under a lock hurts.
const PAYLOAD_BYTES: usize = 4096;

/// Shards used by the sharded cells (the live default).
const BENCH_SHARDS: usize = coic_cache::DEFAULT_SHARDS;

/// One measured cell of the benchmark grid.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label, e.g. `exact_lookup/sharded`.
    pub workload: String,
    /// NN index for approximate cells — `linear`/`lsh` for the mutex
    /// baseline, `mp-lsh`/`hnsw` for the snapshot index — `-` otherwise.
    pub index: String,
    /// Concurrent worker threads (or clients, for the edge cell).
    pub threads: usize,
    /// Total operations measured.
    pub ops: u64,
    /// Median per-op latency, ns.
    pub p50_ns: u64,
    /// 95th percentile per-op latency, ns.
    pub p95_ns: u64,
    /// 99th percentile per-op latency, ns.
    pub p99_ns: u64,
    /// Operations per wall-clock second across all threads.
    pub throughput_ops_per_sec: f64,
    /// Fraction of lookups that hit (1.0 for insert-only cells).
    pub hit_ratio: f64,
}

/// A full benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Schema tag (`coic-bench/v1`).
    pub schema: String,
    /// `git rev-parse --short HEAD`, or `unknown` outside a checkout.
    pub git_rev: String,
    /// Seed every random stream derives from.
    pub seed: u64,
    /// Whether this was a `--quick` run (smaller op counts).
    pub quick: bool,
    /// All measured cells.
    pub results: Vec<CellResult>,
    /// Exact-lookup throughput, sharded over mutex, at the highest thread
    /// count — the regression-gated number.
    pub speedup_sharded_vs_mutex: f64,
    /// Approx-lookup throughput at the highest thread count: the
    /// *default* snapshot ANN family (mp-lsh) over the mutex LSH
    /// baseline. Must stay above 1.0 or the snapshot refactor has lost
    /// its reason to exist.
    pub speedup_snapshot_vs_mutex: f64,
}

/// Thread counts each microbench cell sweeps.
pub const THREAD_STEPS: [usize; 3] = [1, 4, 16];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Repetitions per microbench cell; the best (highest-throughput) one is
/// reported. External noise — scheduler preemption, a neighbouring VM —
/// only ever *subtracts* throughput, so best-of-N converges to the
/// machine's real capability and is far more run-to-run stable than any
/// single repetition.
const CELL_REPEATS: usize = 5;

/// Run `ops_per_thread` timed operations on each of `threads` workers,
/// [`CELL_REPEATS`] times, keeping the best repetition.
/// `op(thread_idx, i)` returns whether the operation counts as a hit.
fn run_cell<F>(
    workload: &str,
    index: &str,
    threads: usize,
    ops_per_thread: u64,
    op: F,
) -> CellResult
where
    F: Fn(usize, u64) -> bool + Sync,
{
    (0..CELL_REPEATS)
        .map(|_| measure_once(workload, index, threads, ops_per_thread, &op))
        .max_by(|a, b| {
            a.throughput_ops_per_sec
                .total_cmp(&b.throughput_ops_per_sec)
        })
        .expect("CELL_REPEATS > 0")
}

/// One timed repetition of a cell (percentiles over all per-op latencies).
fn measure_once<F>(
    workload: &str,
    index: &str,
    threads: usize,
    ops_per_thread: u64,
    op: F,
) -> CellResult
where
    F: Fn(usize, u64) -> bool + Sync,
{
    let started = Instant::now();
    let mut all_samples: Vec<u64> = Vec::with_capacity(threads * ops_per_thread as usize);
    let mut hits = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let op = &op;
                scope.spawn(move || {
                    // Untimed warm-up: fault in pages, warm branch
                    // predictors and the allocator before measuring.
                    for i in 0..(ops_per_thread / 10).min(512) {
                        let _ = op(t, i);
                    }
                    let mut samples = Vec::with_capacity(ops_per_thread as usize);
                    let mut hits = 0u64;
                    for i in 0..ops_per_thread {
                        let t0 = Instant::now();
                        if op(t, i) {
                            hits += 1;
                        }
                        samples.push(t0.elapsed().as_nanos() as u64);
                    }
                    (samples, hits)
                })
            })
            .collect();
        for h in handles {
            let (samples, h_hits) = h.join().expect("bench worker panicked");
            all_samples.extend(samples);
            hits += h_hits;
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    all_samples.sort_unstable();
    let ops = all_samples.len() as u64;
    CellResult {
        workload: workload.to_string(),
        index: index.to_string(),
        threads,
        ops,
        p50_ns: percentile(&all_samples, 0.50),
        p95_ns: percentile(&all_samples, 0.95),
        p99_ns: percentile(&all_samples, 0.99),
        throughput_ops_per_sec: if elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        hit_ratio: if ops == 0 {
            0.0
        } else {
            hits as f64 / ops as f64
        },
    }
}

/// Zipf-flavoured key index in `0..n`: quadratic skew toward low indexes
/// (a cheap stand-in with the property that matters — a hot head and a
/// long tail), deterministic per thread/seed.
fn skewed_index(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.random();
    ((u * u) * n as f64) as usize
}

fn payload(tag: usize) -> Vec<u8> {
    vec![(tag % 251) as u8; PAYLOAD_BYTES]
}

fn key(tag: usize) -> Digest {
    Digest::of(&(tag as u64).to_le_bytes())
}

/// Per-thread Zipf-skewed probe digests, generated *before* the timed
/// region: the measured op must be only the cache call, not the RNG and
/// SHA-256 work of producing the probe. ~10% of probes target absent keys
/// so the miss path is exercised too.
fn probe_streams(seed: u64, threads: usize, ops: u64, n_keys: usize) -> Vec<Vec<Digest>> {
    (0..threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64) << 32));
            (0..ops)
                .map(|_| key(skewed_index(&mut rng, n_keys + n_keys / 8)))
                .collect()
        })
        .collect()
}

/// Exact-lookup cells: mutex baseline vs sharded, byte-identical Zipf key
/// streams for both variants.
fn exact_lookup_cells(quick: bool, seed: u64, results: &mut Vec<CellResult>) {
    let n_keys = if quick { 256 } else { 1024 };
    let ops = if quick { 12_000 } else { 40_000 };
    let capacity = (n_keys * (PAYLOAD_BYTES + 64)) as u64 * 2;

    for &threads in &THREAD_STEPS {
        let probes = probe_streams(seed, threads, ops, n_keys);

        // Mutex baseline: deep clone of the payload under the lock.
        let mutex: SharedExactCache<Vec<u8>> =
            SharedExactCache::new(ExactCache::new(capacity, PolicyKind::Lru, None));
        for i in 0..n_keys {
            mutex.insert(key(i), payload(i), PAYLOAD_BYTES as u64, 0);
        }
        results.push(run_cell("exact_lookup/mutex", "-", threads, ops, |t, i| {
            mutex.lookup(&probes[t][i as usize], 1).is_some()
        }));

        // Sharded: Arc handed out from a shard read lock, no payload copy.
        let sharded: ShardedExactCache<Vec<u8>> =
            ShardedExactCache::new(capacity, PolicyKind::Lru, None, BENCH_SHARDS);
        for i in 0..n_keys {
            sharded.insert(key(i), payload(i), PAYLOAD_BYTES as u64, 0);
        }
        results.push(run_cell(
            "exact_lookup/sharded",
            "-",
            threads,
            ops,
            |t, i| sharded.lookup(&probes[t][i as usize], 1).is_some(),
        ));
    }
}

/// Exact-insert cells: every thread writes its own key range.
fn exact_insert_cells(quick: bool, results: &mut Vec<CellResult>) {
    let ops = if quick { 1_000 } else { 5_000 };
    // Capacity bounded well below the write volume so eviction runs too.
    let capacity = 4 * 1024 * 1024;

    for &threads in &THREAD_STEPS {
        let mutex: SharedExactCache<Vec<u8>> =
            SharedExactCache::new(ExactCache::new(capacity, PolicyKind::Lru, None));
        results.push(run_cell("exact_insert/mutex", "-", threads, ops, |t, i| {
            let tag = t * 1_000_000 + i as usize;
            mutex.insert(key(tag), payload(tag), PAYLOAD_BYTES as u64, i);
            true
        }));

        let sharded: ShardedExactCache<Vec<u8>> =
            ShardedExactCache::new(capacity, PolicyKind::Lru, None, BENCH_SHARDS);
        results.push(run_cell(
            "exact_insert/sharded",
            "-",
            threads,
            ops,
            |t, i| {
                let tag = t * 1_000_000 + i as usize;
                sharded.insert(key(tag), payload(tag), PAYLOAD_BYTES as u64, i);
                true
            },
        ));
    }
}

/// Descriptor vectors modelling dense DNN embeddings: one deterministic
/// unit direction per cluster plus a small single-coordinate jitter
/// standing in for sensor noise between co-located queries. Random unit
/// directions in `dim` dimensions sit ~√2 apart — far outside the hit
/// threshold — while jitter stays well inside it, so cluster identity
/// decides hit/miss exactly. (An earlier 2-hot lattice generator made
/// most pairwise distances tie, which no real embedding space does.)
fn descriptor(dim: usize, cluster: usize, jitter: f32) -> FeatureVec {
    let mut rng = StdRng::seed_from_u64(0xDE5C_0000 ^ cluster as u64);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    for x in &mut v {
        *x /= norm;
    }
    v[cluster % dim] += jitter;
    FeatureVec::new(v)
}

/// Per-thread query descriptors, generated before the timed region (same
/// rationale as [`probe_streams`]).
fn query_streams(
    seed: u64,
    threads: usize,
    ops: u64,
    dim: usize,
    n_desc: usize,
) -> Vec<Vec<FeatureVec>> {
    (0..threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64) << 32));
            (0..ops)
                .map(|_| {
                    let cluster = skewed_index(&mut rng, n_desc + n_desc / 8);
                    descriptor(dim, cluster, rng.random_range(-0.05f32..0.05))
                })
                .collect()
        })
        .collect()
}

/// Index kinds the mutex baseline cells run: the linear scan (the hit
/// ratio ground truth) and the classic incremental LSH (the strongest
/// pre-snapshot production path).
const MUTEX_INDEXES: [IndexKind; 2] = [IndexKind::Linear, IndexKind::Lsh { tables: 8, bits: 8 }];

/// ANN families the snapshot cells run.
const SNAPSHOT_INDEXES: [IndexKind; 2] = [IndexKind::DEFAULT_MPLSH, IndexKind::DEFAULT_HNSW];

/// The snapshot family held to the beats-mutex perf gate: the production
/// default (what `EdgeConfig` selects when `--index` names a snapshot
/// family without parameters). The other family's cells are recall-gated
/// reference data.
const GATED_SNAPSHOT_INDEX: IndexKind = IndexKind::DEFAULT_MPLSH;

/// Dimensions shared by every approx cell.
struct ApproxParams {
    dim: usize,
    n_desc: usize,
    ops: u64,
    threshold: f32,
    capacity: u64,
}

impl ApproxParams {
    fn new(quick: bool, ops: u64, ops_quick: u64) -> ApproxParams {
        ApproxParams {
            dim: 32,
            n_desc: if quick { 128 } else { 512 },
            ops: if quick { ops_quick } else { ops },
            threshold: 0.3,
            capacity: 16 * 1024 * 1024,
        }
    }

    fn mutex_cache(&self, kind: IndexKind) -> SharedApproxCache<u64> {
        let cache = SharedApproxCache::new(ApproxCache::new(
            self.capacity,
            PolicyKind::Lru,
            self.threshold,
            kind,
            self.dim,
        ));
        for i in 0..self.n_desc {
            cache.insert(descriptor(self.dim, i, 0.0), i as u64, 256, 0);
        }
        cache
    }

    fn snapshot_cache(&self, kind: IndexKind) -> SnapshotApproxCache<u64> {
        let cache = SnapshotApproxCache::new(
            self.capacity,
            self.threshold,
            kind.ann_family(),
            self.dim,
            DEFAULT_REBUILD_BATCH,
        );
        for i in 0..self.n_desc {
            cache.insert(descriptor(self.dim, i, 0.0), i as u64, 256, 0);
        }
        // Fold the prefill journal so lookups measure steady state.
        cache.maintain(0);
        cache
    }
}

/// Approximate-lookup cells (read-only steady state): the mutex baseline
/// (`linear`, `lsh`) vs the snapshot ANN index (`mp-lsh`, `hnsw`) on
/// byte-identical query streams. Snapshot index telemetry is published to
/// `tel`, so `coic bench --metrics-out` + `coic obs report` show the
/// probe/rebuild behaviour behind these numbers.
fn approx_lookup_cells(quick: bool, seed: u64, tel: &Telemetry, results: &mut Vec<CellResult>) {
    let p = ApproxParams::new(quick, 12_000, 4_000);
    approx_lookup_cells_with(&p, seed, tel, results, &THREAD_STEPS);
}

fn approx_lookup_cells_with(
    p: &ApproxParams,
    seed: u64,
    tel: &Telemetry,
    results: &mut Vec<CellResult>,
    thread_steps: &[usize],
) {
    for &threads in thread_steps {
        let queries = query_streams(seed, threads, p.ops, p.dim, p.n_desc);

        for kind in MUTEX_INDEXES {
            let mutex = p.mutex_cache(kind);
            results.push(run_cell(
                "approx_lookup/mutex",
                kind.label(),
                threads,
                p.ops,
                |t, i| mutex.lookup(&queries[t][i as usize], 1).is_some(),
            ));
        }

        for kind in SNAPSHOT_INDEXES {
            let snap = p.snapshot_cache(kind);
            results.push(run_cell(
                "approx_lookup/snapshot",
                kind.label(),
                threads,
                p.ops,
                |t, i| snap.lookup(&queries[t][i as usize], 1).is_hit(),
            ));
            snap.index_telemetry().publish(tel.registry());
        }
    }
}

/// One insert per this many ops in the mixed cells: a ~3% write rate, the
/// shape of a warm edge absorbing new descriptors while serving lookups.
pub const INSERT_EVERY: u64 = 32;

/// Mixed insert-while-lookup cells. Fresh descriptors use clusters beyond
/// every query's range, so an insert never turns a later miss into a hit
/// and the hit ratio stays comparable across variants. The snapshot cells
/// pay their batch rebuild (every [`DEFAULT_REBUILD_BATCH`] journaled
/// inserts) inside the timed region — that cost is the honest price of
/// the lock-free read path and exactly what this workload exists to
/// measure.
fn approx_mixed_cells(quick: bool, seed: u64, tel: &Telemetry, results: &mut Vec<CellResult>) {
    let p = ApproxParams::new(quick, 8_000, 2_000);
    approx_mixed_cells_with(&p, seed, tel, results, &THREAD_STEPS);
}

fn approx_mixed_cells_with(
    p: &ApproxParams,
    seed: u64,
    tel: &Telemetry,
    results: &mut Vec<CellResult>,
    thread_steps: &[usize],
) {
    for &threads in thread_steps {
        let queries = query_streams(seed ^ 0xA55A, threads, p.ops, p.dim, p.n_desc);
        // Disjoint from the query cluster range [0, n_desc + n_desc/8).
        let fresh_base = 2 * p.n_desc;

        let mutex = p.mutex_cache(IndexKind::Lsh { tables: 8, bits: 8 });
        results.push(run_cell(
            "approx_mixed/mutex",
            "lsh",
            threads,
            p.ops,
            |t, i| {
                if i % INSERT_EVERY == 0 {
                    let c = fresh_base + t * p.ops as usize + i as usize;
                    mutex.insert(descriptor(p.dim, c, 0.0), c as u64, 256, i);
                    true
                } else {
                    mutex.lookup(&queries[t][i as usize], i).is_some()
                }
            },
        ));

        for kind in SNAPSHOT_INDEXES {
            let snap = p.snapshot_cache(kind);
            results.push(run_cell(
                "approx_mixed/snapshot",
                kind.label(),
                threads,
                p.ops,
                |t, i| {
                    if i % INSERT_EVERY == 0 {
                        let c = fresh_base + t * p.ops as usize + i as usize;
                        snap.insert(descriptor(p.dim, c, 0.0), c as u64, 256, i);
                        true
                    } else {
                        snap.lookup(&queries[t][i as usize], i).is_hit()
                    }
                },
            ));
            snap.index_telemetry().publish(tel.registry());
        }
    }
}

/// End-to-end loopback cell: M concurrent clients against one live edge
/// re-requesting a shared panorama pool (the VR co-watching shape).
fn edge_e2e_cell(quick: bool, seed: u64, tel: &Telemetry, results: &mut Vec<CellResult>) {
    use coic_workload::{Request, RequestKind, UserId, ZoneId};

    let clients = if quick { 4 } else { 8 };
    let reqs_per_client = if quick { 30 } else { 100 };
    let frame_pool = 16u64;

    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..3).map(ObjectClass).collect();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), seed)
        .expect("cloud spawn");
    let net = NetConfig::builder().telemetry(tel.clone()).build();
    let edge = spawn_edge_with(cloud.addr(), &EdgeConfig::default(), net.clone(), None)
        .expect("edge spawn");

    let started = Instant::now();
    let mut all_samples: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (models, panos) = (models.clone(), panos.clone());
                let (edge_addr, net, tel) = (edge.addr(), net.clone(), tel.clone());
                scope.spawn(move || {
                    let mut client = NetClient::connect_with(
                        edge_addr,
                        None,
                        net,
                        ClientConfig::default(),
                        compute,
                        models,
                        panos,
                    )
                    .expect("client connect");
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xEDE0 ^ c as u64);
                    let mut samples = Vec::with_capacity(reqs_per_client);
                    for _ in 0..reqs_per_client {
                        let frame_id = skewed_index(&mut rng, frame_pool as usize) as u64;
                        let req = Request {
                            user: UserId(c as u32),
                            zone: ZoneId(0),
                            at_ns: 0,
                            kind: RequestKind::Panorama { frame_id },
                        };
                        let out = client.execute(&req).expect("live request");
                        samples.push(out.elapsed.as_nanos() as u64);
                    }
                    client.publish_metrics(tel.registry());
                    samples
                })
            })
            .collect();
        for h in handles {
            all_samples.extend(h.join().expect("bench client panicked"));
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    all_samples.sort_unstable();
    let ops = all_samples.len() as u64;
    results.push(CellResult {
        workload: "edge_e2e/panorama".to_string(),
        index: "-".to_string(),
        threads: clients,
        ops,
        p50_ns: percentile(&all_samples, 0.50),
        p95_ns: percentile(&all_samples, 0.95),
        p99_ns: percentile(&all_samples, 0.99),
        throughput_ops_per_sec: if elapsed > 0.0 {
            ops as f64 / elapsed
        } else {
            0.0
        },
        hit_ratio: edge.cache_hit_ratio(),
    });
    edge.publish_metrics(tel.registry());
}

pub(crate) fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Throughput of a cell by (workload, threads); 0.0 when absent.
fn cell_throughput(results: &[CellResult], workload: &str, threads: usize) -> f64 {
    results
        .iter()
        .find(|c| c.workload == workload && c.threads == threads)
        .map(|c| c.throughput_ops_per_sec)
        .unwrap_or(0.0)
}

/// Full (workload, index, threads) cell lookup, for the approx grids
/// where one workload spans several index labels.
fn find_cell<'a>(
    results: &'a [CellResult],
    workload: &str,
    index: &str,
    threads: usize,
) -> Option<&'a CellResult> {
    results
        .iter()
        .find(|c| c.workload == workload && c.index == index && c.threads == threads)
}

/// Default-family snapshot-vs-mutex approx-lookup throughput ratio at
/// the top thread count: the [`GATED_SNAPSHOT_INDEX`] cell over the
/// mutex LSH baseline. 0.0 when either cell is absent.
fn snapshot_speedup(results: &[CellResult]) -> f64 {
    let top = *THREAD_STEPS.last().expect("non-empty steps");
    let mutex = find_cell(results, "approx_lookup/mutex", "lsh", top)
        .map(|c| c.throughput_ops_per_sec)
        .unwrap_or(0.0);
    if mutex <= 0.0 {
        return 0.0;
    }
    find_cell(
        results,
        "approx_lookup/snapshot",
        GATED_SNAPSHOT_INDEX.label(),
        top,
    )
    .map(|c| c.throughput_ops_per_sec)
    .unwrap_or(0.0)
        / mutex
}

/// Run the full benchmark grid. `quick` shrinks op counts for CI smoke
/// runs; `seed` drives every random stream, so two runs with the same seed
/// measure identical workloads.
pub fn run_bench(quick: bool, seed: u64) -> BenchReport {
    run_bench_with(quick, seed, &Telemetry::disabled())
}

/// [`run_bench`] with an explicit telemetry handle: the loopback edge
/// cell runs under `tel`, so `coic bench --trace-out/--metrics-out` can
/// export the same event vocabulary and registry keys the simulator and
/// live stack emit.
pub fn run_bench_with(quick: bool, seed: u64, tel: &Telemetry) -> BenchReport {
    let mut results = Vec::new();
    exact_lookup_cells(quick, seed, &mut results);
    exact_insert_cells(quick, &mut results);
    approx_lookup_cells(quick, seed, tel, &mut results);
    approx_mixed_cells(quick, seed, tel, &mut results);
    edge_e2e_cell(quick, seed, tel, &mut results);

    let top = *THREAD_STEPS.last().expect("non-empty steps");
    let mutex_tput = cell_throughput(&results, "exact_lookup/mutex", top);
    let sharded_tput = cell_throughput(&results, "exact_lookup/sharded", top);
    let speedup = if mutex_tput > 0.0 {
        sharded_tput / mutex_tput
    } else {
        0.0
    };
    let snap_speedup = snapshot_speedup(&results);
    BenchReport {
        schema: "coic-bench/v1".to_string(),
        git_rev: git_rev(),
        seed,
        quick,
        results,
        speedup_sharded_vs_mutex: speedup,
        speedup_snapshot_vs_mutex: snap_speedup,
    }
}

impl BenchReport {
    /// Canonical JSON form (sorted keys, fixed float precision).
    pub fn to_json(&self) -> Json {
        let results: Vec<Json> = self
            .results
            .iter()
            .map(|c| {
                obj(vec![
                    ("workload", s(&c.workload)),
                    ("index", s(&c.index)),
                    ("threads", num(c.threads as f64)),
                    ("ops", num(c.ops as f64)),
                    ("p50_ns", num(c.p50_ns as f64)),
                    ("p95_ns", num(c.p95_ns as f64)),
                    ("p99_ns", num(c.p99_ns as f64)),
                    ("throughput_ops_per_sec", num(c.throughput_ops_per_sec)),
                    ("hit_ratio", num(c.hit_ratio)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", s(&self.schema)),
            ("git_rev", s(&self.git_rev)),
            ("seed", num(self.seed as f64)),
            ("quick", Json::Bool(self.quick)),
            ("results", Json::Arr(results)),
            (
                "derived",
                obj(vec![
                    (
                        "speedup_sharded_vs_mutex",
                        num(self.speedup_sharded_vs_mutex),
                    ),
                    (
                        "speedup_snapshot_vs_mutex",
                        num(self.speedup_snapshot_vs_mutex),
                    ),
                ]),
            ),
        ])
    }

    /// Parse a report back from its JSON form (used by the regression
    /// checker; unknown fields are ignored).
    pub fn from_json(v: &Json) -> Result<BenchReport, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != "coic-bench/v1" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let results = v
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("missing results")?
            .iter()
            .map(|c| {
                let f = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("result missing numeric '{k}'"))
                };
                Ok(CellResult {
                    workload: c
                        .get("workload")
                        .and_then(Json::as_str)
                        .ok_or("result missing workload")?
                        .to_string(),
                    index: c
                        .get("index")
                        .and_then(Json::as_str)
                        .unwrap_or("-")
                        .to_string(),
                    threads: f("threads")? as usize,
                    ops: f("ops")? as u64,
                    p50_ns: f("p50_ns")? as u64,
                    p95_ns: f("p95_ns")? as u64,
                    p99_ns: f("p99_ns")? as u64,
                    throughput_ops_per_sec: f("throughput_ops_per_sec")?,
                    hit_ratio: f("hit_ratio")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            schema: schema.to_string(),
            git_rev: v
                .get("git_rev")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            seed: v.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            quick: matches!(v.get("quick"), Some(Json::Bool(true))),
            speedup_sharded_vs_mutex: v
                .get("derived")
                .and_then(|d| d.get("speedup_sharded_vs_mutex"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            speedup_snapshot_vs_mutex: v
                .get("derived")
                .and_then(|d| d.get("speedup_snapshot_vs_mutex"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            results,
        })
    }

    /// Write the canonical JSON (plus trailing newline) to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_canonical();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Load a report from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json::parse(&text)?)
    }
}

/// Conservative per-cell merge of several runs of the same grid: minimum
/// throughput, maximum latency percentiles, minimum speedup. Used when
/// refreshing `bench/baseline.json` (`coic bench --runs N`) so the
/// committed envelope reflects the worst honest run rather than one lucky
/// one — a fresh CI run then regresses only if it falls a full tolerance
/// band below anything observed while baselining.
pub fn conservative_merge(reports: Vec<BenchReport>) -> BenchReport {
    let mut reports = reports.into_iter();
    let mut merged = reports.next().expect("at least one report");
    for r in reports {
        for cell in &mut merged.results {
            let Some(other) = r.results.iter().find(|c| {
                c.workload == cell.workload && c.index == cell.index && c.threads == cell.threads
            }) else {
                continue;
            };
            cell.p50_ns = cell.p50_ns.max(other.p50_ns);
            cell.p95_ns = cell.p95_ns.max(other.p95_ns);
            cell.p99_ns = cell.p99_ns.max(other.p99_ns);
            cell.throughput_ops_per_sec = cell
                .throughput_ops_per_sec
                .min(other.throughput_ops_per_sec);
        }
        merged.speedup_sharded_vs_mutex = merged
            .speedup_sharded_vs_mutex
            .min(r.speedup_sharded_vs_mutex);
        merged.speedup_snapshot_vs_mutex = merged
            .speedup_snapshot_vs_mutex
            .min(r.speedup_snapshot_vs_mutex);
    }
    // Recompute the headline speedups from the merged cells: the ratio of
    // the two envelope minima is steadier than the worst single-run ratio
    // (which compounds one run's unluckiest mutex sample with its
    // unluckiest sharded sample).
    let top = *THREAD_STEPS.last().expect("non-empty steps");
    let m = cell_throughput(&merged.results, "exact_lookup/mutex", top);
    let s = cell_throughput(&merged.results, "exact_lookup/sharded", top);
    if m > 0.0 && s > 0.0 {
        merged.speedup_sharded_vs_mutex = s / m;
    }
    let snap = snapshot_speedup(&merged.results);
    if snap > 0.0 && snap.is_finite() {
        merged.speedup_snapshot_vs_mutex = snap;
    }
    merged
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Debug, Default)]
pub struct RegressionReport {
    /// Human-readable regression lines (empty = pass).
    pub failures: Vec<String>,
    /// Informational comparison lines.
    pub notes: Vec<String>,
}

/// Compare `current` against `baseline` with a tolerance band,
/// direction-aware: only *worse* results fail (slower p50, lower
/// throughput, lower speedup ratio). `min_speedup` additionally gates the
/// machine-independent sharded-vs-mutex ratio. Cells present in only one
/// report are noted, not failed (grids may grow between PRs).
///
/// Host-speed normalisation: shared runners are sometimes *uniformly*
/// slower than the baseline host (CPU steal, thermal caps, a noisy
/// neighbour). The median throughput ratio across all matched cells
/// estimates that global factor, and only slowdown beyond it counts
/// against a cell — a regression is a cell that got worse *relative to
/// the rest of the grid*. The factor is clamped at 1.0 so a
/// faster-than-baseline host never raises the bar.
pub fn check_regression(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
    min_speedup: f64,
) -> RegressionReport {
    let mut report = RegressionReport::default();
    let mut pairs = Vec::new();
    for base in &baseline.results {
        match current.results.iter().find(|c| {
            c.workload == base.workload && c.index == base.index && c.threads == base.threads
        }) {
            Some(cur) => pairs.push((base, cur)),
            None => report.notes.push(format!(
                "cell {}[{}]@{}t missing from current run",
                base.workload, base.index, base.threads
            )),
        }
    }
    let mut ratios: Vec<f64> = pairs
        .iter()
        .filter(|(b, _)| b.throughput_ops_per_sec > 0.0)
        .map(|(b, c)| c.throughput_ops_per_sec / b.throughput_ops_per_sec)
        .collect();
    ratios.sort_by(f64::total_cmp);
    // With too few cells the median is not robust (it could *be* the one
    // regressed cell); skip normalisation for tiny grids.
    let host_factor = if ratios.len() < 5 {
        1.0
    } else {
        ratios[ratios.len() / 2].min(1.0)
    };
    if host_factor < 1.0 {
        report.notes.push(format!(
            "host-speed factor {host_factor:.2} (median cell ratio; grid-wide slowdown discounted)"
        ));
    }
    for (base, cur) in pairs {
        let label = format!("{}[{}]@{}t", base.workload, base.index, base.threads);
        if base.throughput_ops_per_sec > 0.0 {
            let ratio = cur.throughput_ops_per_sec / base.throughput_ops_per_sec / host_factor;
            if ratio < 1.0 - tolerance {
                report.failures.push(format!(
                    "{label}: throughput {:.0} ops/s vs baseline {:.0} ({:.1}% relative drop > {:.0}% tolerance)",
                    cur.throughput_ops_per_sec,
                    base.throughput_ops_per_sec,
                    (1.0 - ratio) * 100.0,
                    tolerance * 100.0
                ));
            } else {
                report
                    .notes
                    .push(format!("{label}: throughput ratio {ratio:.2} ok"));
            }
        }
        // Per-op latency percentiles are noisier than aggregate
        // throughput (one scheduler burst moves the median), so p50 gets
        // double the throughput band.
        if base.p50_ns > 0 {
            let ratio = cur.p50_ns as f64 * host_factor / base.p50_ns as f64;
            if ratio > 1.0 + 2.0 * tolerance {
                report.failures.push(format!(
                    "{label}: p50 {} ns vs baseline {} ns ({:.1}% relative slowdown > {:.0}% p50 tolerance)",
                    cur.p50_ns,
                    base.p50_ns,
                    (ratio - 1.0) * 100.0,
                    2.0 * tolerance * 100.0
                ));
            }
        }
    }
    if current.speedup_sharded_vs_mutex < min_speedup {
        report.failures.push(format!(
            "sharded-vs-mutex speedup {:.2} below required {min_speedup:.2}",
            current.speedup_sharded_vs_mutex
        ));
    } else {
        report.notes.push(format!(
            "sharded-vs-mutex speedup {:.2} (required {min_speedup:.2})",
            current.speedup_sharded_vs_mutex
        ));
    }
    report
}

/// Absolute hit-ratio tolerance for the snapshot families against the
/// linear scan (0.5%, per the acceptance criterion). The band absorbs
/// the families' residual recall noise on satisficed lookups.
pub const APPROX_HIT_RATIO_TOLERANCE: f64 = 0.005;

/// The snapshot-index acceptance gate: at *every* thread count, the
/// default snapshot family ([`GATED_SNAPSHOT_INDEX`]) must beat the
/// mutex LSH baseline on both p95 latency and throughput, and *every*
/// snapshot family must match the linear scan's hit ratio within
/// [`APPROX_HIT_RATIO_TOLERANCE`]. Unlike [`check_regression`] this
/// compares cells *within one report* — both sides ran on the same host
/// in the same process, so no tolerance band or host normalisation
/// applies and the comparison is strict.
pub fn check_approx_gate(report: &BenchReport) -> RegressionReport {
    let mut out = RegressionReport::default();
    for &threads in &THREAD_STEPS {
        let Some(mutex) = find_cell(&report.results, "approx_lookup/mutex", "lsh", threads) else {
            out.notes.push(format!(
                "approx_lookup/mutex[lsh]@{threads}t absent; approx gate skipped at this step"
            ));
            continue;
        };
        let linear = find_cell(&report.results, "approx_lookup/mutex", "linear", threads);
        for kind in SNAPSHOT_INDEXES {
            let label = kind.label();
            let cell = format!("approx_lookup/snapshot[{label}]@{threads}t");
            let Some(snap) = find_cell(&report.results, "approx_lookup/snapshot", label, threads)
            else {
                out.failures
                    .push(format!("{cell}: cell missing from report"));
                continue;
            };
            let before = out.failures.len();
            // Perf rows gate the *production default* snapshot family
            // only: the alternate family stays in the matrix as data
            // (HNSW's graph walk cannot beat an O(1) bucket probe at the
            // small cache sizes the bench grid uses), but whichever
            // family ships as the default must beat the mutex baseline
            // at every thread count.
            if kind == GATED_SNAPSHOT_INDEX {
                if snap.p95_ns >= mutex.p95_ns {
                    out.failures.push(format!(
                        "{cell}: p95 {} ns does not beat mutex baseline {} ns",
                        snap.p95_ns, mutex.p95_ns
                    ));
                }
                if snap.throughput_ops_per_sec <= mutex.throughput_ops_per_sec {
                    out.failures.push(format!(
                        "{cell}: throughput {:.0} ops/s does not beat mutex baseline {:.0}",
                        snap.throughput_ops_per_sec, mutex.throughput_ops_per_sec
                    ));
                }
            }
            // Recall rows gate every family: an index whose hit ratio
            // drifts from the linear scan is returning wrong answers,
            // whatever its speed.
            if let Some(linear) = linear {
                let delta = (snap.hit_ratio - linear.hit_ratio).abs();
                if delta > APPROX_HIT_RATIO_TOLERANCE {
                    out.failures.push(format!(
                        "{cell}: hit ratio {:.4} deviates from linear scan {:.4} by {:.4} (> {:.3})",
                        snap.hit_ratio, linear.hit_ratio, delta, APPROX_HIT_RATIO_TOLERANCE
                    ));
                }
            }
            if out.failures.len() == before {
                out.notes.push(format!(
                    "{cell}: ok (p95 {} vs mutex {} ns, {:.0} vs {:.0} ops/s, hit ratio {:.4})",
                    snap.p95_ns,
                    mutex.p95_ns,
                    snap.throughput_ops_per_sec,
                    mutex.throughput_ops_per_sec,
                    snap.hit_ratio
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, threads: usize, tput: f64, p50: u64) -> CellResult {
        CellResult {
            workload: workload.to_string(),
            index: "-".to_string(),
            threads,
            ops: 100,
            p50_ns: p50,
            p95_ns: p50 * 2,
            p99_ns: p50 * 3,
            throughput_ops_per_sec: tput,
            hit_ratio: 0.9,
        }
    }

    fn report(cells: Vec<CellResult>, speedup: f64) -> BenchReport {
        BenchReport {
            schema: "coic-bench/v1".to_string(),
            git_rev: "test".to_string(),
            seed: 7,
            quick: true,
            results: cells,
            speedup_sharded_vs_mutex: speedup,
            speedup_snapshot_vs_mutex: 1.8,
        }
    }

    fn approx_cell(
        workload: &str,
        index: &str,
        threads: usize,
        tput: f64,
        p95: u64,
        hit: f64,
    ) -> CellResult {
        CellResult {
            workload: workload.to_string(),
            index: index.to_string(),
            threads,
            ops: 100,
            p50_ns: p95 / 2,
            p95_ns: p95,
            p99_ns: p95 * 2,
            throughput_ops_per_sec: tput,
            hit_ratio: hit,
        }
    }

    /// A synthetic grid where every snapshot family cleanly beats the
    /// mutex baseline at every thread count.
    fn passing_approx_grid() -> Vec<CellResult> {
        let mut cells = Vec::new();
        for &t in &THREAD_STEPS {
            cells.push(approx_cell(
                "approx_lookup/mutex",
                "linear",
                t,
                500.0,
                4000,
                0.90,
            ));
            cells.push(approx_cell(
                "approx_lookup/mutex",
                "lsh",
                t,
                1000.0,
                2000,
                0.88,
            ));
            cells.push(approx_cell(
                "approx_lookup/snapshot",
                "mp-lsh",
                t,
                1500.0,
                1200,
                0.90,
            ));
            cells.push(approx_cell(
                "approx_lookup/snapshot",
                "hnsw",
                t,
                1400.0,
                1300,
                0.90,
            ));
        }
        cells
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(vec![cell("exact_lookup/sharded", 16, 1e6, 500)], 2.5);
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].workload, "exact_lookup/sharded");
        assert_eq!(back.results[0].p50_ns, 500);
        assert!((back.speedup_sharded_vs_mutex - 2.5).abs() < 1e-9);
        assert!((back.speedup_snapshot_vs_mutex - 1.8).abs() < 1e-9);
        // Canonical: serializing twice is byte-identical.
        assert_eq!(r.to_json().to_canonical(), back.to_json().to_canonical());
    }

    #[test]
    fn approx_gate_passes_a_clean_grid() {
        let r = report(passing_approx_grid(), 2.0);
        let verdict = check_approx_gate(&r);
        assert!(
            verdict.failures.is_empty(),
            "failures: {:?}",
            verdict.failures
        );
        // One note per snapshot family per thread count.
        assert_eq!(verdict.notes.len(), 2 * THREAD_STEPS.len());
    }

    #[test]
    fn approx_gate_fails_on_slower_snapshot_or_recall_loss() {
        // p95 regression of the gated default family at one thread count
        // fails.
        let mut cells = passing_approx_grid();
        cells
            .iter_mut()
            .find(|c| {
                c.workload == "approx_lookup/snapshot" && c.index == "mp-lsh" && c.threads == 4
            })
            .unwrap()
            .p95_ns = 3000;
        let verdict = check_approx_gate(&report(cells, 2.0));
        assert_eq!(verdict.failures.len(), 1);
        assert!(
            verdict.failures[0].contains("mp-lsh"),
            "{:?}",
            verdict.failures
        );
        assert!(
            verdict.failures[0].contains("p95"),
            "{:?}",
            verdict.failures
        );

        // The non-default family is recall-gated reference data: its
        // perf does not gate.
        let mut cells = passing_approx_grid();
        cells
            .iter_mut()
            .find(|c| c.workload == "approx_lookup/snapshot" && c.index == "hnsw" && c.threads == 4)
            .unwrap()
            .p95_ns = 3000;
        let verdict = check_approx_gate(&report(cells, 2.0));
        assert!(verdict.failures.is_empty(), "{:?}", verdict.failures);

        // Hit ratio drifting more than the tolerance from linear fails.
        let mut cells = passing_approx_grid();
        cells
            .iter_mut()
            .find(|c| {
                c.workload == "approx_lookup/snapshot" && c.index == "mp-lsh" && c.threads == 16
            })
            .unwrap()
            .hit_ratio = 0.89;
        let verdict = check_approx_gate(&report(cells, 2.0));
        assert_eq!(verdict.failures.len(), 1);
        assert!(
            verdict.failures[0].contains("hit ratio"),
            "{:?}",
            verdict.failures
        );

        // A missing snapshot cell is a failure, not a silent skip.
        let cells: Vec<_> = passing_approx_grid()
            .into_iter()
            .filter(|c| !(c.index == "hnsw" && c.threads == 1))
            .collect();
        let verdict = check_approx_gate(&report(cells, 2.0));
        assert_eq!(verdict.failures.len(), 1);
        assert!(
            verdict.failures[0].contains("missing"),
            "{:?}",
            verdict.failures
        );
    }

    #[test]
    fn regression_is_direction_aware() {
        let base = report(vec![cell("a", 4, 1000.0, 100)], 2.0);
        // Faster than baseline: never a failure.
        let better = report(vec![cell("a", 4, 2000.0, 50)], 3.0);
        assert!(check_regression(&base, &better, 0.25, 1.2)
            .failures
            .is_empty());
        // 50% throughput drop: fails at 25% tolerance.
        let worse = report(vec![cell("a", 4, 500.0, 100)], 2.0);
        let r = check_regression(&base, &worse, 0.25, 1.2);
        assert_eq!(r.failures.len(), 1);
        // p50 doubled: fails.
        let slower = report(vec![cell("a", 4, 1000.0, 200)], 2.0);
        assert_eq!(
            check_regression(&base, &slower, 0.25, 1.2).failures.len(),
            1
        );
        // Within band: passes.
        let close_run = report(vec![cell("a", 4, 900.0, 110)], 2.0);
        assert!(check_regression(&base, &close_run, 0.25, 1.2)
            .failures
            .is_empty());
    }

    #[test]
    fn speedup_gate_fails_below_minimum() {
        let base = report(vec![], 2.0);
        let cur = report(vec![], 1.05);
        let r = check_regression(&base, &cur, 0.25, 1.2);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("speedup"));
    }

    #[test]
    fn missing_cells_are_notes_not_failures() {
        let base = report(vec![cell("gone", 1, 100.0, 10)], 2.0);
        let cur = report(vec![], 2.0);
        let r = check_regression(&base, &cur, 0.25, 1.2);
        assert!(r.failures.is_empty());
        assert!(r.notes.iter().any(|n| n.contains("missing")));
    }

    #[test]
    fn uniform_host_slowdown_is_not_a_regression() {
        // Six cells all ~35% slower: a grid-wide host effect, discounted
        // by the median normalisation — no failures.
        let names = ["a", "b", "c", "d", "e", "f"];
        let base = report(names.iter().map(|n| cell(n, 4, 1000.0, 100)).collect(), 2.0);
        let slow_host = report(names.iter().map(|n| cell(n, 4, 650.0, 154)).collect(), 2.0);
        let r = check_regression(&base, &slow_host, 0.25, 1.2);
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("host-speed factor")));
        // But one cell dropping 40% while the rest hold still fails.
        let mut cells: Vec<_> = names.iter().map(|n| cell(n, 4, 1000.0, 100)).collect();
        cells[2].throughput_ops_per_sec = 600.0;
        let one_bad = report(cells, 2.0);
        let r = check_regression(&base, &one_bad, 0.25, 1.2);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].starts_with("c[-]@4t"));
    }

    #[test]
    fn conservative_merge_takes_worst_of_each_cell() {
        let a = report(vec![cell("a", 4, 1000.0, 100)], 2.5);
        let b = report(vec![cell("a", 4, 800.0, 140)], 2.1);
        let c = report(vec![cell("a", 4, 1200.0, 90)], 3.0);
        let m = conservative_merge(vec![a, b, c]);
        assert_eq!(m.results.len(), 1);
        assert!((m.results[0].throughput_ops_per_sec - 800.0).abs() < 1e-9);
        assert_eq!(m.results[0].p50_ns, 140);
        assert!((m.speedup_sharded_vs_mutex - 2.1).abs() < 1e-9);
        // A fresh run matching any of the originals passes the gate.
        let fresh = report(vec![cell("a", 4, 820.0, 135)], 2.4);
        assert!(check_regression(&m, &fresh, 0.25, 1.2).failures.is_empty());
    }

    #[test]
    fn tiny_bench_grid_runs_and_gates() {
        // A micro-sized real run: exercises the actual measurement path
        // (threads, percentiles, schema) without CI-scale op counts.
        let mut results = Vec::new();
        super::exact_lookup_cells(true, 3, &mut results);
        assert_eq!(results.len(), 2 * THREAD_STEPS.len());
        for c in &results {
            assert!(c.ops > 0);
            assert!(c.p50_ns <= c.p95_ns && c.p95_ns <= c.p99_ns);
            assert!(c.throughput_ops_per_sec > 0.0);
            assert!(c.hit_ratio > 0.5, "zipf stream should mostly hit");
        }
        // The design claim, at microbench scale: sharded lookups beat the
        // clone-under-mutex baseline at the top thread count.
        let top = *THREAD_STEPS.last().unwrap();
        let m = cell_throughput(&results, "exact_lookup/mutex", top);
        let sh = cell_throughput(&results, "exact_lookup/sharded", top);
        assert!(
            sh > m,
            "sharded ({sh:.0} ops/s) should out-run mutex ({m:.0} ops/s)"
        );
    }

    /// A grid small enough for debug-build unit tests. Timing numbers
    /// from it are meaningless (the perf half of the acceptance gate
    /// runs on release builds via `coic bench` + `bench_check`); what
    /// these tests pin is the *correctness* half — hit-ratio parity with
    /// the linear scan — plus cell structure and telemetry.
    fn tiny_params() -> ApproxParams {
        ApproxParams {
            dim: 16,
            n_desc: 48,
            ops: 400,
            threshold: 0.3,
            capacity: 16 * 1024 * 1024,
        }
    }

    #[test]
    fn approx_grid_matches_linear_hit_ratio() {
        // The recall half of the acceptance claim, exercised for real:
        // the snapshot families make the same hit/miss decisions as the
        // linear scan (the no-false-miss radius makes this exact, the
        // gate allows [`APPROX_HIT_RATIO_TOLERANCE`]).
        let tel = Telemetry::new();
        let mut results = Vec::new();
        super::approx_lookup_cells_with(&tiny_params(), 3, &tel, &mut results, &[2]);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|c| c.ops > 0));
        let linear =
            find_cell(&results, "approx_lookup/mutex", "linear", 2).expect("linear baseline cell");
        assert!(
            linear.hit_ratio > 0.5,
            "zipf descriptor stream should mostly hit"
        );
        for kind in SNAPSHOT_INDEXES {
            let c = find_cell(&results, "approx_lookup/snapshot", kind.label(), 2)
                .expect("snapshot cell");
            assert!(
                (c.hit_ratio - linear.hit_ratio).abs() <= APPROX_HIT_RATIO_TOLERANCE,
                "{}[{}] hit ratio {} deviates from linear {}",
                c.workload,
                c.index,
                c.hit_ratio,
                linear.hit_ratio
            );
        }
        // The snapshot cells published index telemetry while running.
        assert!(tel.registry().counter("index.lookup") > 0);
        assert!(tel.registry().counter("index.rebuild") > 0);
    }

    #[test]
    fn approx_mixed_grid_runs() {
        let tel = Telemetry::new();
        let mut results = Vec::new();
        super::approx_mixed_cells_with(&tiny_params(), 3, &tel, &mut results, &[2]);
        assert_eq!(results.len(), 3);
        for c in &results {
            assert!(c.ops > 0);
            assert!(c.p50_ns <= c.p95_ns && c.p95_ns <= c.p99_ns);
            assert!(c.throughput_ops_per_sec > 0.0);
        }
        // Inserts during the timed region leave a journal behind; the
        // telemetry published at cell teardown must reflect that work.
        assert!(tel.registry().counter("index.folded") > 0);
    }
}

//! Eviction policies.
//!
//! The paper's prototype uses a "simple cache management policy" and names
//! better management as ongoing work; the policy ablation (experiment Ext B)
//! compares these implementations. Policies track entries by the store's
//! internal ids and only decide *ordering* — size accounting and the actual
//! removal live in [`crate::store`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An eviction-ordering policy over store entry ids.
pub trait EvictionPolicy: Send + Sync {
    /// A new entry was inserted.
    fn on_insert(&mut self, id: u64, size: u64);
    /// An existing entry was hit.
    fn on_access(&mut self, id: u64);
    /// An entry left the store (evicted, replaced or expired).
    fn on_remove(&mut self, id: u64);
    /// The id the policy would evict next; `None` when it tracks nothing.
    fn victim(&self) -> Option<u64>;
    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Which policy to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// First in, first out (insertion order, accesses ignored).
    Fifo,
    /// Least frequently used (ties broken by recency).
    Lfu,
    /// Segmented LRU: new entries must prove themselves in a probation
    /// segment before being promoted.
    Slru,
    /// Greedy-Dual-Size-Frequency: favours keeping small, popular entries.
    Gdsf,
}

impl PolicyKind {
    /// Construct the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::default()),
            PolicyKind::Fifo => Box::new(Fifo::default()),
            PolicyKind::Lfu => Box::new(Lfu::default()),
            PolicyKind::Slru => Box::new(Slru::default()),
            PolicyKind::Gdsf => Box::new(Gdsf::default()),
        }
    }

    /// All kinds, for ablation sweeps.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::Slru,
        PolicyKind::Gdsf,
    ];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lfu => "LFU",
            PolicyKind::Slru => "SLRU",
            PolicyKind::Gdsf => "GDSF",
        };
        f.write_str(s)
    }
}

/// Least-recently-used ordering.
#[derive(Default)]
pub struct Lru {
    tick: u64,
    by_id: HashMap<u64, u64>,
    by_tick: BTreeMap<u64, u64>,
}

impl Lru {
    fn touch(&mut self, id: u64) {
        if let Some(old) = self.by_id.get(&id).copied() {
            self.by_tick.remove(&old);
        }
        self.tick += 1;
        self.by_id.insert(id, self.tick);
        self.by_tick.insert(self.tick, id);
    }
}

impl EvictionPolicy for Lru {
    fn on_insert(&mut self, id: u64, _size: u64) {
        self.touch(id);
    }
    fn on_access(&mut self, id: u64) {
        self.touch(id);
    }
    fn on_remove(&mut self, id: u64) {
        if let Some(t) = self.by_id.remove(&id) {
            self.by_tick.remove(&t);
        }
    }
    fn victim(&self) -> Option<u64> {
        self.by_tick.values().next().copied()
    }
    fn name(&self) -> &'static str {
        "LRU"
    }
}

/// Insertion-order (FIFO) eviction.
#[derive(Default)]
pub struct Fifo {
    tick: u64,
    by_id: HashMap<u64, u64>,
    by_tick: BTreeMap<u64, u64>,
}

impl EvictionPolicy for Fifo {
    fn on_insert(&mut self, id: u64, _size: u64) {
        self.tick += 1;
        self.by_id.insert(id, self.tick);
        self.by_tick.insert(self.tick, id);
    }
    fn on_access(&mut self, _id: u64) {}
    fn on_remove(&mut self, id: u64) {
        if let Some(t) = self.by_id.remove(&id) {
            self.by_tick.remove(&t);
        }
    }
    fn victim(&self) -> Option<u64> {
        self.by_tick.values().next().copied()
    }
    fn name(&self) -> &'static str {
        "FIFO"
    }
}

/// Least-frequently-used with LRU tie-breaking.
#[derive(Default)]
pub struct Lfu {
    tick: u64,
    by_id: HashMap<u64, (u64, u64)>,    // id -> (count, tick)
    ordered: BTreeSet<(u64, u64, u64)>, // (count, tick, id)
}

impl Lfu {
    fn bump(&mut self, id: u64, reset: bool) {
        self.tick += 1;
        let (count, old_tick) = self.by_id.get(&id).copied().unwrap_or((0, 0));
        if count > 0 || old_tick > 0 {
            self.ordered.remove(&(count, old_tick, id));
        }
        let new_count = if reset { 1 } else { count + 1 };
        self.by_id.insert(id, (new_count, self.tick));
        self.ordered.insert((new_count, self.tick, id));
    }
}

impl EvictionPolicy for Lfu {
    fn on_insert(&mut self, id: u64, _size: u64) {
        self.bump(id, true);
    }
    fn on_access(&mut self, id: u64) {
        self.bump(id, false);
    }
    fn on_remove(&mut self, id: u64) {
        if let Some((c, t)) = self.by_id.remove(&id) {
            self.ordered.remove(&(c, t, id));
        }
    }
    fn victim(&self) -> Option<u64> {
        self.ordered.iter().next().map(|&(_, _, id)| id)
    }
    fn name(&self) -> &'static str {
        "LFU"
    }
}

/// Segmented LRU: entries start on probation; a hit promotes them to the
/// protected segment. Victims come from probation first. The protected
/// segment is bounded to 4× the probation population to guarantee victims
/// keep flowing.
#[derive(Default)]
pub struct Slru {
    probation: Lru,
    protected: Lru,
    seg: HashMap<u64, bool>, // id -> is_protected
}

impl EvictionPolicy for Slru {
    fn on_insert(&mut self, id: u64, size: u64) {
        self.probation.on_insert(id, size);
        self.seg.insert(id, false);
    }
    fn on_access(&mut self, id: u64) {
        match self.seg.get(&id).copied() {
            Some(false) => {
                self.probation.on_remove(id);
                self.protected.on_insert(id, 0);
                self.seg.insert(id, true);
                // Keep the protected segment from starving probation.
                while self.protected.by_id.len() > 4 * (self.probation.by_id.len() + 1) {
                    if let Some(demote) = self.protected.victim() {
                        self.protected.on_remove(demote);
                        self.probation.on_insert(demote, 0);
                        self.seg.insert(demote, false);
                    } else {
                        break;
                    }
                }
            }
            Some(true) => self.protected.on_access(id),
            None => {}
        }
    }
    fn on_remove(&mut self, id: u64) {
        match self.seg.remove(&id) {
            Some(false) => self.probation.on_remove(id),
            Some(true) => self.protected.on_remove(id),
            None => {}
        }
    }
    fn victim(&self) -> Option<u64> {
        self.probation.victim().or_else(|| self.protected.victim())
    }
    fn name(&self) -> &'static str {
        "SLRU"
    }
}

/// Totally ordered f64 for use in sorted containers.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Greedy-Dual-Size-Frequency: priority `L + freq / size`; evicting an
/// entry raises the global ageing level `L` to its priority, so cold small
/// entries eventually lose to fresh large ones.
#[derive(Default)]
pub struct Gdsf {
    level: f64,
    by_id: HashMap<u64, (u64, u64, f64)>, // id -> (freq, size, priority)
    ordered: BTreeSet<(OrdF64, u64)>,
}

impl Gdsf {
    fn set(&mut self, id: u64, freq: u64, size: u64) {
        if let Some((_, _, p)) = self.by_id.get(&id) {
            self.ordered.remove(&(OrdF64(*p), id));
        }
        let size = size.max(1);
        let priority = self.level + freq as f64 / size as f64;
        self.by_id.insert(id, (freq, size, priority));
        self.ordered.insert((OrdF64(priority), id));
    }
}

impl EvictionPolicy for Gdsf {
    fn on_insert(&mut self, id: u64, size: u64) {
        self.set(id, 1, size);
    }
    fn on_access(&mut self, id: u64) {
        if let Some((freq, size, _)) = self.by_id.get(&id).copied() {
            self.set(id, freq + 1, size);
        }
    }
    fn on_remove(&mut self, id: u64) {
        if let Some((_, _, p)) = self.by_id.remove(&id) {
            self.ordered.remove(&(OrdF64(p), id));
            // Ageing: future priorities start from the evicted level.
            if p > self.level {
                self.level = p;
            }
        }
    }
    fn victim(&self) -> Option<u64> {
        self.ordered.iter().next().map(|&(_, id)| id)
    }
    fn name(&self) -> &'static str {
        "GDSF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::default();
        p.on_insert(1, 10);
        p.on_insert(2, 10);
        p.on_insert(3, 10);
        p.on_access(1); // 2 is now coldest
        assert_eq!(p.victim(), Some(2));
        p.on_remove(2);
        assert_eq!(p.victim(), Some(3));
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = Fifo::default();
        p.on_insert(1, 10);
        p.on_insert(2, 10);
        p.on_access(1);
        p.on_access(1);
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut p = Lfu::default();
        p.on_insert(1, 10);
        p.on_insert(2, 10);
        p.on_access(1);
        p.on_access(1);
        p.on_access(2);
        p.on_insert(3, 10); // freq 1, newest
        assert_eq!(p.victim(), Some(3));
        p.on_access(3);
        p.on_access(3);
        p.on_access(3);
        assert_eq!(p.victim(), Some(2)); // freq 2 < freq 3(=1+2)... 2 has freq 2, 1 has freq 3, 3 has freq 4
    }

    #[test]
    fn lfu_ties_break_by_recency() {
        let mut p = Lfu::default();
        p.on_insert(1, 10);
        p.on_insert(2, 10);
        // Both freq 1; 1 is older.
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn slru_protects_hit_entries() {
        let mut p = Slru::default();
        p.on_insert(1, 10);
        p.on_insert(2, 10);
        p.on_access(1); // 1 promoted to protected
                        // 2 is on probation, so it goes first even though 1 is older.
        assert_eq!(p.victim(), Some(2));
        p.on_remove(2);
        // Probation empty: protected supplies the victim.
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn gdsf_prefers_evicting_large_cold_entries() {
        let mut p = Gdsf::default();
        p.on_insert(1, 1_000_000); // big
        p.on_insert(2, 1_000); // small
        assert_eq!(p.victim(), Some(1));
        // Many hits on the big one flip the order.
        for _ in 0..2000 {
            p.on_access(1);
        }
        assert_eq!(p.victim(), Some(2));
    }

    #[test]
    fn gdsf_ageing_lets_new_entries_survive() {
        let mut p = Gdsf::default();
        p.on_insert(1, 10);
        for _ in 0..100 {
            p.on_access(1);
        }
        p.on_insert(2, 10);
        // 2 is the victim now...
        assert_eq!(p.victim(), Some(2));
        p.on_remove(2);
        // ...but after ageing, a fresh insert competes with the old hot one.
        p.on_insert(3, 10);
        for _ in 0..2 {
            p.on_access(3);
        }
        // level rose to 2's priority, so 3's priority ≈ level + 3/10 which
        // can now exceed 1's stale priority only after enough ageing; at
        // minimum the policy must still produce victims consistently.
        assert!(p.victim().is_some());
    }

    #[test]
    fn removal_is_idempotent_across_policies() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            p.on_insert(5, 100);
            p.on_remove(5);
            p.on_remove(5);
            assert_eq!(p.victim(), None, "{kind}");
        }
    }

    #[test]
    fn all_policies_drain_completely() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            for id in 0..50 {
                p.on_insert(id, 10 + id);
            }
            for id in 0..50 {
                if id % 3 == 0 {
                    p.on_access(id);
                }
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(v) = p.victim() {
                assert!(seen.insert(v), "{kind} yielded duplicate victim {v}");
                p.on_remove(v);
            }
            assert_eq!(seen.len(), 50, "{kind} lost entries");
        }
    }
}

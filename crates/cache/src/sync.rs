//! Sync-primitive facade for the concurrent cache wrappers.
//!
//! Normal builds re-export `parking_lot` locks and `std` atomics — zero
//! overhead, identical behavior to before the facade existed. Under the
//! `model-check` feature the same names resolve to the in-tree `loom`
//! shim, whose lock and atomic operations become scheduling points of an
//! exhaustive bounded-interleaving explorer (`crates/cache/tests/model.rs`
//! drives it). Production code in this crate must reach locks and atomics
//! through this module so the model checker sees every synchronization
//! point.

#[cfg(not(feature = "model-check"))]
pub(crate) use parking_lot::{Mutex, RwLock};
#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "model-check")]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "model-check")]
pub(crate) use loom::sync::{Mutex, RwLock};

//! AR annotation end to end — the paper's evaluation application.
//!
//! "We implement an AR application upon CoIC, which renders high-quality 3D
//! annotations to label objects recognized in the camera view."
//!
//! This example walks the full pipeline for one user at a crossroads:
//! 1. the camera observes a landmark (synthetic scene),
//! 2. the client extracts a SimNet descriptor and queries the edge,
//! 3. miss → cloud recognizes, edge caches; hit → cached label,
//! 4. the recognized label picks a 3D annotation model, which the software
//!    rasterizer draws over the camera view (printed as ASCII art).
//!
//! Run with: `cargo run --release --example ar_annotation`

use coic::core::{
    ClientConfig, ClientLogic, CloudService, ComputeConfig, EdgeConfig, EdgeReply, EdgeService,
    ModelLibrary, PanoLibrary,
};
use coic::render::{procgen, Camera, Framebuffer, Mat4, Scene, Vec3};
use coic::vision::{ObjectClass, SceneGenerator};
use coic::workload::{Request, RequestKind, UserId, ZoneId};
use std::sync::Arc;

fn ascii(fb: &Framebuffer) {
    let ramp = b" .:-=+*#%@";
    for y in (0..fb.height()).step_by(2) {
        let mut line = String::new();
        for x in 0..fb.width() {
            let v = fb.get(x, y) as usize * (ramp.len() - 1) / 255;
            line.push(ramp[v] as char);
        }
        println!("{line}");
    }
}

fn main() {
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let classes: Vec<_> = (0..6).map(ObjectClass).collect();
    let gen = SceneGenerator::new(64);

    let client = ClientLogic::new(
        ClientConfig::default(),
        compute,
        models.clone(),
        panos.clone(),
    );
    let mut edge = EdgeService::new(&EdgeConfig::default());
    let cloud = CloudService::new(&classes, &gen, compute, models, panos, 42);

    println!("AR annotation walkthrough — landmark class 3, three sightings\n");
    for (i, view_seed) in [100u64, 101, 102].iter().enumerate() {
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Recognition {
                class: 3,
                view_seed: *view_seed,
            },
        };
        let prepared = client.prepare(&req);
        let label = match edge.handle_query(&prepared.descriptor, None, i as u64) {
            EdgeReply::Hit(coic::core::TaskResult::Recognition(r)) => {
                println!("sighting {i}: EDGE HIT  → label {}", r.label);
                r.label
            }
            EdgeReply::NeedPayload => {
                let (result, cost_ns) = cloud.execute(&prepared.task);
                edge.insert(&prepared.descriptor, &result, i as u64);
                match result {
                    coic::core::TaskResult::Recognition(r) => {
                        println!(
                            "sighting {i}: MISS → cloud inference ({:.1} ms) → label {}",
                            cost_ns as f64 / 1e6,
                            r.label
                        );
                        r.label
                    }
                    _ => unreachable!("recognition task yields recognition result"),
                }
            }
            other => panic!("unexpected edge reply {other:?}"),
        };

        // Render the 3D annotation the AR app overlays for this label: a
        // spinning marker whose shape is picked by the recognized class.
        if i == 2 {
            println!("\nannotation for label {label} (software rasterizer):\n");
            let mut scene = Scene::new();
            let mesh = match label % 3 {
                0 => procgen::uv_sphere(12, 18),
                1 => procgen::avatar(1),
                _ => procgen::cube(),
            };
            let id = scene.add_model(mesh);
            scene.add_instance(id, Mat4::rotate_y(0.6));
            let camera = Camera {
                eye: Vec3::new(0.0, 0.8, 3.2),
                ..Camera::default()
            };
            let mut fb = Framebuffer::new(56, 40);
            let stats = scene.render(&camera, &mut fb);
            ascii(&fb);
            println!(
                "\n({} triangles submitted, {} drawn, {} pixels shaded)",
                stats.triangles_in, stats.triangles_drawn, stats.pixels_shaded
            );
            // Also render a high-res version to an actual image file.
            let mut hi = Framebuffer::new(512, 512);
            scene.render(&camera, &mut hi);
            let path = std::env::temp_dir().join("coic_annotation.pgm");
            if coic::render::write_framebuffer_pgm(&path, &hi).is_ok() {
                println!("(512×512 render written to {})", path.display());
            }
        }
    }

    let stats = edge.recog_metrics();
    println!(
        "\nedge recognition cache: {} hits / {} lookups ({:.0}% hit ratio)",
        stats.hits,
        stats.lookups(),
        stats.hit_ratio() * 100.0
    );
}

//! Minimal 3D math: vectors, 4×4 matrices, and the transforms a software
//! rasterizer needs. Self-contained (no external linear-algebra crate) and
//! deliberately small — only what the rendering substrate uses.

use serde::{Deserialize, Serialize};

/// A 3-component vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

/// A 4-component homogeneous vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec4 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
    /// w component.
    pub w: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit-length copy; the zero vector normalizes to itself.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len == 0.0 {
            self
        } else {
            self * (1.0 / len)
        }
    }

    /// Extend to homogeneous coordinates with the given w.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4 {
            x: self.x,
            y: self.y,
            z: self.z,
            w,
        }
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl std::ops::Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Vec4 {
    /// Construct from components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Perspective divide to 3D; w must be nonzero.
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "perspective divide by zero w");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }

    /// Drop the w component.
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

/// Row-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Row-major elements: `m[row][col]`.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        m: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Translation matrix.
    pub fn translate(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    /// Non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.m[0][0] = s.x;
        m.m[1][1] = s.y;
        m.m[2][2] = s.z;
        m
    }

    /// Rotation about the x axis by `a` radians.
    pub fn rotate_x(a: f32) -> Mat4 {
        let (s, c) = a.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.m[1][1] = c;
        m.m[1][2] = -s;
        m.m[2][1] = s;
        m.m[2][2] = c;
        m
    }

    /// Rotation about the y axis by `a` radians.
    pub fn rotate_y(a: f32) -> Mat4 {
        let (s, c) = a.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.m[0][0] = c;
        m.m[0][2] = s;
        m.m[2][0] = -s;
        m.m[2][2] = c;
        m
    }

    /// Rotation about the z axis by `a` radians.
    pub fn rotate_z(a: f32) -> Mat4 {
        let (s, c) = a.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.m[0][0] = c;
        m.m[0][1] = -s;
        m.m[1][0] = s;
        m.m[1][1] = c;
        m
    }

    /// Right-handed perspective projection (OpenGL-style clip volume,
    /// z mapped to [-1, 1]).
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn perspective(fov_y_rad: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        assert!(fov_y_rad > 0.0 && aspect > 0.0, "degenerate frustum");
        assert!(near > 0.0 && far > near, "invalid near/far planes");
        let f = 1.0 / (fov_y_rad / 2.0).tan();
        let mut m = Mat4 { m: [[0.0; 4]; 4] };
        m.m[0][0] = f / aspect;
        m.m[1][1] = f;
        m.m[2][2] = (far + near) / (near - far);
        m.m[2][3] = 2.0 * far * near / (near - far);
        m.m[3][2] = -1.0;
        m
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let fwd = (target - eye).normalized();
        let right = fwd.cross(up).normalized();
        let true_up = right.cross(fwd);
        Mat4 {
            m: [
                [right.x, right.y, right.z, -right.dot(eye)],
                [true_up.x, true_up.y, true_up.z, -true_up.dot(eye)],
                [-fwd.x, -fwd.y, -fwd.z, fwd.dot(eye)],
                [0.0, 0.0, 0.0, 1.0],
            ],
        }
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = [[0.0f32; 4]; 4];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = (0..4).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        Mat4 { m: out }
    }

    /// Transform a homogeneous vector.
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        let row = |r: usize| {
            self.m[r][0] * v.x + self.m[r][1] * v.y + self.m[r][2] * v.z + self.m[r][3] * v.w
        };
        Vec4::new(row(0), row(1), row(2), row(3))
    }

    /// Transform a point (w = 1, no perspective divide).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(p.extend(1.0)).truncate()
    }

    /// Transform a direction (w = 0: rotation/scale only).
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec4(d.extend(0.0)).truncate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    fn vec_close(a: Vec3, b: Vec3) -> bool {
        close(a.x, b.x) && close(a.y, b.y) && close(a.z, b.z)
    }

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn cross_product_orthogonal() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn normalize_unit_length() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!(close(v.length(), 1.0));
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn identity_is_neutral() {
        let m = Mat4::rotate_y(0.7).mul(&Mat4::translate(Vec3::new(1.0, 2.0, 3.0)));
        assert_eq!(Mat4::IDENTITY.mul(&m), m);
        assert_eq!(m.mul(&Mat4::IDENTITY), m);
    }

    #[test]
    fn translate_moves_points_not_directions() {
        let t = Mat4::translate(Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(
            t.transform_point(Vec3::new(1.0, 1.0, 1.0)),
            Vec3::new(6.0, 1.0, 1.0)
        );
        assert_eq!(
            t.transform_dir(Vec3::new(1.0, 1.0, 1.0)),
            Vec3::new(1.0, 1.0, 1.0)
        );
    }

    #[test]
    fn rotation_preserves_length() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        for m in [
            Mat4::rotate_x(1.1),
            Mat4::rotate_y(2.2),
            Mat4::rotate_z(0.4),
        ] {
            assert!(close(m.transform_point(v).length(), v.length()));
        }
    }

    #[test]
    fn rotation_composition_matches_sum_of_angles() {
        let a = Mat4::rotate_z(0.3);
        let b = Mat4::rotate_z(0.5);
        let ab = a.mul(&b);
        let direct = Mat4::rotate_z(0.8);
        let p = Vec3::new(1.0, 0.0, 0.0);
        assert!(vec_close(ab.transform_point(p), direct.transform_point(p)));
    }

    #[test]
    fn perspective_maps_axis_to_center() {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        // A point straight ahead on the -z axis projects to NDC origin.
        let clip = proj.mul_vec4(Vec3::new(0.0, 0.0, -10.0).extend(1.0));
        let ndc = clip.project();
        assert!(close(ndc.x, 0.0) && close(ndc.y, 0.0));
        // Near plane maps to z = -1, far to z = +1.
        let near = proj
            .mul_vec4(Vec3::new(0.0, 0.0, -0.1).extend(1.0))
            .project();
        let far = proj
            .mul_vec4(Vec3::new(0.0, 0.0, -100.0).extend(1.0))
            .project();
        assert!(close(near.z, -1.0), "near z {}", near.z);
        assert!(close(far.z, 1.0), "far z {}", far.z);
    }

    #[test]
    fn look_at_centers_target() {
        let view = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let p = view.transform_point(Vec3::ZERO);
        // Target sits straight ahead at distance 5 on the -z axis.
        assert!(vec_close(p, Vec3::new(0.0, 0.0, -5.0)));
    }

    #[test]
    #[should_panic(expected = "invalid near/far")]
    fn perspective_rejects_bad_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 1.0, 0.5);
    }
}

//! Subcommand implementations. Each returns the text to print.

use crate::args::Args;
use coic_core::cluster::ClusterConfig;
use coic_core::engine::{AdmissionConfig, BrownoutConfig};
use coic_core::simrun::{compare as sim_compare, run as sim_run, Mode, SimConfig};
use coic_workload::{
    from_csv, summarize, to_csv, ArenaMultiplayer, FlashCrowd, Population, Request, SafeDrivingAr,
    VrVideo, ZoneId, ZoneModel,
};
use std::fmt::Write as _;
use std::time::Duration;

type CmdResult = Result<String, Box<dyn std::error::Error>>;

// ------------------------------------------------------------------ trace --

/// `trace gen`: generate a workload trace and write it as CSV.
pub fn trace_gen(args: &Args) -> CmdResult {
    let app = args.require("app")?;
    let out = args.require("out")?;
    let users: u32 = args.num("users", 4)?;
    let requests: usize = args.num("requests", 100)?;
    let seed: u64 = args.num("seed", 1)?;
    // `--zones N` spreads users round-robin across N zones (zone k maps to
    // edge k in the simulator) instead of colocating everyone at zone 0 —
    // the multi-edge cluster experiments need cross-edge traffic.
    let zones: u32 = args.num("zones", 1)?;
    let shared: f64 = args.num("shared", 1.0)?;
    let population = if zones > 1 {
        Population::round_robin(users, zones)
    } else {
        Population::colocated(users, ZoneId(0))
    };
    let trace: Vec<Request> = match app {
        "safedriving" => SafeDrivingAr {
            population,
            zones: ZoneModel::new(zones, args.num("pool", 40)?, shared, seed),
            rate_per_sec: args.num("rate", 4.0)?,
            zipf_s: args.num("zipf", 0.7)?,
            total_requests: requests,
        }
        .generate(seed),
        "arena" => {
            let model_kb: u64 = args.num("model-kb", 2048)?;
            let models: Vec<(u64, u64)> = (0..args.num("models", 8)?)
                .map(|i| (i, model_kb * 1024))
                .collect();
            ArenaMultiplayer {
                population,
                models,
                zipf_s: args.num("zipf", 0.9)?,
                rate_per_sec: args.num("rate", 1.0)?,
                total_requests: requests,
            }
            .generate(seed)
        }
        "vrvideo" => VrVideo {
            population,
            frame_interval_ns: 100_000_000,
            max_start_skew_frames: args.num("skew-frames", 0)?,
            user_stagger_ns: args.num("stagger-ms", 25u64)? * 1_000_000,
            frames_per_user: args.num("frames", 20)?,
        }
        .generate(seed),
        "flashcrowd" => FlashCrowd {
            population,
            base_rate_per_sec: args.num("rate", 10.0)?,
            burst_multiplier: args.num("burst-x", 8.0)?,
            burst_start_ns: args.num("burst-start-ms", 500u64)? * 1_000_000,
            burst_len_ns: args.num("burst-ms", 500u64)? * 1_000_000,
            hot_contents: args.num("hot", 8)?,
            zipf_s: args.num("zipf", 1.0)?,
            horizon_ns: args.num("horizon-ms", 2_000u64)? * 1_000_000,
        }
        .generate(seed),
        other => {
            return Err(
                format!("unknown app {other:?} (safedriving|arena|vrvideo|flashcrowd)").into(),
            )
        }
    };
    std::fs::write(out, to_csv(&trace))?;
    let s = summarize(&trace);
    Ok(format!(
        "wrote {} requests ({} unique contents) to {out}",
        s.requests, s.unique_contents
    ))
}

/// `trace info`: summarize a CSV trace.
pub fn trace_info(args: &Args) -> CmdResult {
    let path = args.require("in")?;
    let trace = from_csv(&std::fs::read_to_string(path)?)?;
    let s = summarize(&trace);
    let mut kinds = std::collections::BTreeMap::new();
    for r in &trace {
        *kinds
            .entry(match r.kind {
                coic_workload::RequestKind::Recognition { .. } => "recognition",
                coic_workload::RequestKind::RenderLoad { .. } => "render_load",
                coic_workload::RequestKind::Panorama { .. } => "panorama",
            })
            .or_insert(0u64) += 1;
    }
    let users: std::collections::BTreeSet<_> = trace.iter().map(|r| r.user.0).collect();
    let span_ms = trace.last().map(|r| r.at_ns as f64 / 1e6).unwrap_or(0.0);
    let mut out = String::new();
    writeln!(out, "requests:        {}", s.requests)?;
    writeln!(out, "unique contents: {}", s.unique_contents)?;
    writeln!(out, "users:           {}", users.len())?;
    writeln!(out, "span:            {span_ms:.1} ms")?;
    for (k, n) in kinds {
        writeln!(out, "  {k:<12} {n}")?;
    }
    Ok(out.trim_end().to_string())
}

// -------------------------------------------------------------------- sim --

fn sim_config(args: &Args) -> Result<SimConfig, Box<dyn std::error::Error>> {
    let mut cfg = SimConfig::builder()
        .mode(match args.get("mode").unwrap_or("coic") {
            "coic" => Mode::CoIc,
            "origin" => Mode::Origin,
            other => return Err(format!("unknown mode {other:?} (coic|origin)").into()),
        })
        .access_mbps(args.num("access-mbps", 400.0)?)
        .wan_mbps(args.num("wan-mbps", 50.0)?)
        .num_clients(args.num("clients", 4)?)
        .num_edges(args.num("edges", 1)?)
        .peer_lookup(args.num("peer-lookup", 0u8)? != 0)
        .prefetch_depth(args.num("prefetch", 0)?)
        .seed(args.num("seed", 1)?)
        .build();
    cfg.edge.threshold = args.num("threshold", cfg.edge.threshold)?;
    if let Some(kind) = index_arg(args)? {
        cfg.edge.index = kind;
    }
    cfg.origin_fallback = args.num("origin-fallback", 0u8)? != 0;
    // Cooperative cluster tier: `--peer-fanout K` (K > 0) turns on the
    // consistent-hash cluster — each exact-task miss probes up to K ring
    // peers before forwarding to the cloud. `--replicate N` sets the
    // hot-entry threshold (N requests landing on an edge replicate the
    // entry there; 0 keeps pure partitioning).
    let fanout: u32 = args.num("peer-fanout", 0u32)?;
    if fanout > 0 {
        cfg.cluster = Some(ClusterConfig {
            peer_fanout: fanout,
            replicate_hot: args.num("replicate", ClusterConfig::default().replicate_hot)?,
            ..ClusterConfig::default()
        });
    }
    // Fault injection: `--edge-down MS@EDGE[,MS@EDGE...]` takes the named
    // edges down permanently at the given sim time — the workload the
    // breaker/failover paths (and the trace verifier's breaker-transition
    // and quiet-after invariants) need to see real data.
    if let Some(spec) = args.get("edge-down") {
        for part in spec.split(',') {
            let (ms, edge) = part
                .split_once('@')
                .ok_or_else(|| format!("--edge-down {part:?}: expected MS@EDGE"))?;
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("--edge-down {part:?}: bad milliseconds"))?;
            let edge: u32 = edge
                .parse()
                .map_err(|_| format!("--edge-down {part:?}: bad edge id"))?;
            cfg.edge_down_ms.push((ms, edge));
        }
    }
    // `--open-loop 1` fires requests at their trace timestamps regardless
    // of completions (the arrival model overload experiments need);
    // `--lookup-ms N` pins the edge's per-lookup service time, i.e. its
    // capacity under admission control.
    cfg.closed_loop = args.num("open-loop", 0u8)? == 0;
    cfg.compute.lookup_ns = args.num("lookup-ms", cfg.compute.lookup_ns / 1_000_000)? * 1_000_000;

    // Overload protection: `--admission N` bounds edge concurrency at N
    // (`--admission-aimd 1` instead lets AIMD adapt the limit in 1..=N on
    // the observed sojourn time vs `--latency-target-ms`).
    let admission: u32 = args.num("admission", 0u32)?;
    if admission > 0 {
        let mut a = if args.num("admission-aimd", 0u8)? != 0 {
            AdmissionConfig {
                min_concurrency: 1,
                max_concurrency: admission,
                initial_concurrency: admission,
                ..AdmissionConfig::default()
            }
        } else {
            AdmissionConfig::fixed(admission)
        };
        a.queue_limit = args.num("admission-queue", a.queue_limit)?;
        a.max_queue_age = Duration::from_millis(
            args.num("admission-age-ms", a.max_queue_age.as_millis() as u64)?,
        );
        a.latency_target = Duration::from_millis(
            args.num("latency-target-ms", a.latency_target.as_millis() as u64)?,
        );
        a.retry_after_ms = args.num("retry-after-ms", a.retry_after_ms)?;
        cfg.admission = Some(a);
        if args.num("brownout", 0u8)? != 0 {
            cfg.brownout = Some(BrownoutConfig::default());
        }
    }
    Ok(cfg)
}

fn report_text(label: &str, r: &mut coic_core::QoeReport) -> String {
    format!(
        "{label}: mean {:.1} ms  p50 {:.1} ms  p99 {:.1} ms  hits {:.1}% (local {} / peer {})  \
         WAN {:.2} MB  accuracy {}",
        r.mean_latency_ms(),
        r.latency_ms.median(),
        r.latency_ms.p99(),
        r.hit_ratio() * 100.0,
        r.edge_hits,
        r.peer_hits,
        r.wan_bytes as f64 / 1e6,
        r.accuracy
            .map(|a| format!("{:.1}%", a * 100.0))
            .unwrap_or_else(|| "n/a".into()),
    )
}

/// Parse `--index` when present: the recognition-descriptor index family
/// the edge runs (`linear`/`lsh` on the mutex path, `mp-lsh`/`hnsw` on
/// the snapshot ANN path).
fn index_arg(args: &Args) -> Result<Option<coic_cache::IndexKind>, Box<dyn std::error::Error>> {
    match args.get("index") {
        None => Ok(None),
        Some(name) => coic_cache::IndexKind::parse(name)
            .map(Some)
            .ok_or_else(|| format!("unknown index {name:?} (linear|lsh|mp-lsh|hnsw)").into()),
    }
}

/// When either telemetry export flag is present, return a recording
/// [`Telemetry`] handle; otherwise a disabled one (zero overhead).
fn telemetry_for(args: &Args) -> coic_obs::Telemetry {
    if args.get("trace-out").is_some() || args.get("metrics-out").is_some() {
        coic_obs::Telemetry::new()
    } else {
        coic_obs::Telemetry::disabled()
    }
}

/// Write the JSONL trace / canonical metrics snapshot to the paths named
/// by `--trace-out` / `--metrics-out`; returns a human note per file
/// written (callers in byte-stable output modes discard it).
fn write_telemetry(
    args: &Args,
    tel: &coic_obs::Telemetry,
) -> Result<String, Box<dyn std::error::Error>> {
    let mut notes = String::new();
    if let Some(p) = args.get("trace-out") {
        std::fs::write(p, tel.trace_jsonl())?;
        write!(notes, "\nwrote trace to {p}")?;
    }
    if let Some(p) = args.get("metrics-out") {
        std::fs::write(p, tel.metrics_canonical())?;
        write!(notes, "\nwrote metrics to {p}")?;
    }
    Ok(notes)
}

/// `sim`: run one trace through one system. `--index` picks the edge's
/// descriptor index family (`linear|lsh|mp-lsh|hnsw`). With `--canonical 1` the
/// report is emitted in the canonical byte-stable serialization (sorted
/// keys, fixed precision), so two runs of the same seeded workload can be
/// diffed textually — the CI determinism job does exactly that.
/// `--trace-out`/`--metrics-out` export the unified telemetry: a JSONL
/// trace of the request lifecycle and the registry's canonical snapshot,
/// both byte-identical across runs of the same seed.
pub fn sim(args: &Args) -> CmdResult {
    let trace = from_csv(&std::fs::read_to_string(args.require("in")?)?)?;
    let cfg = sim_config(args)?;
    let tel = telemetry_for(args);
    let mut report = if tel.trace_enabled() {
        coic_core::simrun::run_instrumented(&trace, &cfg, &tel).0
    } else {
        sim_run(&trace, &cfg)
    };
    let notes = write_telemetry(args, &tel)?;
    if args.num("canonical", 0u8)? != 0 {
        // The canonical serialization is diffed byte-for-byte by the CI
        // determinism job — no notes appended.
        return Ok(report.canonical().trim_end().to_string());
    }
    let mut out = report_text(
        if cfg.mode == Mode::CoIc {
            "coic"
        } else {
            "origin"
        },
        &mut report,
    );
    if cfg.admission.is_some() {
        // The number admission control defends: tail latency of the work
        // the edge accepted (shed requests complete via the fallback and
        // are excluded here, but still count in the overall p99 above).
        out.push_str(&format!(
            "  admitted-p99 {:.1} ms",
            report.admitted_p99_ms()
        ));
    }
    out.push_str(&notes);
    Ok(out)
}

// ------------------------------------------------------------------- live --

/// `live`: replay a CSV trace through the real TCP loopback stack — a
/// spawned cloud process, one edge with sharded exact caches and the
/// snapshot/mutex descriptor index picked by `--index`, and a blocking
/// client with origin fallback — then print the same QoE report shape the
/// simulator emits. `--driver` selects the edge's IO driver
/// (`threads` per-connection, or the readiness-driven `evloop`).
/// `--trace-out`/`--metrics-out` export the unified telemetry with the
/// same event vocabulary as `coic sim` (timestamps are wall clock here,
/// so unlike the simulator the trace bytes vary between runs).
pub fn live(args: &Args) -> CmdResult {
    use coic_core::netrun::{spawn_cloud, spawn_edge_with, NetClient, NetConfig};
    use coic_core::{
        ClientConfig, ComputeConfig, DriverKind, EdgeConfig, ModelLibrary, PanoLibrary,
    };
    use coic_vision::ObjectClass;
    use std::sync::Arc;

    let trace = from_csv(&std::fs::read_to_string(args.require("in")?)?)?;
    let seed: u64 = args.num("seed", 1)?;
    let driver = match args.get("driver") {
        Some(text) => DriverKind::parse(text)
            .ok_or_else(|| format!("--driver must be threads or evloop, got '{text}'"))?,
        None => DriverKind::default(),
    };
    let tel = telemetry_for(args);
    // The cloud must know every class the trace can ask for.
    let classes: Vec<ObjectClass> = {
        let max = trace
            .iter()
            .filter_map(|r| match r.kind {
                coic_workload::RequestKind::Recognition { class, .. } => Some(class),
                _ => None,
            })
            .max();
        (0..=max.unwrap_or(0)).map(ObjectClass).collect()
    };
    let models = Arc::new(ModelLibrary::new());
    let panos = Arc::new(PanoLibrary::new(64));
    let compute = ComputeConfig::default();
    let cloud = spawn_cloud(&classes, 64, compute, models.clone(), panos.clone(), seed)?;
    let net = NetConfig::builder()
        .telemetry(tel.clone())
        .driver(driver)
        .build();
    let mut edge_cfg = EdgeConfig::default();
    if let Some(kind) = index_arg(args)? {
        edge_cfg.index = kind;
    }
    let edge = spawn_edge_with(cloud.addr(), &edge_cfg, net.clone(), None)?;
    let mut client = NetClient::connect_with(
        edge.addr(),
        Some(cloud.addr()),
        net,
        ClientConfig::default(),
        compute,
        models,
        panos,
    )?;
    let mut failed = 0u64;
    for r in &trace {
        if client.execute(r).is_err() {
            failed += 1;
        }
    }
    client.publish_metrics(tel.registry());
    edge.publish_metrics(tel.registry());
    let mut out = report_text("live", &mut client.report());
    if failed > 0 {
        write!(out, "  failed {failed}")?;
    }
    out.push_str(&write_telemetry(args, &tel)?);
    Ok(out)
}

// -------------------------------------------------------------------- obs --

/// `obs report`: human summary of telemetry exports — per-name record
/// counts and span balance for a JSONL trace (`--trace`), section counts
/// plus the sorted snapshot for a canonical metrics file (`--metrics`).
pub fn obs_report(args: &Args) -> CmdResult {
    let mut out = String::new();
    if let Some(p) = args.get("trace") {
        out.push_str(&coic_obs::report::summarize_trace(
            &std::fs::read_to_string(p)?,
        ));
    }
    if let Some(p) = args.get("metrics") {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&coic_obs::report::summarize_metrics(
            &std::fs::read_to_string(p)?,
        ));
    }
    if out.is_empty() {
        return Err("obs report needs --trace FILE and/or --metrics FILE".into());
    }
    Ok(out)
}

/// `compare`: origin vs CoIC on the same trace.
pub fn compare(args: &Args) -> CmdResult {
    let trace = from_csv(&std::fs::read_to_string(args.require("in")?)?)?;
    let cfg = sim_config(args)?;
    let (mut origin, mut coic, red) = sim_compare(&trace, &cfg);
    Ok(format!(
        "{}\n{}\nlatency reduction: {red:.2}%",
        report_text("origin", &mut origin),
        report_text("coic  ", &mut coic)
    ))
}

// ------------------------------------------------------------------ model --

/// `model gen`: write a procedurally generated CMF model.
pub fn model_gen(args: &Args) -> CmdResult {
    let size: u64 = args.num_required("size-bytes")?;
    let seed: u64 = args.num("seed", 1)?;
    let out = args.require("out")?;
    let mesh = coic_render::procgen::model_of_size(size, seed);
    let bytes = coic_render::encode(&mesh);
    std::fs::write(out, &bytes)?;
    Ok(format!(
        "wrote {:?}: {} bytes, {} vertices, {} triangles",
        mesh.name,
        bytes.len(),
        mesh.vertices.len(),
        mesh.triangle_count()
    ))
}

/// `model info`: parse and describe a CMF file.
pub fn model_info(args: &Args) -> CmdResult {
    let path = args.require("in")?;
    let bytes = std::fs::read(path)?;
    let mesh = coic_render::decode(&bytes)?;
    let digest = coic_cache::Digest::of(&bytes);
    let bb = mesh.aabb().expect("valid mesh has vertices");
    Ok(format!(
        "name:      {}\nbytes:     {}\nvertices:  {}\ntriangles: {}\naabb:      \
         ({:.2},{:.2},{:.2})..({:.2},{:.2},{:.2})\nsha256:    {}",
        mesh.name,
        bytes.len(),
        mesh.vertices.len(),
        mesh.triangle_count(),
        bb.min.x,
        bb.min.y,
        bb.min.z,
        bb.max.x,
        bb.max.y,
        bb.max.z,
        digest.to_hex()
    ))
}

/// `model render`: rasterize a CMF file to a PGM image.
pub fn model_render(args: &Args) -> CmdResult {
    use coic_render::{Camera, Framebuffer, Mat4, Scene, Vec3};
    let bytes = std::fs::read(args.require("in")?)?;
    let out = args.require("out")?;
    let size: u32 = args.num("size", 256)?;
    let mesh = coic_render::decode(&bytes)?;
    // Frame the model: fit its bounding box into view.
    let bb = mesh.aabb().expect("valid mesh has vertices");
    let center = (bb.min + bb.max) * 0.5;
    let extent = (bb.max - bb.min).length().max(1e-3);
    let mut scene = Scene::new();
    let id = scene.add_model(mesh);
    scene.add_instance(id, Mat4::translate(-center));
    let camera = Camera {
        eye: Vec3::new(0.6, 0.6, 1.2) * extent,
        target: Vec3::ZERO,
        far: extent * 10.0,
        ..Camera::default()
    };
    let mut fb = Framebuffer::new(size, size);
    let stats = scene.render(&camera, &mut fb);
    coic_render::write_framebuffer_pgm(out, &fb)?;
    Ok(format!(
        "rendered {} triangles ({} pixels shaded) to {out}",
        stats.triangles_drawn, stats.pixels_shaded
    ))
}

// ------------------------------------------------------------------- hash --

/// `hash`: SHA-256 content digest of a file — the exact key the edge cache
/// would use for it.
pub fn hash(args: &Args) -> CmdResult {
    let path = args.require("in")?;
    let bytes = std::fs::read(path)?;
    let digest = coic_cache::Digest::of(&bytes);
    Ok(format!(
        "{}  {path} ({} bytes)",
        digest.to_hex(),
        bytes.len()
    ))
}

// ------------------------------------------------------------------- pano --

/// `pano gen`: synthesize a panorama frame to PGM.
pub fn pano_gen(args: &Args) -> CmdResult {
    let frame: u64 = args.num_required("frame")?;
    let height: u32 = args.num("height", 256)?;
    let out = args.require("out")?;
    let pano = coic_render::Panorama::synthesize(frame, height);
    coic_render::write_pgm(out, pano.width(), pano.height(), pano.bytes())?;
    Ok(format!(
        "wrote frame {frame}: {}×{} equirect to {out}",
        pano.width(),
        pano.height()
    ))
}

/// `pano crop`: crop a viewport from a panorama frame to PGM.
pub fn pano_crop(args: &Args) -> CmdResult {
    let frame: u64 = args.num_required("frame")?;
    let yaw: f64 = args.num_required("yaw")?;
    let pitch: f64 = args.num_required("pitch")?;
    let fov: f64 = args.num("fov", 1.4)?;
    let w: u32 = args.num("width", 256)?;
    let h: u32 = args.num("height", 144)?;
    let out = args.require("out")?;
    let pano = coic_render::Panorama::synthesize(frame, 256);
    let crop = pano.crop_viewport(yaw, pitch, fov, w, h);
    coic_render::write_pgm(out, w, h, &crop)?;
    Ok(format!(
        "wrote {w}×{h} viewport (yaw {yaw}, pitch {pitch}) to {out}"
    ))
}

// ------------------------------------------------------------------ bench --

// ------------------------------------------------------------------- lint --

/// `lint`: run the in-tree static analysis pass over the workspace (see
/// `analyze/rules.toml` and DESIGN.md §11). Prints findings and errors —
/// so the process exits nonzero — when any rule fires.
pub fn lint(args: &Args) -> CmdResult {
    let root = std::path::PathBuf::from(args.get("root").unwrap_or("."));
    let rules = match args.get("rules") {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join("analyze").join("rules.toml"),
    };
    let mut out = String::new();
    let clean = coic_analyze::run_lint(&root, &rules, &mut out)?;
    if clean {
        Ok(out)
    } else {
        Err(out.into())
    }
}

/// `analyze trace`: verify an exported decision trace + canonical
/// metrics snapshot against the declarative invariants in
/// `analyze/trace_invariants.toml` (see DESIGN.md §16). Prints one line
/// per invariant; exits nonzero when any invariant is violated.
pub fn analyze_trace(args: &Args) -> CmdResult {
    let root = std::path::PathBuf::from(args.get("root").unwrap_or("."));
    let trace = std::path::PathBuf::from(args.require("trace")?);
    let metrics = std::path::PathBuf::from(args.require("metrics")?);
    let invariants = match args.get("invariants") {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join("analyze").join("trace_invariants.toml"),
    };
    let mut out = String::new();
    let clean = coic_analyze::run_trace_check(&trace, &metrics, &invariants, &mut out)?;
    if clean {
        Ok(out)
    } else {
        Err(out.into())
    }
}

/// `bench`: run the edge/cache performance harness and write the
/// canonical `BENCH_edge.json` report. The concurrency grid is fixed at
/// 1/4/16 threads (the canonical counts EXPERIMENTS.md tabulates).
/// `--quick` shrinks op counts for CI smoke runs; `--seed` fixes every
/// random stream.
/// `--trace-out`/`--metrics-out` export the unified telemetry of the
/// loopback edge cell (same vocabulary as `coic sim` / `coic live`).
pub fn bench(args: &Args) -> CmdResult {
    if args.switch("load") {
        return bench_load(args);
    }
    let quick = args.switch("quick");
    let seed: u64 = args.num("seed", 7)?;
    let runs: usize = args.num("runs", 1)?;
    if runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    let out = args.get("out").unwrap_or("BENCH_edge.json");
    let tel = telemetry_for(args);
    // `--runs N` merges N grid runs into a conservative envelope (minimum
    // throughput, maximum percentiles) — how bench/baseline.json is
    // refreshed; CI's fresh run uses the default single run.
    let report = coic_bench::perf::conservative_merge(
        (0..runs)
            .map(|_| coic_bench::perf::run_bench_with(quick, seed, &tel))
            .collect(),
    );
    report.write(std::path::Path::new(out))?;
    let mut text = String::new();
    writeln!(
        text,
        "{:<24} {:>5} {:>7} {:>10} {:>10} {:>10} {:>12} {:>6}",
        "workload", "index", "threads", "p50 ns", "p95 ns", "p99 ns", "ops/s", "hit%"
    )?;
    for c in &report.results {
        writeln!(
            text,
            "{:<24} {:>5} {:>7} {:>10} {:>10} {:>10} {:>12.0} {:>5.1}%",
            c.workload,
            c.index,
            c.threads,
            c.p50_ns,
            c.p95_ns,
            c.p99_ns,
            c.throughput_ops_per_sec,
            c.hit_ratio * 100.0
        )?;
    }
    writeln!(
        text,
        "sharded-vs-mutex exact-lookup speedup: {:.2}×  (rev {}, seed {seed}{})",
        report.speedup_sharded_vs_mutex,
        report.git_rev,
        if quick { ", quick" } else { "" }
    )?;
    writeln!(
        text,
        "snapshot-vs-mutex approx-lookup speedup: {:.2}×  (default ANN family at top thread count)",
        report.speedup_snapshot_vs_mutex,
    )?;
    // Snapshot-index telemetry aggregated over the approx cells — the
    // same `index.*` keys `coic obs report --metrics` summarizes when
    // `--metrics-out` is given.
    let reg = tel.registry();
    let lookups = reg.counter("index.lookup");
    if lookups > 0 {
        writeln!(
            text,
            "index telemetry: {:.2} probes/lookup, {} rebuilds, {} entries folded, \
             journal depth {}",
            reg.counter("index.probe_count") as f64 / lookups as f64,
            reg.counter("index.rebuild"),
            reg.counter("index.folded"),
            reg.gauge("index.journal_depth"),
        )?;
    }
    write!(text, "wrote {out}")?;
    text.push_str(&write_telemetry(args, &tel)?);
    Ok(text)
}

/// `bench --load`: the live-scale load harness (see DESIGN.md §17).
/// `--load-clients` simulated clients each issue `--load-reqs` requests,
/// multiplexed over every connection-pool size in `--conns`, against a
/// fresh loopback edge per `--drivers` entry. Emits the canonical
/// `BENCH_live.json` (connection-count vs p99 curves) and, with
/// `--ledger-out`, the deterministic reply ledger the CI lane diffs
/// byte-for-byte between two seeded runs.
fn bench_load(args: &Args) -> CmdResult {
    use coic_core::DriverKind;

    let parse_list = |text: &str, what: &str| -> Result<Vec<usize>, String> {
        text.split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad {what} entry '{t}': {e}"))
            })
            .collect()
    };
    let conns = parse_list(args.get("conns").unwrap_or("64,256,1000"), "--conns")?;
    if conns.is_empty() || conns.contains(&0) {
        return Err("--conns needs at least one nonzero pool size".into());
    }
    let drivers = args
        .get("drivers")
        .unwrap_or("threads,evloop")
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            DriverKind::parse(t.trim())
                .ok_or_else(|| format!("--drivers entries must be threads or evloop, got '{t}'"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if drivers.is_empty() {
        return Err("--drivers needs at least one driver".into());
    }
    let cfg = coic_bench::load::LoadConfig {
        clients: args.num("load-clients", 10_000usize)?,
        reqs_per_client: args.num("load-reqs", 2usize)?,
        conns,
        drivers,
        seed: args.num("seed", 7u64)?,
    };
    if cfg.clients == 0 || cfg.reqs_per_client == 0 {
        return Err("--load-clients and --load-reqs must be at least 1".into());
    }
    let out = args.get("out").unwrap_or("BENCH_live.json");
    let report = coic_bench::load::run_load(&cfg);
    report.write(std::path::Path::new(out))?;

    let mut text = String::new();
    writeln!(
        text,
        "{} simulated clients x {} reqs, seed {}",
        cfg.clients, cfg.reqs_per_client, cfg.seed
    )?;
    writeln!(
        text,
        "{:<8} {:>6} {:>8} {:>5} {:>11} {:>11} {:>11} {:>10} {:>6}",
        "driver", "conns", "ops", "hung", "p50 ns", "p95 ns", "p99 ns", "ops/s", "hit%"
    )?;
    for c in &report.results {
        writeln!(
            text,
            "{:<8} {:>6} {:>8} {:>5} {:>11} {:>11} {:>11} {:>10.0} {:>5.1}%",
            c.driver,
            c.conns,
            c.ops,
            c.hung,
            c.p50_ns,
            c.p95_ns,
            c.p99_ns,
            c.throughput_ops_per_sec,
            c.hit_ratio * 100.0
        )?;
    }
    if let Some(p) = args.get("ledger-out") {
        std::fs::write(p, report.ledger_text())?;
        writeln!(text, "wrote ledger to {p}")?;
    }
    write!(text, "wrote {out}")?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("coic_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn lint_flags_fixtures_and_passes_the_workspace() {
        let ws = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap();
        let fixtures = ws.join("crates/analyze/fixtures");
        // The deliberately-violating fixture tree must fail…
        let err = lint(&args(&format!(
            "--root {} --rules {}",
            fixtures.display(),
            fixtures.join("rules.toml").display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("finding(s)"), "{err}");
        // …and the workspace itself must pass under its own rules.
        let ok = lint(&args(&format!("--root {}", ws.display()))).unwrap();
        assert!(ok.contains("lint clean"), "{ok}");
    }

    #[test]
    fn analyze_trace_validates_a_seeded_cluster_run() {
        let ws = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap();
        let path = tmp("t_cluster.csv");
        trace_gen(&args(&format!(
            "--app arena --out {path} --users 12 --requests 400"
        )))
        .unwrap();
        let (t, m) = (tmp("cluster.jsonl"), tmp("cluster.metrics"));
        sim(&args(&format!(
            "--in {path} --clients 12 --edges 16 --peer-fanout 3 --replicate 2 \
             --seed 7 --edge-down 100@3 --trace-out {t} --metrics-out {m}"
        )))
        .unwrap();
        // The scenario exercises the paths the invariants pin: peer
        // probes, a mid-run edge failure (quiet-after + the probe
        // excuse), and enough timeouts to trip a breaker.
        let trace = std::fs::read_to_string(&t).unwrap();
        assert!(trace.contains("\"n\":\"edge.down\""), "no edge failure");
        assert!(
            trace.contains("\"n\":\"cluster.peer_state\""),
            "no breaker trip"
        );
        let out = analyze_trace(&args(&format!(
            "--root {} --trace {t} --metrics {m}",
            ws.display()
        )))
        .unwrap();
        assert!(out.contains("trace clean"), "{out}");
        assert!(out.contains("ok probe-terminal"), "{out}");
        // The corrupted fixture must fail loudly through the same entry
        // point CI uses.
        let fixtures = ws.join("crates/analyze/fixtures/trace");
        let err = analyze_trace(&args(&format!(
            "--trace {} --metrics {} --invariants {}",
            fixtures.join("corrupt.jsonl").display(),
            fixtures.join("corrupt_metrics.txt").display(),
            fixtures.join("invariants.toml").display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("trace violation(s)"), "{err}");
    }

    #[test]
    fn trace_gen_info_roundtrip() {
        let path = tmp("t1.csv");
        let msg = trace_gen(&args(&format!(
            "--app safedriving --out {path} --users 2 --requests 30"
        )))
        .unwrap();
        assert!(msg.contains("30 requests"));
        let info = trace_info(&args(&format!("--in {path}"))).unwrap();
        assert!(info.contains("requests:        30"));
        assert!(info.contains("recognition"));
    }

    #[test]
    fn sim_and_compare_run_end_to_end() {
        let path = tmp("t2.csv");
        trace_gen(&args(&format!(
            "--app arena --out {path} --users 2 --requests 10 --model-kb 256"
        )))
        .unwrap();
        let out = sim(&args(&format!("--in {path} --clients 2"))).unwrap();
        assert!(out.contains("mean"));
        let out = compare(&args(&format!("--in {path} --clients 2"))).unwrap();
        assert!(out.contains("latency reduction"));
    }

    #[test]
    fn sim_canonical_output_is_reproducible() {
        let path = tmp("t4.csv");
        trace_gen(&args(&format!(
            "--app vrvideo --out {path} --users 2 --frames 5"
        )))
        .unwrap();
        let a = sim(&args(&format!("--in {path} --clients 2 --canonical 1"))).unwrap();
        let b = sim(&args(&format!("--in {path} --clients 2 --canonical 1"))).unwrap();
        assert_eq!(a, b, "same seed must serialize identically");
        assert!(a.contains("completed="));
        assert!(a.contains("latency mean="));
    }

    #[test]
    fn sim_trace_and_metrics_exports_are_reproducible() {
        let path = tmp("t5.csv");
        trace_gen(&args(&format!(
            "--app vrvideo --out {path} --users 2 --frames 5"
        )))
        .unwrap();
        let run = |tag: &str| {
            let (t, m) = (tmp(&format!("{tag}.jsonl")), tmp(&format!("{tag}.metrics")));
            sim(&args(&format!(
                "--in {path} --clients 2 --seed 7 --trace-out {t} --metrics-out {m}"
            )))
            .unwrap();
            (
                std::fs::read_to_string(t).unwrap(),
                std::fs::read_to_string(m).unwrap(),
            )
        };
        let (trace_a, metrics_a) = run("a");
        let (trace_b, metrics_b) = run("b");
        assert_eq!(trace_a, trace_b, "seeded traces must be byte-identical");
        assert_eq!(metrics_a, metrics_b, "snapshots must be byte-identical");
        assert!(trace_a.contains("\"n\":\"request\""), "{trace_a}");
        assert!(trace_a.contains("\"n\":\"edge.lookup\""), "{trace_a}");
        assert!(metrics_a.contains("counter qoe.completed"), "{metrics_a}");
        assert!(metrics_a.contains("hist qoe.latency_ns"), "{metrics_a}");
    }

    #[test]
    fn overload_sim_sheds_and_exports_reproducibly() {
        let path = tmp("t_crowd.csv");
        trace_gen(&args(&format!(
            "--app flashcrowd --out {path} --users 8 --rate 40 --burst-x 20 \
             --burst-start-ms 200 --burst-ms 300 --horizon-ms 800 --seed 3"
        )))
        .unwrap();
        let run = |tag: &str| {
            let (t, m) = (tmp(&format!("{tag}.jsonl")), tmp(&format!("{tag}.metrics")));
            sim(&args(&format!(
                "--in {path} --clients 8 --seed 7 --origin-fallback 1 \
                 --admission 1 --admission-queue 1 --admission-age-ms 5 \
                 --brownout 1 --trace-out {t} --metrics-out {m}"
            )))
            .unwrap();
            (
                std::fs::read_to_string(t).unwrap(),
                std::fs::read_to_string(m).unwrap(),
            )
        };
        let (trace_a, metrics_a) = run("crowd_a");
        let (trace_b, metrics_b) = run("crowd_b");
        assert_eq!(
            trace_a, trace_b,
            "seeded shed traces must be byte-identical"
        );
        assert_eq!(metrics_a, metrics_b, "snapshots must be byte-identical");
        assert!(trace_a.contains("\"n\":\"edge.admitted\""), "{metrics_a}");
        assert!(trace_a.contains("\"n\":\"edge.shed\""), "{metrics_a}");
        assert!(metrics_a.contains("counter robustness.shed"), "{metrics_a}");
    }

    #[test]
    fn obs_report_summarizes_exports() {
        let path = tmp("t6.csv");
        trace_gen(&args(&format!(
            "--app vrvideo --out {path} --users 2 --frames 3"
        )))
        .unwrap();
        let (t, m) = (tmp("r.jsonl"), tmp("r.metrics"));
        sim(&args(&format!(
            "--in {path} --clients 2 --trace-out {t} --metrics-out {m}"
        )))
        .unwrap();
        let out = obs_report(&args(&format!("--trace {t} --metrics {m}"))).unwrap();
        assert!(out.contains("trace records:"), "{out}");
        assert!(out.contains("decision.complete"), "{out}");
        assert!(out.contains("counters"), "{out}");
        assert!(obs_report(&args("")).is_err());
    }

    #[test]
    fn live_replays_a_trace_and_exports_telemetry() {
        let path = tmp("t7.csv");
        trace_gen(&args(&format!(
            "--app vrvideo --out {path} --users 1 --frames 3"
        )))
        .unwrap();
        let (t, m) = (tmp("l.jsonl"), tmp("l.metrics"));
        let out = live(&args(&format!(
            "--in {path} --trace-out {t} --metrics-out {m}"
        )))
        .unwrap();
        assert!(out.contains("live:"), "{out}");
        let trace = std::fs::read_to_string(t).unwrap();
        assert!(trace.contains("\"n\":\"request\""), "{trace}");
        assert!(trace.contains("\"n\":\"edge.lookup\""), "{trace}");
        let metrics = std::fs::read_to_string(m).unwrap();
        assert!(metrics.contains("counter qoe.completed"), "{metrics}");
        assert!(metrics.contains("counter cache.exact.hits"), "{metrics}");
    }

    #[test]
    fn live_runs_on_the_event_loop_driver() {
        let path = tmp("t7e.csv");
        trace_gen(&args(&format!(
            "--app vrvideo --out {path} --users 1 --frames 3"
        )))
        .unwrap();
        let m = tmp("le.metrics");
        let out = live(&args(&format!(
            "--in {path} --driver evloop --metrics-out {m}"
        )))
        .unwrap();
        assert!(out.contains("live:"), "{out}");
        // The loop.* counters prove the event loop actually served it.
        let metrics = std::fs::read_to_string(m).unwrap();
        assert!(metrics.contains("counter loop.frames"), "{metrics}");
        assert!(
            live(&args(&format!("--in {path} --driver bogus"))).is_err(),
            "bad driver spelling must be rejected"
        );
    }

    #[test]
    fn bench_load_emits_canonical_report_and_seeded_ledger() {
        let out_json = tmp("bl.json");
        let run = |ledger: &str| {
            bench_load(&args(&format!(
                "--load-clients 60 --load-reqs 1 --conns 4 --drivers threads,evloop \
                 --seed 11 --out {out_json} --ledger-out {ledger}"
            )))
            .unwrap()
        };
        let l1 = tmp("bl1.ledger");
        let l2 = tmp("bl2.ledger");
        let text = run(&l1);
        assert!(text.contains("evloop"), "{text}");
        assert!(text.contains("wrote"), "{text}");
        run(&l2);
        // The CI lane's contract: two seeded runs, byte-identical ledger.
        let a = std::fs::read_to_string(&l1).unwrap();
        let b = std::fs::read_to_string(&l2).unwrap();
        assert_eq!(a, b, "seeded load ledgers must be byte-identical");
        assert!(a.contains("driver=evloop conns=4 ops=60"), "{a}");
        // And the JSON round-trips through the canonical parser.
        let report = coic_bench::load::LiveReport::load(std::path::Path::new(&out_json)).unwrap();
        assert_eq!(report.results.len(), 2);
        assert!(coic_bench::load::check_live_gate(&report, 25.0)
            .failures
            .is_empty());
    }

    #[test]
    fn model_gen_info_render_pipeline() {
        let cmf = tmp("m.cmf");
        let pgm = tmp("m.pgm");
        let msg = model_gen(&args(&format!("--size-bytes 120000 --out {cmf} --seed 5"))).unwrap();
        assert!(msg.contains("vertices"));
        let info = model_info(&args(&format!("--in {cmf}"))).unwrap();
        assert!(info.contains("sha256"));
        let rendered = model_render(&args(&format!("--in {cmf} --out {pgm} --size 64"))).unwrap();
        assert!(rendered.contains("rendered"));
        let (w, h, _) = coic_render::decode_pgm(&std::fs::read(&pgm).unwrap()).unwrap();
        assert_eq!((w, h), (64, 64));
    }

    #[test]
    fn pano_gen_and_crop() {
        let p1 = tmp("p.pgm");
        let p2 = tmp("v.pgm");
        pano_gen(&args(&format!("--frame 7 --out {p1} --height 64"))).unwrap();
        let (w, _, _) = coic_render::decode_pgm(&std::fs::read(&p1).unwrap()).unwrap();
        assert_eq!(w, 128);
        pano_crop(&args(&format!(
            "--frame 7 --yaw 1.0 --pitch 0.1 --out {p2} --width 80 --height 45"
        )))
        .unwrap();
        let (w, h, _) = coic_render::decode_pgm(&std::fs::read(&p2).unwrap()).unwrap();
        assert_eq!((w, h), (80, 45));
    }

    #[test]
    fn hash_matches_digest() {
        let path = tmp("h.bin");
        std::fs::write(&path, b"abc").unwrap();
        let out = hash(&args(&format!("--in {path}"))).unwrap();
        // FIPS vector for "abc".
        assert!(out.starts_with("ba7816bf8f01cfea414140de5dae2223"));
        assert!(out.contains("(3 bytes)"));
    }

    #[test]
    fn dispatch_and_usage() {
        assert!(crate::run(vec![]).unwrap().contains("USAGE"));
        assert!(crate::run(vec!["help".into()]).unwrap().contains("USAGE"));
        assert!(crate::run(vec!["frobnicate".into()]).is_err());
    }

    #[test]
    fn bad_app_and_mode_errors() {
        let path = tmp("t3.csv");
        assert!(trace_gen(&args(&format!("--app nope --out {path}"))).is_err());
        trace_gen(&args(&format!(
            "--app vrvideo --out {path} --users 2 --frames 5"
        )))
        .unwrap();
        assert!(sim(&args(&format!("--in {path} --mode warp"))).is_err());
    }
}

//! The sans-IO orchestration engine shared by the simulator and the live
//! TCP stack.
//!
//! Everything that *decides* — retry budgets, backoff, deadline expiry,
//! degrade-to-origin, edge re-probing, miss coalescing, circuit breaking —
//! lives here as clock-agnostic state machines. Everything that *does* —
//! sockets, virtual links, timers, sleeps — lives in the drivers
//! ([`crate::simrun`] and [`crate::netrun`]), which translate engine
//! [`Effect`]s into IO and feed IO outcomes back as events.
//!
//! The split buys three things:
//!
//! 1. **No duplicated policy.** `RetryPolicy` consumption, the
//!    degrade/re-probe ladder, and breaker transitions exist once, in this
//!    module, instead of once per stack.
//! 2. **Determinism.** Under a virtual clock ([`SimClock`]) the engine is a
//!    pure function of its event sequence; the same seeded workload and
//!    [`FaultSchedule`] traverse byte-identical [`Decision`] traces in the
//!    simulator and the live loopback stack.
//! 3. **Testability.** State-machine invariants (terminal states are
//!    quiet, armed timers are fired or superseded) are checked directly,
//!    without sockets or sleeps.
//!
//! ```text
//!   driver events                    engine                   effects
//!   ─────────────       ──────────────────────────────       ─────────
//!   begin(req)     ──▶  ┌──────────────────────────────┐ ──▶ ArmTimer(Prep)
//!   on_timer       ──▶  │ Prep → EdgeInFlight ⇄ Backoff │ ──▶ SendQuery/ArmTimer
//!   on_reply       ──▶  │   ↓ exhausted      ↓ reply    │ ──▶ SendUpload
//!   on_transport_  ──▶  │ Degrade → Origin → Done/Fail  │ ──▶ SendOrigin
//!     failure           │   ↑ probe ok                  │ ──▶ ProbeEdge
//!   on_probe_result──▶  └──────────────────────────────┘ ──▶ Complete/GiveUp
//! ```

pub mod admission;
pub mod breaker;
pub mod brownout;
pub mod client;
pub mod clock;
pub mod edge;
pub mod fault;
pub mod flight;
pub mod retry;
pub mod stats;
mod sync;

pub use admission::{AdmissionConfig, AdmissionController, Admit, Drain};
pub use breaker::{BreakerState, CircuitBreaker};
pub use brownout::{BrownoutConfig, BrownoutLadder, BrownoutState, OverloadControl, Verdict};
pub use client::{ClientEngine, Decision, Effect, EngineConfig, ReplyKind, TimerKind};
pub use clock::{Clock, SimClock, WallClock};
pub use edge::UpstreamGate;
pub use fault::FaultSchedule;
pub use flight::{FlightClaim, ShardedSingleFlight, SingleFlight};
pub use retry::RetryPolicy;
pub use stats::{RobustnessSnapshot, RobustnessStats};

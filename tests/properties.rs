//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use coic::cache::{
    ApproxCache, ApproxLookup, CountMinSketch, Digest, ExactCache, IndexKind, PolicyKind, Store,
    TinyLfuConfig,
};
use coic::core::{FeatureDescriptor, Msg, RecognitionResult, RetryPolicy, TaskRequest, TaskResult};
use coic::netsim::{Link, LinkParams, SimDuration, SimTime, TxOutcome};
use coic::render::{decode as cmf_decode, encode as cmf_encode, Mesh, Vertex};
use coic::vision::{distance, FeatureVec, Image};
use coic::workload::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

// ---------------------------------------------------------------- cache --

proptest! {
    /// A store never exceeds its byte capacity, whatever the operation mix.
    #[test]
    fn store_capacity_never_exceeded(
        ops in prop::collection::vec((0u8..3, 0u64..40, 1u64..64), 1..200),
        capacity in 64u64..512,
    ) {
        let mut store: Store<u64, u64> = Store::new(capacity, PolicyKind::Lru, None);
        for (i, (op, key, size)) in ops.into_iter().enumerate() {
            match op {
                0 => { store.insert(key, key, size, i as u64); }
                1 => { store.get(&key, i as u64); }
                _ => { store.remove(&key); }
            }
            prop_assert!(store.used_bytes() <= capacity);
        }
    }

    /// Whatever was inserted and not evicted/replaced is retrievable with
    /// the exact value, under every policy.
    #[test]
    fn store_get_returns_last_inserted_value(
        pairs in prop::collection::vec((0u64..20, 0u64..1000), 1..60),
        policy_idx in 0usize..5,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        // Capacity large enough that nothing is ever evicted.
        let mut store: Store<u64, u64> = Store::new(1 << 20, policy, None);
        let mut model = std::collections::HashMap::new();
        for (i, (k, v)) in pairs.into_iter().enumerate() {
            store.insert(k, v, 8, i as u64);
            model.insert(k, v);
        }
        for (k, v) in model {
            prop_assert_eq!(store.get(&k, u64::MAX / 2), Some(&v));
        }
    }

    /// Eviction policies yield each live id exactly once when drained.
    #[test]
    fn policies_drain_each_id_once(
        ids in prop::collection::btree_set(0u64..500, 1..80),
        accesses in prop::collection::vec(0u64..500, 0..80),
        policy_idx in 0usize..5,
    ) {
        let mut p = PolicyKind::ALL[policy_idx].build();
        for &id in &ids {
            p.on_insert(id, 1 + id % 97);
        }
        for a in accesses {
            if ids.contains(&a) {
                p.on_access(a);
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        while let Some(v) = p.victim() {
            prop_assert!(seen.insert(v), "duplicate victim {}", v);
            p.on_remove(v);
        }
        prop_assert_eq!(seen, ids);
    }

    /// Exact cache: lookup(k) hits iff k was inserted and neither evicted
    /// nor expired — with generous capacity, always.
    #[test]
    fn exact_cache_membership(keys in prop::collection::vec(any::<u64>(), 1..50)) {
        let mut cache: ExactCache<u64> = ExactCache::new(1 << 20, PolicyKind::Lru, None);
        for &k in &keys {
            cache.insert(Digest::of(&k.to_le_bytes()), k, 16, 0);
        }
        for &k in &keys {
            prop_assert_eq!(cache.lookup(&Digest::of(&k.to_le_bytes()), 1), Some(&k));
        }
        prop_assert_eq!(cache.lookup(&Digest::of(b"not a key"), 1), None);
    }

    /// Approximate cache: a query identical to a stored descriptor always
    /// hits (distance 0 ≤ any positive threshold).
    #[test]
    fn approx_cache_self_hit(
        vecs in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 8), 1..30),
        threshold in 0.01f32..2.0,
    ) {
        let mut cache: ApproxCache<usize> =
            ApproxCache::new(1 << 20, PolicyKind::Lru, threshold, IndexKind::Linear, 8);
        let vecs: Vec<FeatureVec> = vecs.into_iter().map(FeatureVec::new).collect();
        for (i, v) in vecs.iter().enumerate() {
            cache.insert(v.clone(), i, 32, 0);
        }
        for v in &vecs {
            match cache.lookup(v, 1) {
                ApproxLookup::Hit { distance, .. } => prop_assert!(distance <= 1e-6),
                miss => prop_assert!(false, "self-query missed: {:?}", miss),
            }
        }
    }
}

proptest! {
    /// Count-min estimates are one-sided: never below the true count
    /// (before any aging pass).
    #[test]
    fn sketch_never_undercounts(
        keys in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut sketch = CountMinSketch::new(512, 4, u64::MAX);
        let mut truth = std::collections::HashMap::new();
        for k in keys {
            sketch.increment(k);
            *truth.entry(k).or_insert(0u32) += 1;
        }
        for (k, count) in truth {
            prop_assert!(sketch.estimate(k) >= count.min(255));
        }
    }

    /// A store with TinyLFU admission still never exceeds capacity and
    /// still returns correct values for whatever it holds.
    #[test]
    fn admission_store_stays_consistent(
        ops in prop::collection::vec((0u64..30, 1u64..40), 1..150),
        capacity in 64u64..256,
    ) {
        let mut store: Store<u64, u64> =
            Store::new(capacity, PolicyKind::Lru, None).with_admission(TinyLfuConfig::default());
        for (i, (key, size)) in ops.into_iter().enumerate() {
            store.insert(key, key * 7, size, i as u64);
            prop_assert!(store.used_bytes() <= capacity);
            if let Some(&v) = store.get(&key, i as u64) {
                prop_assert_eq!(v, key * 7);
            }
        }
    }

    /// CSV trace round-trip for arbitrary traces.
    #[test]
    fn trace_csv_round_trip(
        rows in prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u64>(), 0u8..3, any::<u64>(), any::<u64>()),
            0..60,
        ),
    ) {
        use coic::workload::{Request, RequestKind, UserId, ZoneId};
        let trace: Vec<Request> = rows
            .into_iter()
            .map(|(user, zone, at_ns, kind, a, b)| Request {
                user: UserId(user),
                zone: ZoneId(zone),
                at_ns,
                kind: match kind {
                    0 => RequestKind::Recognition {
                        class: a as u32,
                        view_seed: b,
                    },
                    1 => RequestKind::RenderLoad {
                        model_id: a,
                        size_bytes: b,
                    },
                    _ => RequestKind::Panorama { frame_id: a },
                },
            })
            .collect();
        let csv = coic::workload::to_csv(&trace);
        let back = coic::workload::from_csv(&csv).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Parsing arbitrary text never panics.
    #[test]
    fn trace_csv_parse_never_panics(junk in ".{0,300}") {
        let _ = coic::workload::from_csv(&junk);
    }

    /// Panorama viewport crops are always well-formed for any look
    /// direction and sane FOV.
    #[test]
    fn panorama_crop_total(
        yaw in -10.0f64..10.0,
        pitch in -1.5f64..1.5,
        fov in 0.2f64..3.0,
        frame in any::<u64>(),
    ) {
        use coic::render::Panorama;
        let p = Panorama::synthesize(frame, 32);
        let crop = p.crop_viewport(yaw, pitch, fov, 16, 9);
        prop_assert_eq!(crop.len(), 16 * 9);
    }

    /// The adaptive controller's threshold always stays within bounds and
    /// its stride sampler matches the configured rate over long runs.
    #[test]
    fn adaptive_controller_invariants(
        outcomes in prop::collection::vec(any::<bool>(), 0..500),
        rate in 0.0f64..1.0,
    ) {
        use coic::core::{AdaptiveConfig, AdaptiveThreshold};
        let cfg = AdaptiveConfig {
            shadow_rate: rate,
            ..AdaptiveConfig::default()
        };
        let mut ctl = AdaptiveThreshold::new(0.5, cfg);
        let mut sampled = 0usize;
        let n = 1000;
        for _ in 0..n {
            if ctl.should_shadow() {
                sampled += 1;
            }
        }
        let expect = (rate * n as f64) as isize;
        prop_assert!((sampled as isize - expect).abs() <= 1);
        for o in outcomes {
            ctl.record(o);
            let t = ctl.threshold();
            prop_assert!((cfg.min_threshold..=cfg.max_threshold).contains(&t));
        }
    }
}

// ------------------------------------------------------------- protocol --

fn arb_descriptor() -> impl Strategy<Value = FeatureDescriptor> {
    prop_oneof![
        prop::collection::vec(-10.0f32..10.0, 0..64)
            .prop_map(|v| FeatureDescriptor::Dnn(FeatureVec::new(v))),
        any::<[u8; 32]>().prop_map(|b| FeatureDescriptor::ModelHash(Digest(b))),
        any::<[u8; 32]>().prop_map(|b| FeatureDescriptor::PanoramaHash(Digest(b))),
    ]
}

fn arb_task() -> impl Strategy<Value = TaskRequest> {
    prop_oneof![
        (1u32..12, 1u32..12, any::<u8>()).prop_map(|(w, h, fill)| TaskRequest::Recognition {
            image: Image::new(w, h, fill)
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(model_id, size_bytes)| {
            TaskRequest::RenderLoad {
                model_id,
                size_bytes,
            }
        }),
        any::<u64>().prop_map(|frame_id| TaskRequest::Panorama { frame_id }),
    ]
}

fn arb_result() -> impl Strategy<Value = TaskResult> {
    prop_oneof![
        (any::<u32>(), -10.0f32..10.0).prop_map(|(label, distance)| {
            TaskResult::Recognition(RecognitionResult { label, distance })
        }),
        prop::collection::vec(any::<u8>(), 0..200)
            .prop_map(|b| TaskResult::Model(bytes::Bytes::from(b))),
        prop::collection::vec(any::<u8>(), 0..200)
            .prop_map(|b| TaskResult::Panorama(bytes::Bytes::from(b))),
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), arb_descriptor(), prop::option::of(arb_task())).prop_map(
            |(req_id, descriptor, hint)| Msg::Query {
                req_id,
                descriptor,
                hint
            }
        ),
        (any::<u64>(), arb_result()).prop_map(|(req_id, result)| Msg::Hit { req_id, result }),
        any::<u64>().prop_map(|req_id| Msg::NeedPayload { req_id }),
        (any::<u64>(), arb_task()).prop_map(|(req_id, task)| Msg::Upload { req_id, task }),
        (any::<u64>(), arb_task()).prop_map(|(req_id, task)| Msg::Forward { req_id, task }),
        (any::<u64>(), arb_result())
            .prop_map(|(req_id, result)| Msg::CloudReply { req_id, result }),
        (any::<u64>(), arb_result()).prop_map(|(req_id, result)| Msg::Result { req_id, result }),
        (any::<u64>(), arb_task()).prop_map(|(req_id, task)| Msg::BaselineRequest { req_id, task }),
        (any::<u64>(), arb_result())
            .prop_map(|(req_id, result)| Msg::BaselineReply { req_id, result }),
        any::<u64>().prop_map(|req_id| Msg::Unavailable { req_id }),
    ]
}

proptest! {
    /// Codec round-trip for arbitrary messages, and encoded_len is exact.
    #[test]
    fn protocol_round_trip(msg in arb_msg()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len() as u64, msg.encoded_len());
        let back = Msg::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary junk never panics (errors are fine).
    #[test]
    fn protocol_decode_never_panics(junk in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Msg::decode(&junk);
    }

    /// Truncating a valid message never decodes successfully.
    #[test]
    fn protocol_truncation_always_detected(msg in arb_msg(), cut in 0usize..100) {
        let bytes = msg.encode();
        if cut < bytes.len() {
            prop_assert!(Msg::decode(&bytes[..cut]).is_err());
        }
    }

    /// Flipping any single bit of a valid frame never panics the decoder;
    /// whatever still decodes must be internally consistent (its own
    /// re-encode round-trips and encoded_len stays exact).
    #[test]
    fn protocol_bit_flip_never_panics(msg in arb_msg(), pos in any::<u64>(), bit in 0u8..8) {
        let mut bytes = msg.encode().to_vec();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << bit;
        if let Ok(decoded) = Msg::decode(&bytes) {
            let re = decoded.encode();
            prop_assert_eq!(re.len() as u64, decoded.encoded_len());
            // Byte-level round-trip (a flipped float bit may be NaN, so
            // structural equality would be too strict here).
            let again = Msg::decode(&re).unwrap().encode();
            prop_assert_eq!(again.as_slice(), re.as_slice());
        }
    }

    /// Corrupting the magic or version byte is always rejected.
    #[test]
    fn protocol_bad_header_always_rejected(msg in arb_msg(), idx in 0usize..2, bit in 0u8..8) {
        let mut bytes = msg.encode().to_vec();
        bytes[idx] ^= 1 << bit;
        prop_assert!(Msg::decode(&bytes).is_err());
    }
}

// ------------------------------------------------------------------ cmf --

fn arb_mesh() -> impl Strategy<Value = Mesh> {
    (
        "[a-z]{0,12}",
        prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 3..40),
        1usize..20,
    )
        .prop_map(|(name, positions, tris)| {
            let n = positions.len() as u32;
            let vertices: Vec<Vertex> = positions
                .into_iter()
                .map(|(x, y, z)| Vertex {
                    pos: coic::render::Vec3::new(x, y, z),
                    normal: coic::render::Vec3::new(0.0, 1.0, 0.0),
                })
                .collect();
            let indices: Vec<u32> = (0..tris)
                .flat_map(|t| {
                    let t = t as u32;
                    [t % n, (t + 1) % n, (t + 2) % n]
                })
                .collect();
            Mesh::new(name, vertices, indices)
        })
}

proptest! {
    /// CMF round-trips arbitrary valid meshes bit-exactly.
    #[test]
    fn cmf_round_trip(mesh in arb_mesh()) {
        let bytes = cmf_encode(&mesh);
        let back = cmf_decode(&bytes).unwrap();
        prop_assert_eq!(back, mesh);
    }

    /// CMF decode never panics on junk.
    #[test]
    fn cmf_decode_never_panics(junk in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = cmf_decode(&junk);
    }
}

// ------------------------------------------------------------- distance --

proptest! {
    /// Metric axioms for L2 on arbitrary vectors.
    #[test]
    fn l2_metric_axioms(
        a in prop::collection::vec(-100.0f32..100.0, 8),
        b in prop::collection::vec(-100.0f32..100.0, 8),
        c in prop::collection::vec(-100.0f32..100.0, 8),
    ) {
        let (a, b, c) = (FeatureVec::new(a), FeatureVec::new(b), FeatureVec::new(c));
        prop_assert!(distance::l2(&a, &a) <= 1e-3);
        prop_assert!((distance::l2(&a, &b) - distance::l2(&b, &a)).abs() <= 1e-3);
        // Triangle inequality with float slack.
        prop_assert!(
            distance::l2(&a, &c) <= distance::l2(&a, &b) + distance::l2(&b, &c) + 1e-2
        );
    }

    /// Cosine distance stays in [0, 2].
    #[test]
    fn cosine_bounded(
        a in prop::collection::vec(-100.0f32..100.0, 8),
        b in prop::collection::vec(-100.0f32..100.0, 8),
    ) {
        let d = distance::cosine(&FeatureVec::new(a), &FeatureVec::new(b));
        prop_assert!((0.0..=2.0).contains(&d));
    }
}

// ----------------------------------------------------------------- simrun --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The simulation driver completes every request (or counts an explicit
    /// failure) and reproduces exactly, across the whole configuration
    /// space: modes, tiers, edges, peer lookup, prefetch, shaping, loss.
    #[test]
    fn simrun_total_and_deterministic(
        mode_coic in any::<bool>(),
        edge_tier in any::<bool>(),
        edges in 1u32..3,
        peer_lookup in any::<bool>(),
        prefetch in 0u32..3,
        loss_pct in 0u32..6,
        shape in any::<bool>(),
        seed in 0u64..1000,
    ) {
        use coic::core::simrun::{run, ExecTier, Mode, SimConfig};
        use coic::workload::{Population, SafeDrivingAr, VrVideo, ZoneModel};

        let mut trace = SafeDrivingAr {
            population: Population::round_robin(4, edges),
            zones: ZoneModel::new(edges, 6, 0.5, 3),
            rate_per_sec: 5.0,
            zipf_s: 0.8,
            total_requests: 8,
        }
        .generate(seed);
        trace.extend(
            VrVideo {
                population: Population::round_robin(4, edges),
                frame_interval_ns: 200_000_000,
                max_start_skew_frames: 1,
                user_stagger_ns: 10_000_000,
                frames_per_user: 2,
            }
            .generate(seed),
        );
        trace.sort_by_key(|r| r.at_ns);

        let cfg = SimConfig {
            mode: if mode_coic { Mode::CoIc } else { Mode::Origin },
            exec_tier: if edge_tier { ExecTier::Edge } else { ExecTier::Cloud },
            num_clients: 4,
            num_edges: edges,
            peer_lookup,
            prefetch_depth: prefetch,
            access_loss: loss_pct as f64 / 100.0,
            request_timeout_ms: 2_000,
            max_retries: 6,
            client_shaper: shape.then_some((20.0, 256 * 1024)),
            seed,
            ..SimConfig::default()
        };
        let n = trace.len();
        let a = run(&trace, &cfg);
        prop_assert_eq!(a.completed as u64 + a.failed, n as u64);
        let b = run(&trace, &cfg);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.edge_hits, b.edge_hits);
        prop_assert_eq!(a.wan_bytes, b.wan_bytes);
    }
}

// ----------------------------------------------------------------- misc --

proptest! {
    /// Zipf samples stay in range and the pmf is a distribution.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..200, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Links deliver in FIFO order without jitter, regardless of sizes.
    #[test]
    fn link_fifo_order(sizes in prop::collection::vec(1u64..100_000, 1..40)) {
        let mut link = Link::new(LinkParams::mbps_ms(50.0, 7));
        let mut rng = StdRng::seed_from_u64(0);
        let mut last = SimTime::ZERO;
        for s in sizes {
            match link.transmit(SimTime::ZERO, s, &mut rng) {
                TxOutcome::Delivered(t) => {
                    prop_assert!(t >= last);
                    last = t;
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    /// Serialization delay is additive: t(a) + t(b) == t(a+b) within 1 ns
    /// rounding per call.
    #[test]
    fn serialization_additive(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let p = LinkParams::mbps_ms(123.0, 0);
        let lhs = p.serialization_delay(a) + p.serialization_delay(b);
        let rhs = p.serialization_delay(a + b);
        let diff = lhs.as_nanos().abs_diff(rhs.as_nanos());
        prop_assert!(diff <= 2, "diff {} ns", diff);
    }

    /// SimTime/SimDuration arithmetic is consistent.
    #[test]
    fn time_arithmetic_consistent(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur).saturating_since(t + dur), SimDuration::ZERO);
    }
}

// ---------------------------------------------------------------- engine --

/// Drive one request through a [`ClientEngine`], realizing every effect:
/// each `SendQuery`/`SendOrigin` consults the script for an outcome (drop,
/// reply, transport failure); every armed timer is fired — in arming order —
/// whenever the effect queue drains, so stale timers are exercised too.
/// Returns (edge sends, origin sends, terminal decisions, full trace).
fn drive_engine(
    cfg: coic::core::EngineConfig,
    script: &[u8],
) -> (u32, u32, usize, Vec<coic::core::Decision>) {
    use coic::core::{ClientEngine, Effect, ReplyKind, RobustnessStats, SimClock, TimerKind};
    use std::collections::VecDeque;

    let clock = SimClock::new();
    let mut engine = ClientEngine::new(cfg, clock, RobustnessStats::default());
    let mut queue: VecDeque<Effect> = engine.begin(1, "model", 0, 0).into();
    // (kind, epoch, fired) for every timer ever armed.
    let mut timers: Vec<(TimerKind, u32, bool)> = Vec::new();
    let mut edge_sends = 0u32;
    let mut origin_sends = 0u32;
    let mut terminal = 0usize;
    let mut step = 0usize;
    loop {
        step += 1;
        assert!(step < 1_000, "engine did not terminate");
        let Some(eff) = queue.pop_front() else {
            if terminal > 0 {
                break;
            }
            // Quiescent but live: some armed timer must still be pending,
            // and firing timers in order must eventually make progress.
            let next = timers.iter_mut().find(|t| !t.2);
            let Some(t) = next else {
                panic!("request live but no effect and no pending timer");
            };
            t.2 = true;
            let (kind, epoch) = (t.0, t.1);
            queue.extend(engine.on_timer(1, kind, epoch));
            continue;
        };
        match eff {
            Effect::ArmTimer { kind, epoch, .. } => timers.push((kind, epoch, false)),
            Effect::SendQuery { attempt, .. } => {
                edge_sends += 1;
                match script[(attempt as usize) % script.len()] % 6 {
                    0 => {} // dropped: the deadline timer will fire
                    1 => queue.extend(engine.on_reply(1, ReplyKind::Hit, None)),
                    2 => queue.extend(engine.on_reply(1, ReplyKind::Result, None)),
                    3 => queue.extend(engine.on_reply(1, ReplyKind::Unavailable, None)),
                    4 => queue.extend(engine.on_transport_failure(1)),
                    _ => queue.extend(engine.on_reply(1, ReplyKind::NeedPayload, None)),
                }
            }
            Effect::SendUpload { .. } => {
                queue.extend(engine.on_reply(1, ReplyKind::Result, None));
            }
            Effect::SendOrigin { attempt, .. } => {
                origin_sends += 1;
                match script[(attempt as usize).wrapping_add(3) % script.len()] % 3 {
                    0 => {} // dropped
                    1 => queue.extend(engine.on_reply(1, ReplyKind::Baseline, None)),
                    _ => queue.extend(engine.on_transport_failure(1)),
                }
            }
            Effect::ProbeEdge { .. } => {
                queue.extend(engine.on_probe_result(1, script[0].is_multiple_of(2)));
            }
            Effect::Complete { .. } | Effect::GiveUp { .. } => terminal += 1,
        }
    }
    // Terminal: firing every leftover timer and replaying every event class
    // must be a no-op (no transition out of a terminal state).
    let trace_len = engine.decisions().len();
    for &(kind, epoch, fired) in &timers {
        if !fired {
            assert!(engine.on_timer(1, kind, epoch).is_empty());
        }
    }
    for reply in [
        ReplyKind::Hit,
        ReplyKind::Result,
        ReplyKind::PeerResult,
        ReplyKind::Baseline,
        ReplyKind::NeedPayload,
        ReplyKind::Unavailable,
    ] {
        assert!(engine.on_reply(1, reply, Some(true)).is_empty());
    }
    assert!(engine.on_transport_failure(1).is_empty());
    assert!(engine.on_probe_result(1, true).is_empty());
    assert_eq!(
        engine.decisions().len(),
        trace_len,
        "terminal must be quiet"
    );
    (
        edge_sends,
        origin_sends,
        terminal,
        engine.decisions().to_vec(),
    )
}

proptest! {
    /// Backoff is deterministic, never exceeds `max_backoff`, and jitter
    /// only shrinks the nominal delay, within the configured fraction.
    #[test]
    fn retry_backoff_capped_deterministic_and_jitter_bounded(
        base_ms in 0u64..100,
        max_ms in 0u64..1_000,
        jitter in 0.0f64..1.0,
        seed in any::<u64>(),
        req in any::<u64>(),
        attempt in 0u32..40,
    ) {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(max_ms),
            jitter_frac: jitter,
            seed,
        };
        let d = p.backoff(req, attempt);
        prop_assert_eq!(d, p.backoff(req, attempt)); // deterministic
        prop_assert!(d <= p.max_backoff);
        let nominal = RetryPolicy { jitter_frac: 0.0, ..p.clone() }.backoff(req, attempt);
        prop_assert!(d <= nominal);
        // Jitter removes at most `jitter_frac` of the nominal delay
        // (1 ns slack for mul_f64 rounding).
        let floor = nominal.mul_f64(1.0 - jitter);
        prop_assert!(d.as_nanos() + 1 >= floor.as_nanos());
    }

    /// The immediate policy never sleeps, whatever the coordinates.
    #[test]
    fn retry_immediate_never_sleeps(
        tries in 1u32..20,
        seed in any::<u64>(),
        req in any::<u64>(),
        attempt in 0u32..40,
    ) {
        let p = RetryPolicy::immediate(tries, seed);
        prop_assert_eq!(p.max_attempts, tries);
        prop_assert_eq!(p.backoff(req, attempt), Duration::ZERO);
    }

    /// Under an arbitrary outcome script the engine always terminates, the
    /// per-path attempt count never exceeds the retry cap, terminal states
    /// admit no further transitions, and identical scripts give identical
    /// decision traces.
    #[test]
    fn engine_terminates_within_attempt_cap(
        max_attempts in 1u32..5,
        origin_fallback in any::<bool>(),
        use_edge in any::<bool>(),
        script in prop::collection::vec(any::<u8>(), 1..12),
    ) {
        let cfg = coic::core::EngineConfig {
            retry: RetryPolicy {
                max_attempts,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(8),
                jitter_frac: 0.25,
                seed: 11,
            },
            deadline_ns: 1_000_000,
            probe_interval_ns: 1_000_000,
            use_edge,
            origin_fallback,
        };
        let (edge, origin, terminal, trace) = drive_engine(cfg.clone(), &script);
        prop_assert_eq!(terminal, 1, "exactly one terminal effect");
        prop_assert!(edge <= max_attempts);
        prop_assert!(origin <= max_attempts);
        if !use_edge {
            prop_assert_eq!(edge, 0);
        }
        let (e2, o2, t2, trace2) = drive_engine(cfg, &script);
        prop_assert_eq!((edge, origin, terminal), (e2, o2, t2));
        prop_assert_eq!(trace, trace2);
    }
}

// ------------------------------------------------------ frame decoder --

use coic::netsim::rt::{encode_frame, FrameDecoder};

/// Split `wire` into chunks at the given cut offsets (reduced modulo the
/// wire length, then sorted and deduped).
fn fragment(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
    points.push(0);
    points.push(wire.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| wire[w[0]..w[1]].to_vec())
        .filter(|c| !c.is_empty())
        .collect()
}

proptest! {
    /// The batched incremental decoder (event-loop read path) yields the
    /// exact frame sequence of the single-read path, no matter how the
    /// byte stream is fragmented across reads — including fragments that
    /// split a length header, a CRC, or a payload, and reads that carry
    /// several frames at once.
    #[test]
    fn batched_decode_is_fragmentation_invariant(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..12),
        cuts in prop::collection::vec(0usize..8192, 0..40),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&encode_frame(p).unwrap());
        }

        // Single-read path: the whole stream arrives in one push.
        let mut whole = FrameDecoder::new();
        whole.push(&wire);
        let mut expect = Vec::new();
        while let Some(frame) = whole.next_frame().unwrap() {
            expect.push(frame.to_vec());
        }
        prop_assert_eq!(&expect, &payloads);

        // Fragmented path: arbitrary chunking, draining after each push
        // exactly as the event loop drains after each readable wakeup.
        let mut frag = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in fragment(&wire, &cuts) {
            frag.push(&chunk);
            while let Some(frame) = frag.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert_eq!(frag.buffered(), 0, "no bytes may be left behind");
    }

    /// Flipping any single byte of a one-frame wire image can never make
    /// the decoder return a *different* frame silently: it either still
    /// yields the original payload bytes (a flip in a part the CRC does
    /// not guard never exists — header flips change length or CRC) or
    /// surfaces an error / keeps waiting for more bytes.
    #[test]
    fn corrupted_wire_never_yields_a_wrong_frame(
        payload in prop::collection::vec(any::<u8>(), 1..200),
        at in 0usize..8192,
        xor in 1u8..=255,
    ) {
        let mut wire = encode_frame(&payload).unwrap();
        let at = at % wire.len();
        wire[at] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        match dec.next_frame() {
            Ok(Some(frame)) => prop_assert_eq!(frame.as_ref(), &payload[..]),
            Ok(None) => {}  // length grew: decoder waits for bytes that never come
            Err(_) => {}    // CRC mismatch or oversized length — rejected
        }
    }
}

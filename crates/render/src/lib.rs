//! # coic-render
//!
//! 3D rendering substrate for the CoIC reproduction, built from scratch:
//!
//! * [`math`] — vectors, matrices, camera transforms,
//! * [`mesh`] — indexed triangle meshes with validation,
//! * [`procgen`] — procedural models at controllable sizes (Fig. 2b sweeps
//!   model size),
//! * [`mod@format`] — CMF, a checksummed binary model container whose parse
//!   cost is real and size-proportional,
//! * [`loader`] — model loading with per-tier cost accounting (the "load
//!   latency" Fig. 2b measures),
//! * [`raster`] — a z-buffered software rasterizer proving cached models
//!   are drawable,
//! * [`output`] — PGM/PPM writers so experiments dump viewable artifacts,
//! * [`scene`] — scene graph + camera for the AR-annotation application,
//! * [`panorama`] — equirectangular VR frames and viewport cropping,
//! * [`cubemap`] — render real scenes into cubemaps and project them to
//!   equirect panoramas (the cloud side of the VR pipeline, done for real).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cubemap;
pub mod format;
pub mod loader;
pub mod math;
pub mod mesh;
pub mod output;
pub mod panorama;
pub mod procgen;
pub mod raster;
pub mod scene;

pub use cubemap::{cubemap_to_equirect, render_cubemap, render_equirect, sample_cubemap};
pub use format::{crc32, decode, encode, encoded_size, CmfError};
pub use loader::{load_cmf, LoadCostModel, LoadedModel};
pub use math::{Mat4, Vec3, Vec4};
pub use mesh::{Aabb, Mesh, MeshError, Vertex};
pub use output::{decode_pgm, encode_pgm, write_framebuffer_pgm, write_pgm};
pub use panorama::Panorama;
pub use raster::{draw, DrawStats, Framebuffer};
pub use scene::{Camera, Instance, Scene};

//! Minimal in-tree replacement for the `parking_lot` crate (see
//! shims/README.md). Wraps `std::sync` primitives with parking_lot's
//! non-poisoning API: `lock()` returns the guard directly and a panicked
//! holder does not poison the lock for everyone else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock; accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}

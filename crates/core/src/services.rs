//! The three CoIC roles as transport-independent services.
//!
//! [`ClientLogic`], [`EdgeService`] and [`CloudService`] contain all
//! decision logic; the simulation driver ([`crate::simrun`]) and the real
//! TCP deployment ([`crate::netrun`]) are thin shells that move their
//! messages and charge time.

use crate::compute::ComputeConfig;
use crate::content::{ModelLibrary, PanoLibrary};
use crate::descriptor::FeatureDescriptor;
use crate::task::{RecognitionResult, TaskRequest, TaskResult};
use coic_cache::{
    ApproxCache, ApproxLookup, Digest, ExactCache, IndexKind, Lookup, Metrics, PolicyKind,
    TinyLfuConfig, TouchStats,
};
use coic_obs::MetricsRegistry;
use coic_vision::{ObjectClass, PrototypeClassifier, SceneGenerator, SimNet, ViewParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Edge cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct EdgeConfig {
    /// Capacity of the recognition (approximate) cache, bytes.
    pub recog_cache_bytes: u64,
    /// Capacity of the exact (model/panorama) cache, bytes.
    pub exact_cache_bytes: u64,
    /// Eviction policy for both caches.
    pub policy: PolicyKind,
    /// Distance threshold for recognition hits.
    pub threshold: f32,
    /// Index backing the approximate cache.
    pub index: IndexKind,
    /// Descriptor embedding dimensionality.
    pub embedding_dim: usize,
    /// TinyLFU admission on the exact cache (None = admit everything).
    pub admission: Option<TinyLfuConfig>,
    /// TTL for exact-cache entries, ms (None = never expire). Live content
    /// — e.g. panoramas of a real-time VR world — must not be served
    /// stale forever.
    pub exact_ttl_ms: Option<u64>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            recog_cache_bytes: 64 * 1024 * 1024,
            exact_cache_bytes: 512 * 1024 * 1024,
            policy: PolicyKind::Lru,
            threshold: 0.45,
            index: IndexKind::Linear,
            embedding_dim: 32,
            admission: None,
            exact_ttl_ms: None,
        }
    }
}

/// What the edge decides to do with a query.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeReply {
    /// Cached result — return immediately.
    Hit(TaskResult),
    /// Recognition miss without payload: ask the client to upload.
    NeedPayload,
    /// Miss with a task hint: forward straight to the cloud.
    Forward(TaskRequest),
}

/// The edge cache service.
pub struct EdgeService {
    recog: ApproxCache<RecognitionResult>,
    exact: ExactCache<TaskResult>,
}

impl EdgeService {
    /// Create the service.
    pub fn new(cfg: &EdgeConfig) -> Self {
        EdgeService {
            recog: ApproxCache::new(
                cfg.recog_cache_bytes,
                cfg.policy,
                cfg.threshold,
                cfg.index,
                cfg.embedding_dim,
            ),
            exact: {
                let ttl_ns = cfg.exact_ttl_ms.map(|ms| ms * 1_000_000);
                let c = ExactCache::new(cfg.exact_cache_bytes, cfg.policy, ttl_ns);
                match cfg.admission {
                    Some(a) => c.with_admission(a),
                    None => c,
                }
            },
        }
    }

    /// Look a descriptor up in the matching cache, reporting *why* it hit
    /// (exact digest match vs within-threshold descriptor match) rather
    /// than a bare bool/`Option` pair. This is the typed entry point
    /// [`EdgeService::handle_query`] and the telemetry layer share.
    pub fn lookup(&mut self, descriptor: &FeatureDescriptor, now_ns: u64) -> Lookup<TaskResult> {
        match descriptor {
            FeatureDescriptor::Dnn(v) => match self.recog.lookup(v, now_ns) {
                ApproxLookup::Hit { id, distance } => {
                    let r = *self
                        .recog
                        .value(id)
                        .expect("hit id must resolve to a value");
                    Lookup::ApproxHit {
                        value: TaskResult::Recognition(r),
                        distance,
                    }
                }
                ApproxLookup::Miss { .. } => Lookup::Miss,
            },
            FeatureDescriptor::ModelHash(d) | FeatureDescriptor::PanoramaHash(d) => {
                match self.exact.lookup(d, now_ns) {
                    Some(result) => Lookup::ExactHit(result.clone()),
                    None => Lookup::Miss,
                }
            }
        }
    }

    /// Handle a descriptor query (the core of Figure 1's edge box).
    pub fn handle_query(
        &mut self,
        descriptor: &FeatureDescriptor,
        hint: Option<&TaskRequest>,
        now_ns: u64,
    ) -> EdgeReply {
        match self.lookup(descriptor, now_ns).into_value() {
            Some(result) => EdgeReply::Hit(result),
            None => match hint {
                Some(task) => EdgeReply::Forward(task.clone()),
                None => EdgeReply::NeedPayload,
            },
        }
    }

    /// Insert a freshly computed result under its descriptor.
    pub fn insert(&mut self, descriptor: &FeatureDescriptor, result: &TaskResult, now_ns: u64) {
        match (descriptor, result) {
            (FeatureDescriptor::Dnn(v), TaskResult::Recognition(r)) => {
                // Charge the descriptor plus the annotation payload.
                let size = v.byte_size() + result.byte_size();
                self.recog.insert(v.clone(), *r, size, now_ns);
            }
            (FeatureDescriptor::ModelHash(d) | FeatureDescriptor::PanoramaHash(d), result) => {
                self.exact
                    .insert(*d, result.clone(), result.byte_size(), now_ns);
            }
            (d, r) => panic!(
                "descriptor kind {} does not match result kind {}",
                d.kind(),
                r.kind()
            ),
        }
    }

    /// Fold any journaled recognition-index maintenance (batch rebuilds
    /// for the ANN-backed [`IndexKind`]s; a no-op for the incremental
    /// indexes). The simulation tick drives this between request batches
    /// so rebuild cost lands at deterministic points. Returns how many
    /// journaled mutations were folded.
    pub fn maintain(&mut self) -> usize {
        self.recog.maintain()
    }

    /// Does the exact cache currently hold this digest? (No stats or
    /// recency side effects — used by the prefetcher to avoid refetching.)
    pub fn exact_contains(&self, digest: &Digest) -> bool {
        self.exact.peek(digest).is_some()
    }

    /// Direct exact-cache lookup by digest (the peer-query entry point:
    /// a cooperating edge asks "do you hold this content?").
    pub fn exact_lookup(&mut self, digest: &Digest, now_ns: u64) -> Option<TaskResult> {
        self.exact.lookup(digest, now_ns).cloned()
    }

    /// Recognition cache metrics (the unsharded cache replays recency
    /// inline, so the touch counters are structurally zero).
    pub fn recog_metrics(&self) -> Metrics {
        Metrics::from_parts(*self.recog.stats(), TouchStats::default())
    }

    /// Exact cache metrics.
    pub fn exact_metrics(&self) -> Metrics {
        Metrics::from_parts(*self.exact.stats(), TouchStats::default())
    }

    /// Publish both caches' metrics into the shared registry under
    /// `cache.recog.*` and `cache.exact.*`.
    pub fn publish_metrics(&self, reg: &MetricsRegistry) {
        self.recog_metrics().publish(reg, "cache.recog");
        self.exact_metrics().publish(reg, "cache.exact");
    }

    /// Combined hit ratio over both caches.
    pub fn hit_ratio(&self) -> f64 {
        let r = self.recog_metrics();
        let e = self.exact_metrics();
        let hits = r.hits + e.hits;
        let total = r.lookups() + e.lookups();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The cloud execution service — the paper's "server" that runs complete
/// IC tasks.
pub struct CloudService {
    net: SimNet,
    classifier: PrototypeClassifier,
    models: Arc<ModelLibrary>,
    panos: Arc<PanoLibrary>,
    compute: ComputeConfig,
}

impl CloudService {
    /// Train the cloud's recognition model over `classes` and wire up the
    /// content libraries.
    pub fn new(
        classes: &[ObjectClass],
        gen: &SceneGenerator,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
        seed: u64,
    ) -> Self {
        let net = SimNet::default_net();
        let mut rng = StdRng::seed_from_u64(seed);
        let classifier = PrototypeClassifier::train(&net, gen, classes, 5, 0.08, 4.0, &mut rng);
        CloudService {
            net,
            classifier,
            models,
            panos,
            compute,
        }
    }

    /// Execute a task, returning the result and its virtual compute cost.
    pub fn execute(&self, task: &TaskRequest) -> (TaskResult, u64) {
        match task {
            TaskRequest::Recognition { image } => {
                let embedding = self.net.extract(image);
                let (label, distance) = self.classifier.predict(&embedding);
                (
                    TaskResult::Recognition(RecognitionResult {
                        label: label.0,
                        distance,
                    }),
                    self.compute.cloud_infer_ns(),
                )
            }
            TaskRequest::RenderLoad {
                model_id,
                size_bytes,
            } => {
                let (bytes, _) = self.models.get(*model_id, *size_bytes);
                let cost = self.compute.load_cloud.full_load_ns(bytes.len() as u64);
                (TaskResult::Model(bytes), cost)
            }
            TaskRequest::Panorama { frame_id } => {
                let (bytes, _) = self.panos.get(*frame_id);
                (TaskResult::Panorama(bytes), self.compute.pano_render_ns)
            }
        }
    }
}

/// A prepared client request: descriptor, full task, prep cost, truth.
#[derive(Debug, Clone)]
pub struct PreparedRequest {
    /// Descriptor to query the edge with.
    pub descriptor: FeatureDescriptor,
    /// Full task for the miss path.
    pub task: TaskRequest,
    /// On-device preparation time (capture + descriptor extraction), ns.
    pub prep_ns: u64,
    /// Ground-truth class for recognition requests (accuracy accounting).
    pub truth: Option<u32>,
}

/// Client-side preprocessing configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Camera frame side length (pixels).
    pub image_side: u32,
    /// Viewpoint jitter between co-located users, radians.
    pub angle_spread: f64,
    /// Sensor noise sigma.
    pub noise_sigma: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            image_side: 64,
            angle_spread: 0.08,
            noise_sigma: 4.0,
        }
    }
}

/// Client-side preprocessing: turns a workload request into a descriptor
/// plus a full task.
pub struct ClientLogic {
    net: SimNet,
    gen: SceneGenerator,
    models: Arc<ModelLibrary>,
    panos: Arc<PanoLibrary>,
    compute: ComputeConfig,
    cfg: ClientConfig,
}

impl ClientLogic {
    /// Create the client logic.
    pub fn new(
        cfg: ClientConfig,
        compute: ComputeConfig,
        models: Arc<ModelLibrary>,
        panos: Arc<PanoLibrary>,
    ) -> Self {
        ClientLogic {
            net: SimNet::default_net(),
            gen: SceneGenerator::new(cfg.image_side),
            models,
            panos,
            compute,
            cfg,
        }
    }

    /// Prepare a workload request for transmission.
    pub fn prepare(&self, req: &coic_workload::Request) -> PreparedRequest {
        use coic_workload::RequestKind;
        match req.kind {
            RequestKind::Recognition { class, view_seed } => {
                let mut rng = StdRng::seed_from_u64(view_seed);
                let view =
                    ViewParams::jittered(&mut rng, self.cfg.angle_spread, self.cfg.noise_sigma);
                let image = self.gen.observe(ObjectClass(class), &view, &mut rng);
                let descriptor = FeatureDescriptor::Dnn(self.net.extract(&image));
                PreparedRequest {
                    descriptor,
                    task: TaskRequest::Recognition { image },
                    prep_ns: self.compute.descriptor_ns(),
                    truth: Some(class),
                }
            }
            RequestKind::RenderLoad {
                model_id,
                size_bytes,
            } => {
                let digest = self.models.digest(model_id, size_bytes);
                PreparedRequest {
                    descriptor: FeatureDescriptor::ModelHash(digest),
                    task: TaskRequest::RenderLoad {
                        model_id,
                        size_bytes,
                    },
                    // Hash lookup in the app manifest: negligible but nonzero.
                    prep_ns: 100_000,
                    truth: None,
                }
            }
            RequestKind::Panorama { frame_id } => {
                let digest = self.panos.digest(frame_id);
                PreparedRequest {
                    descriptor: FeatureDescriptor::PanoramaHash(digest),
                    task: TaskRequest::Panorama { frame_id },
                    prep_ns: 100_000,
                    truth: None,
                }
            }
        }
    }
}

/// Resolve whether a recognition reply was correct.
pub fn recognition_correct(result: &TaskResult, truth: Option<u32>) -> Option<bool> {
    match (result, truth) {
        (TaskResult::Recognition(r), Some(t)) => Some(r.label == t),
        _ => None,
    }
}

/// Convenience: digest carried by a hash-type descriptor.
pub fn descriptor_digest(d: &FeatureDescriptor) -> Option<Digest> {
    match d {
        FeatureDescriptor::ModelHash(h) | FeatureDescriptor::PanoramaHash(h) => Some(*h),
        FeatureDescriptor::Dnn(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coic_workload::{Request, RequestKind, UserId, ZoneId};

    fn setup() -> (ClientLogic, EdgeService, CloudService) {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let client = ClientLogic::new(
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        );
        let edge = EdgeService::new(&EdgeConfig::default());
        let classes: Vec<_> = (0..10).map(ObjectClass).collect();
        let gen = SceneGenerator::new(64);
        let cloud = CloudService::new(&classes, &gen, compute, models, panos, 7);
        (client, edge, cloud)
    }

    fn recog_req(class: u32, view_seed: u64) -> Request {
        Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Recognition { class, view_seed },
        }
    }

    #[test]
    fn recognition_miss_then_hit_flow() {
        let (client, mut edge, cloud) = setup();
        // First request: miss, upload, cloud executes, edge caches.
        let p1 = client.prepare(&recog_req(3, 100));
        match edge.handle_query(&p1.descriptor, None, 0) {
            EdgeReply::NeedPayload => {}
            other => panic!("expected NeedPayload, got {other:?}"),
        }
        let (result, cost) = cloud.execute(&p1.task);
        assert!(cost > 0);
        assert_eq!(recognition_correct(&result, p1.truth), Some(true));
        edge.insert(&p1.descriptor, &result, 0);

        // Second request: same object seen again (another user at the same
        // spot, same viewpoint) — must hit.
        let p2 = client.prepare(&recog_req(3, 100));
        match edge.handle_query(&p2.descriptor, None, 1) {
            EdgeReply::Hit(TaskResult::Recognition(r)) => assert_eq!(r.label, 3),
            other => panic!("expected Hit, got {other:?}"),
        }
        assert_eq!(edge.recog_metrics().hits, 1);
    }

    #[test]
    fn typed_lookup_reports_hit_kind() {
        let (client, mut edge, cloud) = setup();
        let p = client.prepare(&recog_req(4, 77));
        assert_eq!(edge.lookup(&p.descriptor, 0), Lookup::Miss);
        let (r, _) = cloud.execute(&p.task);
        edge.insert(&p.descriptor, &r, 0);
        match edge.lookup(&p.descriptor, 1) {
            Lookup::ApproxHit { value, distance } => {
                assert!(distance >= 0.0);
                assert!(matches!(value, TaskResult::Recognition(_)));
            }
            other => panic!("expected ApproxHit, got {other:?}"),
        }
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Panorama { frame_id: 3 },
        };
        let pp = client.prepare(&req);
        let (pr, _) = cloud.execute(&pp.task);
        edge.insert(&pp.descriptor, &pr, 0);
        assert!(matches!(
            edge.lookup(&pp.descriptor, 1),
            Lookup::ExactHit(TaskResult::Panorama(_))
        ));
    }

    #[test]
    fn nearby_views_usually_hit() {
        // The statistical property Fig 2a depends on: most re-observations
        // of a cached object from a jittered viewpoint land within the
        // threshold.
        let (client, mut edge, cloud) = setup();
        let p1 = client.prepare(&recog_req(5, 1000));
        let (r1, _) = cloud.execute(&p1.task);
        edge.insert(&p1.descriptor, &r1, 0);
        let mut hits = 0;
        let n = 30;
        for seed in 0..n {
            let p = client.prepare(&recog_req(5, 2000 + seed));
            if matches!(edge.handle_query(&p.descriptor, None, 0), EdgeReply::Hit(_)) {
                hits += 1;
            }
        }
        assert!(hits >= n / 2, "only {hits}/{n} nearby views hit");
    }

    #[test]
    fn different_object_does_not_hit() {
        let (client, mut edge, cloud) = setup();
        let p1 = client.prepare(&recog_req(1, 5));
        let (r1, _) = cloud.execute(&p1.task);
        edge.insert(&p1.descriptor, &r1, 0);
        let p2 = client.prepare(&recog_req(2, 6));
        match edge.handle_query(&p2.descriptor, None, 0) {
            EdgeReply::NeedPayload => {}
            other => panic!("expected miss for a different class, got {other:?}"),
        }
    }

    #[test]
    fn render_load_flow_hits_exactly() {
        let (client, mut edge, cloud) = setup();
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::RenderLoad {
                model_id: 11,
                size_bytes: 80_000,
            },
        };
        let p = client.prepare(&req);
        // Miss with hint → forward.
        let fwd = match edge.handle_query(&p.descriptor, Some(&p.task), 0) {
            EdgeReply::Forward(t) => t,
            other => panic!("expected Forward, got {other:?}"),
        };
        let (result, _) = cloud.execute(&fwd);
        match &result {
            TaskResult::Model(bytes) => {
                // The model is genuinely loadable.
                coic_render::load_cmf(bytes).unwrap();
            }
            other => panic!("expected Model, got {other:?}"),
        }
        edge.insert(&p.descriptor, &result, 0);
        // Same model requested by another user: exact hit.
        match edge.handle_query(&p.descriptor, Some(&p.task), 1) {
            EdgeReply::Hit(TaskResult::Model(_)) => {}
            other => panic!("expected Hit, got {other:?}"),
        }
        assert_eq!(edge.exact_metrics().hits, 1);
    }

    #[test]
    fn panorama_flow() {
        let (client, mut edge, cloud) = setup();
        let req = Request {
            user: UserId(1),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Panorama { frame_id: 42 },
        };
        let p = client.prepare(&req);
        let fwd = match edge.handle_query(&p.descriptor, Some(&p.task), 0) {
            EdgeReply::Forward(t) => t,
            other => panic!("expected Forward, got {other:?}"),
        };
        let (result, cost) = cloud.execute(&fwd);
        assert_eq!(cost, ComputeConfig::default().pano_render_ns);
        edge.insert(&p.descriptor, &result, 0);
        match edge.handle_query(&p.descriptor, Some(&p.task), 1) {
            EdgeReply::Hit(TaskResult::Panorama(b)) => assert_eq!(b.len(), 128 * 64),
            other => panic!("expected Hit, got {other:?}"),
        }
    }

    #[test]
    fn exact_ttl_expires_stale_content() {
        let models = Arc::new(ModelLibrary::new());
        let panos = Arc::new(PanoLibrary::new(64));
        let compute = ComputeConfig::default();
        let client = ClientLogic::new(
            ClientConfig::default(),
            compute,
            models.clone(),
            panos.clone(),
        );
        let mut edge = EdgeService::new(&EdgeConfig {
            exact_ttl_ms: Some(100),
            ..EdgeConfig::default()
        });
        let classes = vec![ObjectClass(0)];
        let gen = SceneGenerator::new(64);
        let cloud = CloudService::new(&classes, &gen, compute, models, panos, 7);
        let req = Request {
            user: UserId(0),
            zone: ZoneId(0),
            at_ns: 0,
            kind: RequestKind::Panorama { frame_id: 5 },
        };
        let p = client.prepare(&req);
        let fwd = match edge.handle_query(&p.descriptor, Some(&p.task), 0) {
            EdgeReply::Forward(t) => t,
            other => panic!("expected Forward, got {other:?}"),
        };
        let (result, _) = cloud.execute(&fwd);
        edge.insert(&p.descriptor, &result, 0);
        // Within TTL: hit. After TTL (100 ms = 1e8 ns): miss again.
        assert!(matches!(
            edge.handle_query(&p.descriptor, Some(&p.task), 50_000_000),
            EdgeReply::Hit(_)
        ));
        assert!(matches!(
            edge.handle_query(&p.descriptor, Some(&p.task), 150_000_000),
            EdgeReply::Forward(_)
        ));
        assert_eq!(edge.exact_metrics().expired, 1);
    }

    #[test]
    fn hit_ratio_combines_caches() {
        let (client, mut edge, cloud) = setup();
        let p = client.prepare(&recog_req(0, 1));
        let _ = edge.handle_query(&p.descriptor, None, 0); // miss
        let (r, _) = cloud.execute(&p.task);
        edge.insert(&p.descriptor, &r, 0);
        let p2 = client.prepare(&recog_req(0, 1));
        let _ = edge.handle_query(&p2.descriptor, None, 0); // hit
        assert!((edge.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "does not match result kind")]
    fn mismatched_insert_panics() {
        let (_, mut edge, _) = setup();
        let d = FeatureDescriptor::Dnn(coic_vision::FeatureVec::new(vec![0.0; 32]));
        let r = TaskResult::Model(bytes::Bytes::new());
        edge.insert(&d, &r, 0);
    }
}

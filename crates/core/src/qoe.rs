//! QoE accounting: per-request records and aggregated reports.
//!
//! The paper's metric is user-perceived end-to-end latency; we additionally
//! track hit paths, recognition accuracy and bytes moved per network
//! segment (the costs a deployment would care about).

use coic_netsim::Summary;
use std::collections::BTreeMap;

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Edge cache hit.
    EdgeHit,
    /// Local miss answered by a cooperating peer edge.
    PeerHit,
    /// Miss: forwarded to the cloud and cached.
    CloudMiss,
    /// Origin baseline: full offload, no cache.
    Baseline,
}

/// One completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Request id.
    pub req_id: u64,
    /// Task family label.
    pub kind: &'static str,
    /// Issue time (virtual ns).
    pub issued_ns: u64,
    /// Completion time (virtual ns).
    pub completed_ns: u64,
    /// How it was satisfied.
    pub path: Path,
    /// For recognition: was the label correct?
    pub correct: Option<bool>,
    /// Transmission attempts beyond the first this request needed
    /// (lossy-link retransmissions).
    pub retries: u32,
}

impl Record {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.completed_ns - self.issued_ns) as f64 / 1e6
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug)]
pub struct QoeReport {
    /// All end-to-end latencies, ms.
    pub latency_ms: Summary,
    /// Latencies by task family.
    pub latency_by_kind: BTreeMap<&'static str, Summary>,
    /// Requests satisfied from the local edge cache.
    pub edge_hits: u64,
    /// Requests satisfied by a cooperating peer edge.
    pub peer_hits: u64,
    /// Requests that went to the cloud (miss or baseline).
    pub cloud_trips: u64,
    /// Recognition accuracy (None if no recognition requests).
    pub accuracy: Option<f64>,
    /// Completed requests.
    pub completed: usize,
    /// Bytes delivered on the access (client↔edge) segment.
    pub access_bytes: u64,
    /// Bytes delivered on the WAN (edge↔cloud) segment.
    pub wan_bytes: u64,
    /// Bytes delivered on the inter-edge LAN (multi-edge runs only).
    pub lan_bytes: u64,
    /// Requests abandoned after exhausting retries (lossy-link runs).
    pub failed: u64,
    /// Total retransmissions across completed requests.
    pub retries: u64,
    /// Completed requests that needed at least one retransmission.
    pub retried_requests: u64,
}

impl QoeReport {
    /// Build a report from records (network byte counts added separately).
    pub fn from_records(records: &[Record]) -> QoeReport {
        let mut latency_ms = Summary::new();
        let mut latency_by_kind: BTreeMap<&'static str, Summary> = BTreeMap::new();
        let mut edge_hits = 0;
        let mut peer_hits = 0;
        let mut cloud_trips = 0;
        let mut correct = 0u64;
        let mut judged = 0u64;
        let mut retries = 0u64;
        let mut retried_requests = 0u64;
        for r in records {
            retries += r.retries as u64;
            if r.retries > 0 {
                retried_requests += 1;
            }
            let l = r.latency_ms();
            latency_ms.push(l);
            latency_by_kind.entry(r.kind).or_default().push(l);
            match r.path {
                Path::EdgeHit => edge_hits += 1,
                Path::PeerHit => peer_hits += 1,
                Path::CloudMiss | Path::Baseline => cloud_trips += 1,
            }
            if let Some(c) = r.correct {
                judged += 1;
                if c {
                    correct += 1;
                }
            }
        }
        QoeReport {
            latency_ms,
            latency_by_kind,
            edge_hits,
            peer_hits,
            cloud_trips,
            accuracy: (judged > 0).then(|| correct as f64 / judged as f64),
            completed: records.len(),
            access_bytes: 0,
            wan_bytes: 0,
            lan_bytes: 0,
            failed: 0,
            retries,
            retried_requests,
        }
    }

    /// Cache hit ratio over completed requests (local + peer hits).
    pub fn hit_ratio(&self) -> f64 {
        let n = self.edge_hits + self.peer_hits + self.cloud_trips;
        if n == 0 {
            0.0
        } else {
            (self.edge_hits + self.peer_hits) as f64 / n as f64
        }
    }

    /// Mean latency in ms.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_ms.mean()
    }

    /// Canonical, deterministic serialization: per-kind sections are
    /// emitted in sorted key order (the backing `BTreeMap` iterates
    /// sorted by construction), so two identical runs produce
    /// byte-identical strings. Used by the determinism tests and the CI
    /// determinism job to diff reports.
    pub fn canonical(&mut self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "completed={} failed={}", self.completed, self.failed);
        let _ = writeln!(
            s,
            "edge_hits={} peer_hits={} cloud_trips={}",
            self.edge_hits, self.peer_hits, self.cloud_trips
        );
        let _ = writeln!(
            s,
            "retries={} retried_requests={}",
            self.retries, self.retried_requests
        );
        let _ = writeln!(
            s,
            "accuracy={}",
            self.accuracy
                .map(|a| format!("{a:.6}"))
                .unwrap_or_else(|| "n/a".into())
        );
        let _ = writeln!(
            s,
            "latency mean={:.6} median={:.6} p99={:.6}",
            self.latency_ms.mean(),
            self.latency_ms.median(),
            self.latency_ms.quantile(0.99)
        );
        for (kind, summary) in self.latency_by_kind.iter_mut() {
            let _ = writeln!(
                s,
                "kind={} n={} mean={:.6} median={:.6}",
                kind,
                summary.count(),
                summary.mean(),
                summary.median()
            );
        }
        let _ = writeln!(
            s,
            "bytes access={} wan={} lan={}",
            self.access_bytes, self.wan_bytes, self.lan_bytes
        );
        s
    }
}

/// Latency reduction of `coic` relative to `baseline`, in percent
/// (the y-axis of both paper figures).
pub fn reduction_percent(baseline_ms: f64, coic_ms: f64) -> f64 {
    if baseline_ms <= 0.0 {
        return 0.0;
    }
    (baseline_ms - coic_ms) / baseline_ms * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency_ns: u64, path: Path, correct: Option<bool>) -> Record {
        Record {
            req_id: 0,
            kind: "recognition",
            issued_ns: 1_000,
            completed_ns: 1_000 + latency_ns,
            path,
            correct,
            retries: 0,
        }
    }

    #[test]
    fn retries_aggregate() {
        let mut a = rec(10_000_000, Path::EdgeHit, None);
        a.retries = 2;
        let b = rec(10_000_000, Path::EdgeHit, None);
        let mut c = rec(10_000_000, Path::CloudMiss, None);
        c.retries = 1;
        let report = QoeReport::from_records(&[a, b, c]);
        assert_eq!(report.retries, 3);
        assert_eq!(report.retried_requests, 2);
    }

    #[test]
    fn report_aggregates() {
        let records = vec![
            rec(10_000_000, Path::EdgeHit, Some(true)),
            rec(30_000_000, Path::CloudMiss, Some(true)),
            rec(20_000_000, Path::EdgeHit, Some(false)),
        ];
        let mut report = QoeReport::from_records(&records);
        assert_eq!(report.completed, 3);
        assert_eq!(report.edge_hits, 2);
        assert_eq!(report.cloud_trips, 1);
        assert!((report.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_latency_ms() - 20.0).abs() < 1e-9);
        assert!((report.latency_ms.median() - 20.0).abs() < 1e-9);
        assert!((report.accuracy.unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_absent_without_truth() {
        let records = vec![rec(1_000, Path::Baseline, None)];
        let report = QoeReport::from_records(&records);
        assert_eq!(report.accuracy, None);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction_percent(100.0, 50.0) - 50.0).abs() < 1e-12);
        assert!((reduction_percent(100.0, 100.0)).abs() < 1e-12);
        assert_eq!(reduction_percent(0.0, 10.0), 0.0);
        assert!(reduction_percent(50.0, 75.0) < 0.0); // regressions are visible
    }

    #[test]
    fn latency_ms_conversion() {
        let r = rec(5_500_000, Path::EdgeHit, None);
        assert!((r.latency_ms() - 5.5).abs() < 1e-12);
    }
}

//! Fixture: errors are propagated, and tests may unwrap freely.

fn parse(input: &str) -> Result<u64, String> {
    let first = input.split(',').next().ok_or("empty input")?;
    first.parse().map_err(|e| format!("numeric field: {e}"))
}

/// `unwrap_or` and friends are not `.unwrap()`.
fn fallback(input: Option<u64>) -> u64 {
    input.unwrap_or(0).max(input.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_allowed() {
        assert_eq!(super::parse("7").unwrap(), 7);
        assert!(super::parse("").err().expect("error").contains("empty"));
    }
}

#[test]
fn top_level_test_items_too() {
    let v: Option<u8> = Some(1);
    assert_eq!(v.unwrap(), 1);
}

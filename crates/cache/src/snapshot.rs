//! Snapshot/epoch concurrent approximate cache — the descriptor hot path.
//!
//! The live edge answers "is any cached descriptor within threshold of
//! this query?" from many connection threads at once. The previous
//! design sharded the descriptor space, which fragmented LSH buckets and
//! made p95 *worse* than a single mutex (`bench/baseline.json` rev
//! a68375a). This cache takes the opposite approach — RCU-style
//! snapshots:
//!
//! * **Lookups walk an immutable snapshot with zero locks.** The shared
//!   state is a pair of `Arc`s (snapshot + journal) behind a `RwLock`
//!   that is held only long enough to clone the two `Arc`s — never
//!   during the ANN search itself. The snapshot owns a batch-built
//!   [`AnnIndex`] (multi-probe LSH, HNSW, or linear scan) that is never
//!   mutated after construction, so any number of threads walk it
//!   concurrently without coordination.
//! * **Inserts append to a write-side journal.** New entries go into a
//!   bounded copy-on-write journal; lookups scan it linearly (it is at
//!   most `rebuild_batch` deep), so an insert is visible to every
//!   subsequent lookup immediately — no lost inserts while waiting for
//!   a rebuild.
//! * **An explicit [`SnapshotApproxCache::maintain`] tick folds the
//!   journal** into a freshly built snapshot: merge entries, apply
//!   batched-LRU eviction, batch-build the index *outside* the state
//!   lock, then swap the snapshot `Arc` and trim the folded journal
//!   prefix. No background threads — the engine tick (netrun's insert
//!   path, the sim loop) drives folding deterministically, preserving
//!   the sans-IO rules. Inserts also self-fold when the journal reaches
//!   `rebuild_batch`, bounding the journal scan.
//!
//! Recency without write-locking: every snapshot entry carries an
//! `Arc<AtomicU64>` last-used tick that hits bump with a relaxed
//! `fetch_max`; eviction at fold time orders by `(last_used, id)` —
//! approximate LRU, exact enough for the workloads measured in
//! EXPERIMENTS.md. The loom model in `tests/model.rs` explores the
//! swap/handoff protocol (no lost inserts, no torn reads), and the
//! recall property test pins the hit/miss decision to brute force.

use crate::ann::{AnnFamily, AnnIndex, ProbeStats};
use crate::metrics::{Lookup, Metrics};
use crate::sync::{AtomicU64, Mutex, Ordering, RwLock};
use coic_obs::MetricsRegistry;
use coic_vision::distance::l2;
use coic_vision::features::FeatureVec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default journal depth that triggers a self-fold on insert.
pub const DEFAULT_REBUILD_BATCH: usize = 64;

/// One committed entry inside an immutable snapshot.
struct SnapEntry<V> {
    vec: FeatureVec,
    value: Arc<V>,
    size: u64,
    /// Last-used tick (ns), bumped by lookups with a relaxed `fetch_max`;
    /// shared across snapshot generations so recency survives rebuilds.
    last_used: Arc<AtomicU64>,
}

impl<V> Clone for SnapEntry<V> {
    fn clone(&self) -> Self {
        SnapEntry {
            vec: self.vec.clone(),
            value: Arc::clone(&self.value),
            size: self.size,
            last_used: Arc::clone(&self.last_used),
        }
    }
}

/// A not-yet-folded insert, visible to lookups via the journal scan.
struct JournalEntry<V> {
    id: u64,
    vec: FeatureVec,
    value: Arc<V>,
    size: u64,
}

impl<V> Clone for JournalEntry<V> {
    fn clone(&self) -> Self {
        JournalEntry {
            id: self.id,
            vec: self.vec.clone(),
            value: Arc::clone(&self.value),
            size: self.size,
        }
    }
}

/// An immutable generation: entries + the batch-built index over them.
struct Snapshot<V> {
    index: Box<dyn AnnIndex>,
    entries: BTreeMap<u64, SnapEntry<V>>,
    used_bytes: u64,
    version: u64,
}

/// The two `Arc`s lookups clone under the (briefly held) read lock.
struct Shared<V> {
    snapshot: Arc<Snapshot<V>>,
    journal: Arc<Vec<JournalEntry<V>>>,
}

/// Hot-path counters (relaxed atomics; snapshotted by telemetry).
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    rejected: AtomicU64,
    evictions: AtomicU64,
    rebuilds: AtomicU64,
    folded: AtomicU64,
    distance_evals: AtomicU64,
    buckets_probed: AtomicU64,
    fallback_scans: AtomicU64,
    lookups_since_rebuild: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            folded: AtomicU64::new(0),
            distance_evals: AtomicU64::new(0),
            buckets_probed: AtomicU64::new(0),
            fallback_scans: AtomicU64::new(0),
            lookups_since_rebuild: AtomicU64::new(0),
        }
    }
}

struct Inner<V> {
    state: RwLock<Shared<V>>,
    /// Serializes folds: concurrent `maintain` calls queue here, so the
    /// journal prefix captured by a fold can only *grow* (by appends)
    /// before its swap — never shrink or reorder.
    fold_lock: Mutex<()>,
    threshold: f32,
    capacity_bytes: u64,
    family: AnnFamily,
    dim: usize,
    rebuild_batch: usize,
    next_id: AtomicU64,
    counters: Counters,
}

/// Telemetry snapshot of the index hot path, published under `index.*`
/// (see [`IndexTelemetry::publish`]). `coic obs report` renders these.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct IndexTelemetry {
    /// Lookups served.
    pub lookups: u64,
    /// Exact distance evaluations across all lookups (the classic ANN
    /// "probe count" — lower is better at equal recall).
    pub probe_count: u64,
    /// Buckets (LSH) or graph nodes (HNSW) expanded.
    pub buckets_probed: u64,
    /// Conservative full-scan fallbacks (no candidates surfaced).
    pub fallback_scans: u64,
    /// Snapshot rebuilds (journal folds) performed.
    pub rebuilds: u64,
    /// Journal entries folded across all rebuilds.
    pub folded: u64,
    /// Entries currently waiting in the journal.
    pub journal_depth: u64,
    /// Lookups served from the current snapshot since its build — how
    /// stale the read structure is, in units of traffic.
    pub snapshot_age: u64,
    /// Entries in the current snapshot.
    pub snapshot_len: u64,
    /// Entries evicted at fold time.
    pub evictions: u64,
}

impl IndexTelemetry {
    /// Mean distance evaluations per lookup (zero when no lookups ran).
    pub fn probes_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probe_count as f64 / self.lookups as f64
        }
    }

    /// Publish into `reg`: counters `index.lookup`, `index.probe_count`,
    /// `index.bucket_probe`, `index.fallback_scan`, `index.rebuild`,
    /// `index.folded`, `index.eviction`; gauges `index.journal_depth`,
    /// `index.snapshot_age`, `index.snapshot_len`.
    pub fn publish(&self, reg: &MetricsRegistry) {
        reg.counter_add("index.lookup", self.lookups);
        reg.counter_add("index.probe_count", self.probe_count);
        reg.counter_add("index.bucket_probe", self.buckets_probed);
        reg.counter_add("index.fallback_scan", self.fallback_scans);
        reg.counter_add("index.rebuild", self.rebuilds);
        reg.counter_add("index.folded", self.folded);
        reg.counter_add("index.eviction", self.evictions);
        reg.gauge_set("index.journal_depth", self.journal_depth as i64);
        reg.gauge_set("index.snapshot_age", self.snapshot_age as i64);
        reg.gauge_set("index.snapshot_len", self.snapshot_len as i64);
    }
}

/// Where a lookup's best candidate came from.
enum Found {
    Snap(u64),
    Journal(usize),
}

/// A concurrently shareable approximate cache built on immutable
/// `Arc`-swapped snapshots (see the module docs).
pub struct SnapshotApproxCache<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for SnapshotApproxCache<V> {
    fn clone(&self) -> Self {
        SnapshotApproxCache {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> SnapshotApproxCache<V> {
    /// Create a cache: hits require L2 distance ≤ `threshold`; the
    /// journal self-folds at `rebuild_batch` entries.
    ///
    /// # Panics
    /// Panics if `threshold` is not positive and finite, `capacity_bytes`
    /// or `rebuild_batch` is zero, or the family parameters are invalid.
    pub fn new(
        capacity_bytes: u64,
        threshold: f32,
        family: AnnFamily,
        dim: usize,
        rebuild_batch: usize,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        assert!(capacity_bytes > 0, "capacity must be positive");
        assert!(rebuild_batch > 0, "rebuild batch must be positive");
        let snapshot = Snapshot {
            index: family.build(dim, Vec::new()),
            entries: BTreeMap::new(),
            used_bytes: 0,
            version: 0,
        };
        SnapshotApproxCache {
            inner: Arc::new(Inner {
                state: RwLock::new(Shared {
                    snapshot: Arc::new(snapshot),
                    journal: Arc::new(Vec::new()),
                }),
                fold_lock: Mutex::new(()),
                threshold,
                capacity_bytes,
                family,
                dim,
                rebuild_batch,
                next_id: AtomicU64::new(0),
                counters: Counters::new(),
            }),
        }
    }

    /// Clone the two shared `Arc`s; the read guard lives only for the
    /// two reference-count bumps — never across a search.
    fn load(&self) -> (Arc<Snapshot<V>>, Arc<Vec<JournalEntry<V>>>) {
        let st = self.inner.state.read();
        (Arc::clone(&st.snapshot), Arc::clone(&st.journal))
    }

    /// Threshold lookup. Walks the immutable snapshot index lock-free,
    /// scans the (bounded) journal so fresh inserts are visible, and
    /// bumps the winner's recency tick on a hit.
    pub fn lookup(&self, query: &FeatureVec, now_ns: u64) -> Lookup<Arc<V>> {
        let (snapshot, journal) = self.load();
        let mut stats = ProbeStats::default();
        let mut best: Option<(f32, Found)> = snapshot
            .index
            .nearest(query, self.inner.threshold, &|_| true, &mut stats)
            .map(|(id, d)| (d, Found::Snap(id)));
        for (pos, entry) in journal.iter().enumerate() {
            stats.distance_evals += 1;
            let d = l2(query, &entry.vec);
            // Strict `<`: on exact ties the snapshot (smaller id) wins,
            // and within the journal the earliest entry wins.
            if best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
                best = Some((d, Found::Journal(pos)));
            }
        }
        let c = &self.inner.counters;
        c.lookups.fetch_add(1, Ordering::Relaxed);
        c.lookups_since_rebuild.fetch_add(1, Ordering::Relaxed);
        c.distance_evals
            .fetch_add(stats.distance_evals, Ordering::Relaxed);
        c.buckets_probed.fetch_add(stats.buckets, Ordering::Relaxed);
        c.fallback_scans
            .fetch_add(stats.fallback_scans, Ordering::Relaxed);
        let value = match best {
            Some((distance, found)) if distance <= self.inner.threshold => match found {
                Found::Snap(id) => snapshot.entries.get(&id).map(|e| {
                    e.last_used.fetch_max(now_ns, Ordering::Relaxed);
                    (Arc::clone(&e.value), distance)
                }),
                Found::Journal(pos) => journal.get(pos).map(|e| (Arc::clone(&e.value), distance)),
            },
            _ => None,
        };
        match value {
            Some((value, distance)) => {
                c.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::ApproxHit { value, distance }
            }
            None => {
                c.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Insert a descriptor/result pair of `size` bytes. The entry is
    /// journaled (visible to lookups immediately) and folded into the
    /// next snapshot; when the journal reaches `rebuild_batch` the fold
    /// runs inline. Returns how many journal entries were folded (zero
    /// when no fold ran).
    pub fn insert(&self, descriptor: FeatureVec, value: V, size: u64, now_ns: u64) -> usize {
        assert_eq!(descriptor.dim(), self.inner.dim, "descriptor dim mismatch");
        if size > self.inner.capacity_bytes {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = JournalEntry {
            id,
            vec: descriptor,
            value: Arc::new(value),
            size,
        };
        let depth = {
            let mut st = self.inner.state.write();
            // Copy-on-write append: the vector is bounded by
            // rebuild_batch, so the clone is O(batch), not O(cache).
            let mut journal: Vec<JournalEntry<V>> = (*st.journal).clone();
            journal.push(entry);
            let depth = journal.len();
            st.journal = Arc::new(journal);
            depth
        };
        self.inner
            .counters
            .insertions
            .fetch_add(1, Ordering::Relaxed);
        if depth >= self.inner.rebuild_batch {
            self.maintain(now_ns)
        } else {
            0
        }
    }

    /// Fold the journal into a freshly built snapshot: merge entries,
    /// evict by `(last_used, id)` until within capacity, batch-build the
    /// ANN index *outside* the state lock, then swap. Deterministic given
    /// the operation sequence; no background threads — callers (the
    /// engine tick, the insert self-fold) decide when this runs.
    ///
    /// Returns how many journal entries were folded.
    pub fn maintain(&self, now_ns: u64) -> usize {
        let _fold = self.inner.fold_lock.lock();
        let (snapshot, journal) = self.load();
        if journal.is_empty() {
            return 0;
        }
        let folded = journal.len();
        let mut entries = snapshot.entries.clone();
        let mut used = snapshot.used_bytes;
        for je in journal.iter() {
            let fresh = SnapEntry {
                vec: je.vec.clone(),
                value: Arc::clone(&je.value),
                size: je.size,
                last_used: Arc::new(AtomicU64::new(now_ns)),
            };
            if let Some(old) = entries.insert(je.id, fresh) {
                used = used.saturating_sub(old.size);
            }
            used += je.size;
        }
        let mut evicted = 0u64;
        if used > self.inner.capacity_bytes {
            let mut order: Vec<(u64, u64, u64)> = entries
                .iter()
                .map(|(id, e)| (e.last_used.load(Ordering::Relaxed), *id, e.size))
                .collect();
            order.sort_unstable();
            for (_, id, size) in order {
                if used <= self.inner.capacity_bytes {
                    break;
                }
                entries.remove(&id);
                used = used.saturating_sub(size);
                evicted += 1;
            }
        }
        // The expensive part — the batch build — runs with no lock held
        // but the fold mutex: readers keep serving the old snapshot.
        let items: Vec<(u64, FeatureVec)> =
            entries.iter().map(|(id, e)| (*id, e.vec.clone())).collect();
        let index = self.inner.family.build(self.inner.dim, items);
        let fresh = Arc::new(Snapshot {
            index,
            entries,
            used_bytes: used,
            version: snapshot.version + 1,
        });
        {
            let mut st = self.inner.state.write();
            // Only appends can have happened since our capture (folds are
            // serialized by fold_lock), so the first `folded` entries are
            // exactly the ones baked into `fresh`; keep the suffix.
            let suffix: Vec<JournalEntry<V>> = st
                .journal
                .get(folded..)
                .map(|rest| rest.to_vec())
                .unwrap_or_default();
            st.snapshot = fresh;
            st.journal = Arc::new(suffix);
        }
        let c = &self.inner.counters;
        c.rebuilds.fetch_add(1, Ordering::Relaxed);
        c.folded.fetch_add(folded as u64, Ordering::Relaxed);
        c.evictions.fetch_add(evicted, Ordering::Relaxed);
        c.lookups_since_rebuild.store(0, Ordering::Relaxed);
        folded
    }

    /// The hit threshold.
    pub fn threshold(&self) -> f32 {
        self.inner.threshold
    }

    /// The configured index family's label (`mp-lsh`, `hnsw`, `linear`).
    pub fn family_label(&self) -> &'static str {
        self.inner.family.label()
    }

    /// Live entries (snapshot + journal; journal ids are always fresh).
    pub fn len(&self) -> usize {
        let (snapshot, journal) = self.load();
        snapshot.entries.len() + journal.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes in use (snapshot accounting + journaled entries).
    pub fn used_bytes(&self) -> u64 {
        let (snapshot, journal) = self.load();
        snapshot.used_bytes + journal.iter().map(|e| e.size).sum::<u64>()
    }

    /// Entries currently waiting in the journal.
    pub fn journal_depth(&self) -> usize {
        self.load().1.len()
    }

    /// Generation counter of the current snapshot (0 = initial empty).
    pub fn snapshot_version(&self) -> u64 {
        self.load().0.version
    }

    /// The unified cache counter view (hits/misses/insertions/evictions/
    /// rejections), publishable under `cache.<name>.*` like every other
    /// cache in the tree.
    pub fn metrics(&self) -> Metrics {
        let c = &self.inner.counters;
        Metrics {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            insertions: c.insertions.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            ..Metrics::default()
        }
    }

    /// The index hot-path telemetry snapshot (probe counts, rebuilds,
    /// journal depth, snapshot age).
    pub fn index_telemetry(&self) -> IndexTelemetry {
        let c = &self.inner.counters;
        let (snapshot, journal) = self.load();
        IndexTelemetry {
            lookups: c.lookups.load(Ordering::Relaxed),
            probe_count: c.distance_evals.load(Ordering::Relaxed),
            buckets_probed: c.buckets_probed.load(Ordering::Relaxed),
            fallback_scans: c.fallback_scans.load(Ordering::Relaxed),
            rebuilds: c.rebuilds.load(Ordering::Relaxed),
            folded: c.folded.load(Ordering::Relaxed),
            journal_depth: journal.len() as u64,
            snapshot_age: c.lookups_since_rebuild.load(Ordering::Relaxed),
            snapshot_len: snapshot.entries.len() as u64,
            evictions: c.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(all(test, not(feature = "model-check")))]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> FeatureVec {
        FeatureVec::new(data.to_vec())
    }

    fn cache(capacity: u64, batch: usize) -> SnapshotApproxCache<u64> {
        SnapshotApproxCache::new(capacity, 0.3, AnnFamily::DEFAULT_MPLSH, 2, batch)
    }

    #[test]
    fn insert_is_visible_before_any_fold() {
        let c = cache(1 << 20, 64);
        c.insert(v(&[1.0, 0.0]), 7, 100, 0);
        assert_eq!(c.journal_depth(), 1);
        assert_eq!(c.snapshot_version(), 0);
        match c.lookup(&v(&[0.98, 0.02]), 1) {
            Lookup::ApproxHit { value, distance } => {
                assert_eq!(*value, 7);
                assert!(distance < 0.1);
            }
            other => panic!("journaled insert invisible: {other:?}"),
        }
    }

    #[test]
    fn maintain_folds_journal_into_snapshot() {
        let c = cache(1 << 20, 64);
        for i in 0..8u64 {
            let a = i as f32;
            c.insert(v(&[a.cos(), a.sin()]), i, 50, i);
        }
        assert_eq!(c.journal_depth(), 8);
        assert_eq!(c.maintain(100), 8);
        assert_eq!(c.journal_depth(), 0);
        assert_eq!(c.snapshot_version(), 1);
        assert_eq!(c.len(), 8);
        for i in 0..8u64 {
            let a = i as f32 + 0.01;
            let hit = c.lookup(&v(&[a.cos(), a.sin()]), 200);
            assert_eq!(
                hit.into_value().as_deref(),
                Some(&i),
                "entry {i} lost by fold"
            );
        }
        assert_eq!(c.maintain(300), 0, "empty journal folds nothing");
        let t = c.index_telemetry();
        assert_eq!((t.rebuilds, t.folded), (1, 8));
        assert!(t.probe_count > 0);
    }

    #[test]
    fn journal_self_folds_at_batch() {
        let c = cache(1 << 20, 4);
        for i in 0..3u64 {
            assert_eq!(c.insert(v(&[i as f32, 0.0]), i, 10, i), 0);
        }
        assert_eq!(c.insert(v(&[3.0, 0.0]), 3, 10, 3), 4);
        assert_eq!(c.journal_depth(), 0);
        assert_eq!(c.snapshot_version(), 1);
    }

    #[test]
    fn far_query_misses_and_counts() {
        let c = cache(1 << 20, 64);
        c.insert(v(&[1.0, 0.0]), 1, 10, 0);
        assert!(!c.lookup(&v(&[-5.0, 5.0]), 1).is_hit());
        let m = c.metrics();
        assert_eq!((m.hits, m.misses, m.insertions), (0, 1, 1));
    }

    #[test]
    fn eviction_at_fold_respects_recency() {
        let c = cache(250, 64);
        c.insert(v(&[0.0, 1.0]), 0, 100, 0);
        c.insert(v(&[1.0, 0.0]), 1, 100, 1);
        c.maintain(2);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(c.lookup(&v(&[0.0, 1.0]), 10).is_hit());
        c.insert(v(&[0.0, -1.0]), 2, 100, 20);
        c.maintain(21); // 300 bytes > 250: one eviction
        assert_eq!(c.len(), 2);
        assert!(
            c.lookup(&v(&[0.0, 1.0]), 30).is_hit(),
            "recently used entry evicted"
        );
        assert!(
            !c.lookup(&v(&[1.0, 0.0]), 31).is_hit(),
            "LRU victim survived"
        );
        assert!(c.lookup(&v(&[0.0, -1.0]), 32).is_hit());
        assert_eq!(c.metrics().evictions, 1);
        assert!(c.used_bytes() <= 250);
    }

    #[test]
    fn oversized_insert_is_rejected() {
        let c = cache(100, 64);
        assert_eq!(c.insert(v(&[1.0, 0.0]), 9, 1_000, 0), 0);
        assert!(c.is_empty());
        assert_eq!(c.metrics().rejected, 1);
    }

    #[test]
    fn telemetry_tracks_journal_and_age() {
        let c = cache(1 << 20, 64);
        c.insert(v(&[1.0, 0.0]), 1, 10, 0);
        c.insert(v(&[0.0, 1.0]), 2, 10, 1);
        let _ = c.lookup(&v(&[1.0, 0.0]), 2);
        let t = c.index_telemetry();
        assert_eq!(t.journal_depth, 2);
        assert_eq!(t.snapshot_age, 1);
        assert_eq!(t.snapshot_len, 0);
        c.maintain(3);
        let t = c.index_telemetry();
        assert_eq!((t.journal_depth, t.snapshot_age, t.snapshot_len), (0, 0, 2));
        assert!(t.probes_per_lookup() > 0.0);
        // Publish lands under the index.* keys.
        let reg = MetricsRegistry::new();
        t.publish(&reg);
        assert_eq!(reg.counter("index.rebuild"), 1);
        assert_eq!(reg.gauge("index.snapshot_len"), 2);
    }

    #[test]
    fn all_families_roundtrip() {
        for family in [
            AnnFamily::Linear,
            AnnFamily::DEFAULT_MPLSH,
            AnnFamily::DEFAULT_HNSW,
        ] {
            let c: SnapshotApproxCache<u64> = SnapshotApproxCache::new(1 << 20, 0.3, family, 2, 8);
            for i in 0..12u64 {
                let a = i as f32 * 0.5;
                c.insert(v(&[a.cos(), a.sin()]), i, 50, i);
            }
            c.maintain(100);
            for i in 0..12u64 {
                let a = i as f32 * 0.5 + 0.01;
                let hit = c.lookup(&v(&[a.cos(), a.sin()]), 200);
                assert_eq!(
                    hit.into_value().as_deref(),
                    Some(&i),
                    "{} lost entry {i}",
                    family.label()
                );
            }
        }
    }

    #[test]
    fn concurrent_lookups_and_inserts_smoke() {
        let c: SnapshotApproxCache<u64> =
            SnapshotApproxCache::new(1 << 20, 0.3, AnnFamily::DEFAULT_MPLSH, 2, 16);
        for i in 0..32u64 {
            let a = i as f32 * 0.19;
            c.insert(v(&[a.cos(), a.sin()]), i, 50, i);
        }
        c.maintain(50);
        let readers: Vec<_> = (0..4u64)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    for i in 0..2_000u64 {
                        let a = ((t + i) % 32) as f32 * 0.19 + 0.005;
                        if c.lookup(&v(&[a.cos(), a.sin()]), i).is_hit() {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        let writer = {
            let c = c.clone();
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    let a = (i as f32) * 0.31 + 40.0;
                    c.insert(v(&[a.cos(), a.sin()]), 1000 + i, 50, 1000 + i);
                }
            })
        };
        let total: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
        writer.join().expect("writer");
        assert_eq!(total, 8_000, "stored descriptors must always hit");
        c.maintain(10_000);
        assert_eq!(c.len(), 232);
        let m = c.metrics();
        assert_eq!(m.insertions, 232);
        assert!(m.hits >= 8_000);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_threshold_rejected() {
        let _: SnapshotApproxCache<u64> =
            SnapshotApproxCache::new(1024, f32::NAN, AnnFamily::Linear, 2, 8);
    }
}

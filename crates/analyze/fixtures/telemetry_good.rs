//! Fixture: declared names only, and the counter/event pair bumped and
//! emitted from the same file. Never compiled.

fn frame(stats: &mut Stats, trace: &mut Trace) {
    stats.count_frame();
    trace.event("fixture.frame_done");
}

fn publish(reg: &mut Registry) {
    reg.counter_add("fixture.frames", 1);
}

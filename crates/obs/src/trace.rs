//! Structured trace spans and events with typed key–value fields.
//!
//! A trace is an append-only sequence of [`TraceEvent`]s. Timestamps are
//! caller-provided virtual-or-wall nanoseconds (this crate never reads a
//! clock), names and field keys are `&'static str` so the hot path
//! allocates only the field vector, and the JSONL export is deterministic:
//! events in recorded order, fields in caller order.

use std::sync::{Arc, Mutex};

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (JSON-encoded with Rust's shortest-roundtrip formatting).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

/// What kind of trace record this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened.
    Enter,
    /// A span closed.
    Exit,
    /// A point event.
    Event,
}

impl TraceKind {
    fn as_str(self) -> &'static str {
        match self {
            TraceKind::Enter => "enter",
            TraceKind::Exit => "exit",
            TraceKind::Event => "event",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Caller-provided timestamp, nanoseconds.
    pub at_ns: u64,
    /// Enter/exit/event.
    pub kind: TraceKind,
    /// Record name, e.g. `request` or `edge.lookup`.
    pub name: &'static str,
    /// Typed fields, in caller order.
    pub fields: Vec<(&'static str, Value)>,
}

/// An append-only, clonable trace buffer. A disabled log drops every
/// record, so instrumentation can stay unconditionally wired.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// A recording trace log.
    pub fn enabled() -> TraceLog {
        TraceLog {
            enabled: true,
            events: Arc::default(),
        }
    }

    /// A log that discards every record.
    pub fn disabled() -> TraceLog {
        TraceLog::default()
    }

    /// Does this log record anything? Callers can use this to skip
    /// building field vectors on hot paths.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record (no-op when disabled).
    pub fn push(
        &self,
        at_ns: u64,
        kind: TraceKind,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        let mut guard = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.push(TraceEvent {
            at_ns,
            kind,
            name,
            fields,
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all records, in append order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match self.events.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Export the trace as JSON Lines: one object per record,
    /// `{"t":ns,"k":"enter|exit|event","n":"name","f":{...}}`, fields in
    /// recorded order. Deterministic for a deterministic event sequence.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str("{\"t\":");
            out.push_str(&ev.at_ns.to_string());
            out.push_str(",\"k\":\"");
            out.push_str(ev.kind.as_str());
            out.push_str("\",\"n\":\"");
            escape_into(ev.name, &mut out);
            out.push_str("\",\"f\":{");
            for (i, (key, value)) in ev.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(key, &mut out);
                out.push_str("\":");
                write_value(value, &mut out);
            }
            out.push_str("}}\n");
        }
        out
    }
}

fn write_value(v: &Value, out: &mut String) {
    use std::fmt::Write as _;
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            escape_into(s, out);
            out.push('"');
        }
    }
}

/// Minimal JSON string escaping (quote, backslash, control characters).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_one_object_per_event_in_order() {
        let log = TraceLog::enabled();
        log.push(
            5,
            TraceKind::Enter,
            "request",
            vec![("seq", Value::U64(0)), ("kind", Value::from("pano"))],
        );
        log.push(
            9,
            TraceKind::Exit,
            "request",
            vec![("ok", Value::Bool(true))],
        );
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":5,\"k\":\"enter\",\"n\":\"request\",\"f\":{\"seq\":0,\"kind\":\"pano\"}}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":9,\"k\":\"exit\",\"n\":\"request\",\"f\":{\"ok\":true}}"
        );
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::disabled();
        log.push(1, TraceKind::Event, "x", vec![]);
        assert!(log.is_empty());
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn strings_are_escaped() {
        let log = TraceLog::enabled();
        log.push(
            0,
            TraceKind::Event,
            "x",
            vec![("s", Value::from("a\"b\\c\nd"))],
        );
        assert!(log.to_jsonl().contains("\"s\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let log = TraceLog::enabled();
        log.push(0, TraceKind::Event, "x", vec![("f", Value::F64(f64::NAN))]);
        assert!(log.to_jsonl().contains("\"f\":null"));
    }
}

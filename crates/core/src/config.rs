//! Shared configuration core and typed builders for the two drivers.
//!
//! [`SimConfig`](crate::simrun::SimConfig) and
//! [`NetConfig`](crate::netrun::NetConfig) describe the same experiment to
//! two different executors — virtual-time simulation and real sockets —
//! and the determinism proofs only hold when the knobs they share agree.
//! [`CommonConfig`] is that shared core: build it once, apply it to both
//! sides via [`NetConfig::builder`](crate::netrun::NetConfig::builder) /
//! [`SimConfig::builder`](crate::simrun::SimConfig::builder), and the two
//! stacks cannot drift.
//!
//! The builders are the supported construction path. The bare structs keep
//! `Default` + public fields so existing struct-literal call sites compile
//! for one more release, but new code should not spell out field bags:
//!
//! ```
//! use coic_core::netrun::NetConfig;
//! use coic_core::engine::AdmissionConfig;
//!
//! let net = NetConfig::builder()
//!     .admission(AdmissionConfig::fixed(8))
//!     .build();
//! assert!(net.admission.is_some());
//! ```

use crate::engine::{AdmissionConfig, BrownoutConfig, FaultSchedule, RetryPolicy};
use crate::netrun::NetConfig;
use crate::services::{ClientConfig, EdgeConfig};
use crate::simrun::SimConfig;
use coic_obs::Telemetry;
use std::time::Duration;

/// Which IO driver a live edge serves connections with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// Legacy thread-per-connection: one blocking service thread per
    /// accepted socket. Simple, and right for a handful of clients.
    #[default]
    Threads,
    /// Readiness-driven event loop: one IO thread multiplexes every
    /// connection (batched frame decode, coalesced writes, admission
    /// backpressure), dispatching decoded frames to a bounded worker
    /// pool. Right for large fan-in populations.
    Evloop,
}

impl DriverKind {
    /// Parse a `--driver` CLI value.
    pub fn parse(s: &str) -> Option<DriverKind> {
        match s {
            "threads" => Some(DriverKind::Threads),
            "evloop" => Some(DriverKind::Evloop),
            _ => None,
        }
    }

    /// Canonical CLI/report spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            DriverKind::Threads => "threads",
            DriverKind::Evloop => "evloop",
        }
    }
}

/// Tuning for the event-loop driver ([`DriverKind::Evloop`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvloopConfig {
    /// Worker threads running the (blocking) frame handler. The IO thread
    /// itself never blocks on service work.
    pub workers: usize,
    /// Bound on frames decoded but not yet picked up by a worker. When
    /// the dispatch queue is full the loop stops reading from every
    /// connection — kernel socket buffers fill and TCP pushes back on the
    /// clients instead of the edge buffering unboundedly. With admission
    /// control configured this bound is additionally clamped to the
    /// admission queue, so poller backpressure engages no later than the
    /// admission controller would start shedding.
    pub dispatch_depth: usize,
    /// Per-connection bound on dispatched-but-unanswered frames; a
    /// pipelining client beyond this has its reads paused.
    pub per_conn_inflight: usize,
    /// Per-connection bound on queued (encoded, unflushed) reply bytes.
    /// A stalled reader that lets replies pile past this is shed —
    /// connection dropped, `loop.conn_shed` counted — so one never-
    /// draining client cannot OOM the edge.
    pub max_write_queue_bytes: usize,
}

impl Default for EvloopConfig {
    fn default() -> EvloopConfig {
        EvloopConfig {
            workers: 8,
            dispatch_depth: 256,
            per_conn_inflight: 32,
            max_write_queue_bytes: 8 * 1024 * 1024,
        }
    }
}

/// The experiment knobs shared by the simulator and the live stack.
///
/// Everything here has the same meaning on both sides; applying one
/// `CommonConfig` to both builders is what keeps a sim-vs-live comparison
/// apples-to-apples.
#[derive(Debug, Clone)]
pub struct CommonConfig {
    /// Client retry/backoff policy per request.
    pub retry: RetryPolicy,
    /// How long a client waits on any single attempt before retrying
    /// (live: socket read deadline; sim: request timeout).
    pub request_deadline: Duration,
    /// While degraded, how often the client probes the edge to rejoin.
    pub probe_interval: Duration,
    /// Deterministic fault injection at the client send boundary.
    pub faults: FaultSchedule,
    /// Edge admission control (`None` admits everything immediately).
    pub admission: Option<AdmissionConfig>,
    /// Brownout ladder over the admission queue.
    pub brownout: Option<BrownoutConfig>,
    /// Edge cache configuration.
    pub edge: EdgeConfig,
    /// Client preprocessing configuration.
    pub client: ClientConfig,
}

impl Default for CommonConfig {
    fn default() -> CommonConfig {
        CommonConfig::new()
    }
}

impl CommonConfig {
    /// Start from the live stack's defaults (5 s deadline, 100 ms probe).
    pub fn new() -> CommonConfig {
        let net = NetConfig::default();
        CommonConfig {
            retry: net.retry,
            request_deadline: net.request_deadline,
            probe_interval: net.probe_interval,
            faults: net.faults,
            admission: None,
            brownout: None,
            edge: EdgeConfig::default(),
            client: ClientConfig::default(),
        }
    }
}

/// Generate chained `fn name(mut self, value) -> Self` setters that assign
/// straight into `self.cfg.<field>`.
macro_rules! setters {
    ($($(#[$doc:meta])* $name:ident : $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, value: $ty) -> Self {
                self.cfg.$name = value;
                self
            }
        )*
    };
}

/// Typed builder for [`NetConfig`]. Obtain via [`NetConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct NetConfigBuilder {
    cfg: NetConfig,
}

impl NetConfigBuilder {
    setters! {
        /// Client-side retry/backoff policy per request.
        retry: RetryPolicy,
        /// How long a client waits for any single reply frame.
        request_deadline: Duration,
        /// Bound on TCP connection establishment.
        connect_timeout: Duration,
        /// While degraded, how often the client probes the edge to rejoin.
        probe_interval: Duration,
        /// Deadline on the edge's own upstream calls (cloud, peers).
        edge_call_deadline: Duration,
        /// Consecutive cloud-leg failures that trip the edge's breaker.
        breaker_threshold: u32,
        /// How long the tripped breaker rejects before probing the cloud.
        breaker_cooldown: Duration,
        /// Deterministic fault injection at the client's IO boundary.
        faults: FaultSchedule,
        /// Lock shards per edge cache (clamped to at least 1).
        cache_shards: usize,
        /// Observability handle shared by everything under this config.
        telemetry: Telemetry,
        /// Which IO driver the edge serves connections with.
        driver: DriverKind,
        /// Event-loop tuning (only consulted under [`DriverKind::Evloop`]).
        evloop: EvloopConfig,
    }

    /// Enable edge admission control.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.cfg.admission = Some(admission);
        self
    }

    /// Enable the brownout ladder (meaningful with admission control).
    #[must_use]
    pub fn brownout(mut self, brownout: BrownoutConfig) -> Self {
        self.cfg.brownout = Some(brownout);
        self
    }

    /// Apply the sim/live shared core in one shot.
    #[must_use]
    pub fn common(mut self, common: &CommonConfig) -> Self {
        self.cfg.retry = common.retry.clone();
        self.cfg.request_deadline = common.request_deadline;
        self.cfg.probe_interval = common.probe_interval;
        self.cfg.faults = common.faults.clone();
        self.cfg.admission = common.admission.clone();
        self.cfg.brownout = common.brownout.clone();
        self
    }

    /// Finish the build.
    pub fn build(self) -> NetConfig {
        self.cfg
    }
}

/// Typed builder for [`SimConfig`]. Obtain via [`SimConfig::builder`].
#[derive(Clone, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    setters! {
        /// Origin baseline or CoIC.
        mode: crate::simrun::Mode,
        /// Where recognition inference runs on misses.
        exec_tier: crate::simrun::ExecTier,
        /// Client↔edge bandwidth, Mbit/s.
        access_mbps: f64,
        /// Client↔edge one-way delay, ms.
        access_delay_ms: u64,
        /// Edge↔cloud bandwidth, Mbit/s.
        wan_mbps: f64,
        /// Edge↔cloud one-way delay, ms.
        wan_delay_ms: u64,
        /// Number of client devices.
        num_clients: u32,
        /// Number of edge servers.
        num_edges: u32,
        /// Inter-edge LAN bandwidth, Mbit/s.
        lan_mbps: f64,
        /// Inter-edge LAN one-way delay, ms.
        lan_delay_ms: u64,
        /// Query peer edges on an exact-task miss before the cloud.
        peer_lookup: bool,
        /// Deterministic edge-kill schedule.
        edge_down_ms: Vec<(u64, u32)>,
        /// Per-message loss probability on the access links.
        access_loss: f64,
        /// Per-message loss probability on the WAN link.
        wan_loss: f64,
        /// Client request timeout, ms (zero disables).
        request_timeout_ms: u64,
        /// Retransmissions before a request fails (legacy path).
        max_retries: u32,
        /// When the edge path is exhausted, degrade to the origin path.
        origin_fallback: bool,
        /// While degraded, minimum spacing between edge re-probes, ms.
        probe_interval_ms: u64,
        /// Deterministic fault injection at the client's send boundary.
        faults: FaultSchedule,
        /// Token-bucket shaping of each client's uplink.
        client_shaper: Option<(f64, u64)>,
        /// Time-varying access bandwidth steps.
        access_schedule: Vec<(u64, f64)>,
        /// Edge prefetch depth for sequential panorama streams.
        prefetch_depth: u32,
        /// Edge cache configuration.
        edge: EdgeConfig,
        /// Client preprocessing configuration.
        client: ClientConfig,
        /// Compute cost model.
        compute: crate::compute::ComputeConfig,
        /// Wire size charged for a camera-frame upload.
        image_wire_bytes: u64,
        /// Wire size charged for a recognition descriptor query.
        descriptor_wire_bytes: u64,
        /// Panorama frame height.
        pano_height: u32,
        /// Droptail queue depth per link direction, bytes.
        queue_limit_bytes: u64,
        /// Closed-loop clients (at most one outstanding request each).
        closed_loop: bool,
        /// RNG seed.
        seed: u64,
    }

    /// Client retry/backoff policy fed to the shared engine.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = Some(retry);
        self
    }

    /// Enable the cooperative cluster tier.
    #[must_use]
    pub fn cluster(mut self, cluster: crate::cluster::ClusterConfig) -> Self {
        self.cfg.cluster = Some(cluster);
        self
    }

    /// Enable edge admission control.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.cfg.admission = Some(admission);
        self
    }

    /// Enable the brownout ladder (meaningful with admission control).
    #[must_use]
    pub fn brownout(mut self, brownout: BrownoutConfig) -> Self {
        self.cfg.brownout = Some(brownout);
        self
    }

    /// Apply the sim/live shared core in one shot (durations are
    /// converted to the simulator's millisecond fields).
    #[must_use]
    pub fn common(mut self, common: &CommonConfig) -> Self {
        self.cfg.retry = Some(common.retry.clone());
        self.cfg.request_timeout_ms = common.request_deadline.as_millis() as u64;
        self.cfg.probe_interval_ms = common.probe_interval.as_millis() as u64;
        self.cfg.faults = common.faults.clone();
        self.cfg.admission = common.admission.clone();
        self.cfg.brownout = common.brownout.clone();
        self.cfg.edge = common.edge;
        self.cfg.client = common.client;
        self
    }

    /// Finish the build.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_share_the_common_core_without_drift() {
        let common = CommonConfig {
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(3),
                max_backoff: Duration::from_millis(9),
                jitter_frac: 0.0,
                seed: 11,
            },
            request_deadline: Duration::from_millis(750),
            probe_interval: Duration::from_millis(40),
            faults: FaultSchedule::new().drop_edge_attempt(0, 0),
            admission: Some(AdmissionConfig::fixed(2)),
            brownout: None,
            ..CommonConfig::new()
        };
        let net = NetConfig::builder().common(&common).build();
        let sim = SimConfig::builder().common(&common).build();
        assert_eq!(net.retry.max_attempts, 4);
        assert_eq!(sim.retry.as_ref().map(|r| r.max_attempts), Some(4));
        assert_eq!(
            net.request_deadline.as_millis() as u64,
            sim.request_timeout_ms
        );
        assert_eq!(net.probe_interval.as_millis() as u64, sim.probe_interval_ms);
        assert_eq!(
            net.admission.as_ref().map(|a| a.max_concurrency),
            sim.admission.as_ref().map(|a| a.max_concurrency)
        );
        assert!(net.faults.edge_dropped(0, 0) && sim.faults.edge_dropped(0, 0));
    }

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = NetConfig::builder().build();
        let literal = NetConfig::default();
        assert_eq!(built.request_deadline, literal.request_deadline);
        assert_eq!(built.cache_shards, literal.cache_shards);
        assert_eq!(built.driver, literal.driver);
        assert_eq!(built.evloop, literal.evloop);
    }

    #[test]
    fn driver_kind_round_trips_through_cli_spelling() {
        for kind in [DriverKind::Threads, DriverKind::Evloop] {
            assert_eq!(DriverKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(DriverKind::parse("fibers"), None);
    }
}

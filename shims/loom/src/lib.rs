//! Miniature in-tree [loom](https://github.com/tokio-rs/loom): an
//! exhaustive, deterministic interleaving explorer for concurrent code
//! (see shims/README.md for why it is in-tree).
//!
//! # What it does
//!
//! [`model`] runs a closure over *every* schedule of the threads it
//! spawns (optionally bounded in preemptions), provided the threads
//! synchronize exclusively through this crate's shimmed primitives:
//!
//! * [`sync::Mutex`] / [`sync::RwLock`] — parking_lot-style
//!   non-poisoning API, matching the in-tree `parking_lot` shim;
//! * [`sync::atomic`] — `AtomicU64` / `AtomicUsize` / `AtomicU32` /
//!   `AtomicBool` with the std API;
//! * [`thread::spawn`] / [`thread::JoinHandle`].
//!
//! Each synchronization operation is a *scheduling point*: the executing
//! thread parks, and a controller picks which runnable thread performs
//! its declared operation next. The controller explores the resulting
//! decision tree depth-first, replaying decision prefixes so every run
//! is deterministic: the same seed always enumerates the same schedules
//! in the same order. A thread whose declared operation cannot proceed
//! (the mutex is held, the rwlock has a writer, the joined task has not
//! finished) is simply not schedulable, so deadlocks surface as "no
//! schedulable thread" failures with a full schedule trace.
//!
//! # Pass-through outside a model
//!
//! The same types work outside [`model`] with no exploration and near
//! zero overhead (one thread-local read per operation): operations
//! delegate straight to `std::sync`. This lets production code route its
//! primitives through a `sync` facade module that compiles against this
//! crate under a `model-check` feature without changing behavior for
//! ordinary builds and tests.
//!
//! # Example
//!
//! ```
//! use loom::sync::Arc;
//! use loom::sync::atomic::{AtomicU64, Ordering};
//!
//! let report = loom::model::Builder::default()
//!     .check(|| {
//!         let n = Arc::new(AtomicU64::new(0));
//!         let n2 = Arc::clone(&n);
//!         let t = loom::thread::spawn(move || {
//!             n2.fetch_add(1, Ordering::SeqCst);
//!         });
//!         n.fetch_add(1, Ordering::SeqCst);
//!         t.join().unwrap();
//!         assert_eq!(n.load(Ordering::SeqCst), 2);
//!     })
//!     .expect("no schedule violates the invariant");
//! assert!(report.complete);
//! assert!(report.schedules >= 2, "both orders were explored");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sched;

pub mod model;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, ModelFailure, Report};

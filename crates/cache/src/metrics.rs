//! The unified cache metrics view and the typed lookup outcome.
//!
//! [`Metrics`] collapses the legacy [`CacheStats`] + [`TouchStats`] pair
//! into one flat struct that publishes to — and is derivable back from —
//! the [`coic_obs::MetricsRegistry`]. The per-shard relaxed atomics stay
//! where they are (they are the measured hot path); `Metrics` is the
//! snapshot every caller reads, and the legacy structs survive only as
//! `#[deprecated]` facade views computed from it.

use crate::sharded::TouchStats;
use crate::stats::CacheStats;
use coic_obs::MetricsRegistry;

/// Outcome of an edge-cache lookup, replacing the old bool/`Option`-tuple
/// returns: callers match on *why* a value was (or was not) served.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup<V> {
    /// The key matched exactly (digest-keyed caches).
    ExactHit(V),
    /// A stored descriptor matched within the distance threshold.
    ApproxHit {
        /// The matched value.
        value: V,
        /// Distance between query and matched descriptor.
        distance: f32,
    },
    /// No acceptable entry.
    Miss,
}

impl<V> Lookup<V> {
    /// Did the lookup produce a value?
    pub fn is_hit(&self) -> bool {
        !matches!(self, Lookup::Miss)
    }

    /// The served value, if any.
    pub fn value(&self) -> Option<&V> {
        match self {
            Lookup::ExactHit(v) | Lookup::ApproxHit { value: v, .. } => Some(v),
            Lookup::Miss => None,
        }
    }

    /// Consume the outcome, keeping only the served value.
    pub fn into_value(self) -> Option<V> {
        match self {
            Lookup::ExactHit(v) | Lookup::ApproxHit { value: v, .. } => Some(v),
            Lookup::Miss => None,
        }
    }

    /// Map the carried value, preserving the outcome kind.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> Lookup<U> {
        match self {
            Lookup::ExactHit(v) => Lookup::ExactHit(f(v)),
            Lookup::ApproxHit { value, distance } => Lookup::ApproxHit {
                value: f(value),
                distance,
            },
            Lookup::Miss => Lookup::Miss,
        }
    }

    /// Stable label for trace fields: `exact`, `approx` or `miss`.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Lookup::ExactHit(_) => "exact",
            Lookup::ApproxHit { .. } => "approx",
            Lookup::Miss => "miss",
        }
    }
}

/// One cache's merged counters: store accounting plus the deferred-touch
/// protocol, in a single registry-compatible view.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries dropped for TTL expiry.
    pub expired: u64,
    /// Inserts rejected (oversized).
    pub rejected: u64,
    /// Inserts rejected by the admission gate.
    pub admission_rejects: u64,
    /// Recency touches queued by read-path hits.
    pub touch_queued: u64,
    /// Touches dropped (queue full or contended).
    pub touch_dropped: u64,
    /// Touches replayed against a still-present key.
    pub touch_replayed: u64,
    /// Touches that found their key gone (protocol invariant: zero).
    pub touch_dead: u64,
}

/// Registry keys a cache publishes under `<prefix>.<key>`, in the fixed
/// order [`Metrics::publish`]/[`Metrics::from_registry`] use.
const KEYS: [&str; 11] = [
    "hits",
    "misses",
    "insertions",
    "evictions",
    "expired",
    "rejected",
    "admission_rejects",
    "touch_queued",
    "touch_dropped",
    "touch_replayed",
    "touch_dead",
];

impl Metrics {
    /// Combine the legacy stat pair into one view.
    pub fn from_parts(stats: CacheStats, touches: TouchStats) -> Metrics {
        Metrics {
            hits: stats.hits,
            misses: stats.misses,
            insertions: stats.insertions,
            evictions: stats.evictions,
            expired: stats.expired,
            rejected: stats.rejected,
            admission_rejects: stats.admission_rejects,
            touch_queued: touches.queued,
            touch_dropped: touches.dropped,
            touch_replayed: touches.replayed,
            touch_dead: touches.dead,
        }
    }

    fn values(&self) -> [u64; 11] {
        [
            self.hits,
            self.misses,
            self.insertions,
            self.evictions,
            self.expired,
            self.rejected,
            self.admission_rejects,
            self.touch_queued,
            self.touch_dropped,
            self.touch_replayed,
            self.touch_dead,
        ]
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio over all lookups (zero when none happened).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// The legacy store-counter view of this snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            expired: self.expired,
            rejected: self.rejected,
            admission_rejects: self.admission_rejects,
        }
    }

    /// The legacy touch-counter view of this snapshot.
    pub fn touch_stats(&self) -> TouchStats {
        TouchStats {
            queued: self.touch_queued,
            dropped: self.touch_dropped,
            replayed: self.touch_replayed,
            dead: self.touch_dead,
        }
    }

    /// Add this snapshot into `reg` as counters named `<prefix>.<key>`.
    pub fn publish(&self, reg: &MetricsRegistry, prefix: &str) {
        for (key, value) in KEYS.iter().zip(self.values()) {
            reg.counter_add(&format!("{prefix}.{key}"), value);
        }
    }

    /// Read the snapshot back from counters published under `prefix` —
    /// the inverse of [`Metrics::publish`] (modulo other publishers
    /// adding under the same prefix).
    pub fn from_registry(reg: &MetricsRegistry, prefix: &str) -> Metrics {
        let get = |key: &str| reg.counter(&format!("{prefix}.{key}"));
        Metrics {
            hits: get("hits"),
            misses: get("misses"),
            insertions: get("insertions"),
            evictions: get("evictions"),
            expired: get("expired"),
            rejected: get("rejected"),
            admission_rejects: get("admission_rejects"),
            touch_queued: get("touch_queued"),
            touch_dropped: get("touch_dropped"),
            touch_replayed: get("touch_replayed"),
            touch_dead: get("touch_dead"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            hits: 7,
            misses: 3,
            insertions: 5,
            evictions: 2,
            expired: 1,
            rejected: 0,
            admission_rejects: 4,
            touch_queued: 6,
            touch_dropped: 1,
            touch_replayed: 5,
            touch_dead: 0,
        }
    }

    #[test]
    fn publish_then_from_registry_roundtrips() {
        let reg = MetricsRegistry::new();
        let m = sample();
        m.publish(&reg, "cache.exact");
        assert_eq!(Metrics::from_registry(&reg, "cache.exact"), m);
        // A second publish under the same prefix accumulates (counters).
        m.publish(&reg, "cache.exact");
        assert_eq!(Metrics::from_registry(&reg, "cache.exact").hits, 14);
        // Other prefixes are untouched.
        assert_eq!(
            Metrics::from_registry(&reg, "cache.recog"),
            Metrics::default()
        );
    }

    #[test]
    fn facade_views_match_fields() {
        let m = sample();
        let cs = m.cache_stats();
        assert_eq!((cs.hits, cs.misses, cs.admission_rejects), (7, 3, 4));
        assert_eq!(cs.lookups(), m.lookups());
        let ts = m.touch_stats();
        assert_eq!((ts.queued, ts.replayed, ts.dead), (6, 5, 0));
        assert!((m.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(Metrics::from_parts(cs, ts), m);
    }

    #[test]
    fn lookup_outcome_helpers() {
        let hit: Lookup<u32> = Lookup::ApproxHit {
            value: 9,
            distance: 0.25,
        };
        assert!(hit.is_hit());
        assert_eq!(hit.value(), Some(&9));
        assert_eq!(hit.kind_str(), "approx");
        let mapped = hit.map(|v| v * 2);
        assert_eq!(mapped.into_value(), Some(18));
        assert_eq!(Lookup::<u32>::ExactHit(1).kind_str(), "exact");
        let miss: Lookup<u32> = Lookup::Miss;
        assert!(!miss.is_hit());
        assert_eq!(miss.value(), None);
        assert_eq!(miss.kind_str(), "miss");
    }
}

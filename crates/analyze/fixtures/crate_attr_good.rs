//! Fixture: crate root carrying the required attribute.

#![forbid(unsafe_code)]
#![allow(dead_code)]

pub fn fine() {}

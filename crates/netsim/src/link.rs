//! Point-to-point link model.
//!
//! A [`Link`] models the path between two nodes as a serialization pipe with
//! a droptail queue, mirroring what `tc` with a `tbf`/`netem` combination
//! produces on a real interface (the paper shapes an 802.11ac link and an
//! edge-cloud uplink with `tc`):
//!
//! * **serialization delay** — `size * 8 / bandwidth`; back-to-back messages
//!   queue behind each other (the link transmits one frame at a time),
//! * **propagation delay** — constant one-way latency,
//! * **jitter** — optional uniform extra delay in `[0, jitter_max]`,
//! * **loss** — optional i.i.d. drop probability,
//! * **droptail queue** — messages whose backlog would exceed the queue
//!   byte limit are dropped.

use crate::time::{SimDuration, SimTime};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Static link parameters.
///
/// # Examples
/// ```
/// use coic_netsim::{LinkParams, SimDuration};
///
/// // The paper's 802.11ac access link: 400 Mbit/s, 2 ms one-way delay.
/// let wifi = LinkParams::mbps_ms(400.0, 2);
/// // A 300 kB camera frame serializes in 6 ms at that rate.
/// assert_eq!(wifi.serialization_delay(300_000), SimDuration::from_millis(6));
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParams {
    /// Link rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Maximum extra uniform jitter added per message (0 disables jitter).
    pub jitter_max: SimDuration,
    /// Independent per-message drop probability in `[0, 1]`.
    pub loss: f64,
    /// Droptail queue capacity in bytes (backlog beyond this is dropped).
    pub queue_limit_bytes: u64,
}

impl LinkParams {
    /// A lossless, jitter-free link — the common experiment configuration
    /// (`tc` shaping in the paper controls only rate and delay).
    pub fn ideal(bandwidth_bps: u64, propagation: SimDuration) -> Self {
        LinkParams {
            bandwidth_bps,
            propagation,
            jitter_max: SimDuration::ZERO,
            loss: 0.0,
            // Deep default queue: experiment links should shape latency,
            // not silently drop; droptail studies set their own limit.
            queue_limit_bytes: 256 * 1024 * 1024,
        }
    }

    /// Convenience constructor taking megabits per second and milliseconds,
    /// the units used in the paper's figures.
    pub fn mbps_ms(mbps: f64, delay_ms: u64) -> Self {
        Self::ideal((mbps * 1e6) as u64, SimDuration::from_millis(delay_ms))
    }

    /// Serialization delay of `bytes` at this link's rate.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        debug_assert!(self.bandwidth_bps > 0, "link bandwidth must be positive");
        // bits * 1e9 / bps, computed in u128 to avoid overflow for large
        // payloads on slow links.
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }
}

/// Outcome of offering a message to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Message will be delivered at the contained time.
    Delivered(SimTime),
    /// Message was dropped by random loss.
    Lost,
    /// Message was dropped because the droptail queue was full.
    QueueDrop,
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages successfully scheduled for delivery.
    pub delivered_msgs: u64,
    /// Bytes successfully scheduled for delivery.
    pub delivered_bytes: u64,
    /// Messages dropped by random loss.
    pub lost_msgs: u64,
    /// Messages dropped by queue overflow.
    pub queue_drops: u64,
}

impl Link {
    /// Time at which the transmitter becomes idle (diagnostics/tests).
    pub fn busy_until_time(&self) -> SimTime {
        self.busy_until
    }
}

/// Dynamic state of one direction of a link.
#[derive(Debug, Clone)]
pub struct Link {
    params: LinkParams,
    /// Time at which the transmitter finishes the last accepted message.
    busy_until: SimTime,
    stats: LinkStats,
}

impl Link {
    /// Create a link in the idle state.
    pub fn new(params: LinkParams) -> Self {
        assert!(params.bandwidth_bps > 0, "link bandwidth must be positive");
        assert!(
            (0.0..=1.0).contains(&params.loss),
            "loss probability must be in [0,1]"
        );
        Link {
            params,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// The static parameters this link was built with.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Replace the link parameters mid-simulation (models `tc` re-shaping a
    /// live interface). In-flight messages keep their old schedule.
    pub fn reshape(&mut self, params: LinkParams) {
        assert!(params.bandwidth_bps > 0, "link bandwidth must be positive");
        self.params = params;
    }

    /// Current backlog in bytes if a message were offered at `now`
    /// (the untransmitted residue of previously accepted messages).
    pub fn backlog_bytes(&self, now: SimTime) -> u64 {
        let backlog_time = self.busy_until.saturating_since(now);
        // bytes = time * bps / 8 / 1e9
        ((backlog_time.as_nanos() as u128 * self.params.bandwidth_bps as u128)
            / (8 * 1_000_000_000)) as u64
    }

    /// Offer a message of `bytes` to the link at time `now`.
    ///
    /// Returns when (and whether) the last bit arrives at the far end.
    pub fn transmit<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        bytes: u64,
        rng: &mut R,
    ) -> TxOutcome {
        if self.params.loss > 0.0 && rng.random::<f64>() < self.params.loss {
            self.stats.lost_msgs += 1;
            return TxOutcome::Lost;
        }
        if self.backlog_bytes(now) + bytes > self.params.queue_limit_bytes {
            self.stats.queue_drops += 1;
            return TxOutcome::QueueDrop;
        }
        let start = self.busy_until.max(now);
        let ser = self.params.serialization_delay(bytes);
        self.busy_until = start + ser;
        let jitter = if self.params.jitter_max > SimDuration::ZERO {
            SimDuration::from_nanos(rng.random_range(0..=self.params.jitter_max.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let deliver = self.busy_until + self.params.propagation + jitter;
        self.stats.delivered_msgs += 1;
        self.stats.delivered_bytes += bytes;
        TxOutcome::Delivered(deliver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn serialization_delay_math() {
        // 100 Mbps, 1 MB message: 8e6 bits / 1e8 bps = 80 ms.
        let p = LinkParams::mbps_ms(100.0, 0);
        assert_eq!(
            p.serialization_delay(1_000_000),
            SimDuration::from_millis(80)
        );
    }

    #[test]
    fn delivery_includes_propagation() {
        let mut l = Link::new(LinkParams::mbps_ms(100.0, 10));
        let out = l.transmit(SimTime::ZERO, 1_000_000, &mut rng());
        assert_eq!(
            out,
            TxOutcome::Delivered(SimTime::from_millis(90)) // 80 ser + 10 prop
        );
    }

    #[test]
    fn back_to_back_messages_queue() {
        let mut l = Link::new(LinkParams::mbps_ms(100.0, 5));
        let mut r = rng();
        let a = l.transmit(SimTime::ZERO, 1_000_000, &mut r);
        let b = l.transmit(SimTime::ZERO, 1_000_000, &mut r);
        assert_eq!(a, TxOutcome::Delivered(SimTime::from_millis(85)));
        // Second message waits for the first to serialize: 160 + 5.
        assert_eq!(b, TxOutcome::Delivered(SimTime::from_millis(165)));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = Link::new(LinkParams::mbps_ms(100.0, 5));
        let mut r = rng();
        let _ = l.transmit(SimTime::ZERO, 1_000_000, &mut r);
        // Offer the next message long after the link drained.
        let b = l.transmit(SimTime::from_secs(1), 1_000_000, &mut r);
        assert_eq!(
            b,
            TxOutcome::Delivered(SimTime::from_secs(1) + SimDuration::from_millis(85))
        );
    }

    #[test]
    fn fifo_delivery_order_without_jitter() {
        let mut l = Link::new(LinkParams::mbps_ms(50.0, 3));
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 1..=20u64 {
            match l.transmit(SimTime::ZERO, i * 1000, &mut r) {
                TxOutcome::Delivered(t) => {
                    assert!(t > last, "deliveries must be FIFO-ordered");
                    last = t;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn droptail_queue_overflows() {
        let mut p = LinkParams::mbps_ms(1.0, 1);
        p.queue_limit_bytes = 10_000;
        let mut l = Link::new(p);
        let mut r = rng();
        // First accepted (queue empty), following ones overflow the backlog.
        assert!(matches!(
            l.transmit(SimTime::ZERO, 9_000, &mut r),
            TxOutcome::Delivered(_)
        ));
        assert_eq!(
            l.transmit(SimTime::ZERO, 9_000, &mut r),
            TxOutcome::QueueDrop
        );
        assert_eq!(l.stats().queue_drops, 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut p = LinkParams::mbps_ms(10.0, 1);
        p.loss = 1.0;
        let mut l = Link::new(p);
        for _ in 0..10 {
            assert_eq!(l.transmit(SimTime::ZERO, 100, &mut rng()), TxOutcome::Lost);
        }
        assert_eq!(l.stats().lost_msgs, 10);
        assert_eq!(l.stats().delivered_msgs, 0);
    }

    #[test]
    fn jitter_bounded_by_max() {
        let mut p = LinkParams::mbps_ms(1000.0, 10);
        p.jitter_max = SimDuration::from_millis(5);
        let mut l = Link::new(p);
        let mut r = rng();
        for _ in 0..200 {
            // Use widely spaced offers so queueing never interferes.
            let now = l.busy_until_time() + SimDuration::from_secs(1);
            match l.transmit(now, 1000, &mut r) {
                TxOutcome::Delivered(t) => {
                    let base = now + p.serialization_delay(1000) + p.propagation;
                    let extra = t.saturating_since(base);
                    assert!(extra <= SimDuration::from_millis(5));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn reshape_changes_rate() {
        let mut l = Link::new(LinkParams::mbps_ms(100.0, 0));
        let mut r = rng();
        l.reshape(LinkParams::mbps_ms(10.0, 0));
        let out = l.transmit(SimTime::ZERO, 1_000_000, &mut r);
        assert_eq!(out, TxOutcome::Delivered(SimTime::from_millis(800)));
    }

    #[test]
    fn backlog_accounting() {
        let mut l = Link::new(LinkParams::mbps_ms(8.0, 0)); // 1 MB/s
        let mut r = rng();
        let _ = l.transmit(SimTime::ZERO, 500_000, &mut r);
        // After 0.25 s, 250 kB have left the queue.
        assert_eq!(l.backlog_bytes(SimTime::from_millis(250)), 250_000);
        assert_eq!(l.backlog_bytes(SimTime::from_secs(1)), 0);
    }
}

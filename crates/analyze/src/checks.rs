//! The per-file rule implementations, operating on lexed token streams.
//! Workspace-level passes (lock graph, telemetry registry) live in their
//! own modules; this file hosts the checks that need only one file.

use crate::lexer::{Lexed, Token};
use crate::rules::{Rule, RuleKind};
use crate::Finding;

/// Run `rule` over one lexed file, appending findings. Workspace-level
/// kinds are no-ops here; `lint_root` runs them across all files.
pub fn run_rule(rule: &Rule, rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    match &rule.kind {
        RuleKind::ForbiddenPath {
            patterns,
            include_tests,
        } => forbidden_path(rule, rel_path, tokens, patterns, *include_tests, out),
        RuleKind::NoUnwrap { methods } => no_unwrap(rule, rel_path, tokens, methods, out),
        RuleKind::CrateAttr {
            attr_tokens,
            attr_text,
        } => crate_attr(rule, rel_path, tokens, attr_tokens, attr_text, out),
        RuleKind::NoIndexHotPath => no_index_hot_path(rule, rel_path, tokens, out),
        RuleKind::PairedCall { acquire, releases } => {
            paired_call(rule, rel_path, tokens, acquire, releases, out);
        }
        RuleKind::ProtocolConformance {
            enum_name,
            tag_fn,
            decode_fn,
            require_in,
        } => crate::semantic::protocol_conformance(
            rule, rel_path, tokens, enum_name, tag_fn, decode_fn, require_in, out,
        ),
        RuleKind::LockOrderGraph { .. } | RuleKind::TelemetryRegistry { .. } => {}
    }
}

fn texts_match(tokens: &[Token], at: usize, pattern: &[String]) -> bool {
    tokens.len() >= at + pattern.len()
        && pattern
            .iter()
            .zip(&tokens[at..])
            .all(|(want, tok)| *want == tok.text)
}

/// Is this token a plain identifier (not punctuation, not a literal)?
pub(crate) fn is_ident(tok: &Token) -> bool {
    tok.literal.is_none()
        && tok
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
}

// ----------------------------------------------------------- forbidden-path

fn forbidden_path(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    patterns: &[Vec<String>],
    include_tests: bool,
    out: &mut Vec<Finding>,
) {
    let spans = if include_tests {
        Vec::new()
    } else {
        test_spans(tokens)
    };
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx < e);
    for pattern in patterns {
        for at in 0..tokens.len() {
            if !texts_match(tokens, at, pattern) {
                continue;
            }
            // Boundary: `my::std::net` is not `std::net`. Patterns that
            // deliberately start mid-path (e.g. `Instant::now`) still
            // match fully qualified uses via a companion absolute
            // pattern in the same rule.
            if at > 0 && tokens[at - 1].text == "::" {
                continue;
            }
            if in_test(at) {
                continue;
            }
            out.push(Finding {
                file: rel_path.to_string(),
                line: tokens[at].line,
                rule: rule.id.clone(),
                message: format!("forbidden path `{}`: {}", pattern.concat(), rule.reason),
            });
        }
    }
}

// ---------------------------------------------------------------- no-unwrap

/// Token index ranges covered by `#[cfg(test)]` / `#[test]` items
/// (attribute through the end of the following brace block or statement).
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr = Vec::new();
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                attr.push(tokens[j].text.as_str());
            }
            j += 1;
        }
        let is_test_attr = matches!(attr.first().copied(), Some("test"))
            || (matches!(attr.first().copied(), Some("cfg")) && attr.contains(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then cover the item: through the
        // matching `}` of its first brace block, or to a `;` for
        // brace-less items.
        let mut k = j;
        loop {
            match tokens.get(k).map(|t| t.text.as_str()) {
                Some("#") if tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[") => {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Some(";") => {
                    spans.push((i, k));
                    break;
                }
                Some("{") => {
                    let mut d = 1usize;
                    k += 1;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    spans.push((i, k));
                    break;
                }
                Some(_) => k += 1,
                None => {
                    spans.push((i, tokens.len()));
                    break;
                }
            }
        }
        i = j;
    }
    spans
}

fn no_unwrap(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    methods: &[String],
    out: &mut Vec<Finding>,
) {
    let spans = test_spans(tokens);
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx < e);
    for at in 0..tokens.len() {
        if tokens[at].text != "." {
            continue;
        }
        let Some(method) = tokens.get(at + 1) else {
            continue;
        };
        if !methods.contains(&method.text) {
            continue;
        }
        if tokens.get(at + 2).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        if in_test(at) {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: method.line,
            rule: rule.id.clone(),
            message: format!(".{}() outside test code: {}", method.text, rule.reason),
        });
    }
}

// --------------------------------------------------------------- crate-attr

fn crate_attr(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    attr_tokens: &[String],
    attr_text: &str,
    out: &mut Vec<Finding>,
) {
    // Expected shape: `#` `!` `[` <attr tokens> `]`.
    let mut expected: Vec<String> = vec!["#".into(), "!".into(), "[".into()];
    expected.extend(attr_tokens.iter().cloned());
    expected.push("]".into());
    let found = (0..tokens.len()).any(|at| texts_match(tokens, at, &expected));
    if !found {
        out.push(Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: rule.id.clone(),
            message: format!("missing `#![{attr_text}]`: {}", rule.reason),
        });
    }
}

// -------------------------------------------------------- no-index-hot-path

/// Keywords that may directly precede a `[` without it being an index
/// expression (`for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: [&str; 22] = [
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "for", "if", "in",
    "let", "loop", "match", "move", "mut", "ref", "return", "static", "while", "yield",
];

/// Flag `expr[...]` indexing outside test code: on hot paths an
/// out-of-bounds index is a process-killing panic (the `breakers[peer]`
/// class). A `[` is an index when it directly follows an identifier, a
/// `)`, or a `]` — array literals, types, attributes, and macros all
/// follow punctuation or a `!` instead.
fn no_index_hot_path(rule: &Rule, rel_path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let spans = test_spans(tokens);
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx < e);
    for at in 1..tokens.len() {
        if tokens[at].text != "[" {
            continue;
        }
        let prev = &tokens[at - 1];
        let indexable = (is_ident(prev) && !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if !indexable || in_test(at) {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: tokens[at].line,
            rule: rule.id.clone(),
            message: format!(
                "`{}[..]` indexing can panic out-of-bounds: {}",
                prev.text, rule.reason
            ),
        });
    }
}

// -------------------------------------------------------------- paired-call

/// A function item: its name and the token span of its body.
#[derive(Debug)]
pub(crate) struct FnSpan {
    pub name: String,
    /// Index of the `fn` keyword.
    pub start: usize,
    /// Index of the body `{`.
    pub body: usize,
    /// Index one past the matching `}`.
    pub end: usize,
}

/// All `fn` items with bodies, in source order. Nested functions produce
/// nested (overlapping) spans; callers pick the innermost for a site.
pub(crate) fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if !is_ident(name_tok) {
            // `fn(u32) -> u32` pointer type, not an item.
            i += 2;
            continue;
        }
        // Find the body `{`; a `;` first means a bodiless trait method.
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                ";" => break,
                "{" => {
                    body = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let Some(body) = body else {
            i = j + 1;
            continue;
        };
        let mut depth = 1usize;
        let mut k = body + 1;
        while k < tokens.len() && depth > 0 {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        spans.push(FnSpan {
            name: name_tok.text.clone(),
            start: i,
            body,
            end: k,
        });
        i += 2; // nested fns are found by continuing the scan
    }
    spans
}

/// The innermost function span containing token index `at`.
pub(crate) fn innermost_fn(spans: &[FnSpan], at: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| at > s.start && at < s.end)
        .min_by_key(|s| s.end - s.start)
}

/// Every `.acquire(` call site must be settled by one of the release
/// calls somewhere in the same function — an acquire whose result leaves
/// the function unsettled is how the probe-grant leak happened. The
/// functions *defining* the pair (named like the acquire or a release)
/// are exempt, as are test items. Cross-function settlement protocols
/// carry a justified `// lint: allow` at the acquire site.
fn paired_call(
    rule: &Rule,
    rel_path: &str,
    tokens: &[Token],
    acquire: &str,
    releases: &[String],
    out: &mut Vec<Finding>,
) {
    let tests = test_spans(tokens);
    let in_test = |idx: usize| tests.iter().any(|&(s, e)| idx >= s && idx < e);
    let fns = fn_spans(tokens);
    for at in 1..tokens.len() {
        if tokens[at].text != acquire
            || tokens[at - 1].text != "."
            || tokens.get(at + 1).map(|t| t.text.as_str()) != Some("(")
        {
            continue;
        }
        if in_test(at) {
            continue;
        }
        let Some(span) = innermost_fn(&fns, at) else {
            continue;
        };
        if span.name == acquire || releases.contains(&span.name) {
            continue;
        }
        let settled = (span.body..span.end).any(|k| {
            releases.iter().any(|r| *r == tokens[k].text)
                && tokens.get(k + 1).map(|t| t.text.as_str()) == Some("(")
                && tokens[k - 1].text != "fn"
        });
        if !settled {
            out.push(Finding {
                file: rel_path.to_string(),
                line: tokens[at].line,
                rule: rule.id.clone(),
                message: format!(
                    "`.{acquire}(...)` in fn `{}` is never settled by {}: {}",
                    span.name,
                    releases
                        .iter()
                        .map(|r| format!("`{r}()`"))
                        .collect::<Vec<_>>()
                        .join("/"),
                    rule.reason
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::parse_rules;

    fn findings(rules_src: &str, code: &str) -> Vec<(u32, String)> {
        let rules = parse_rules(rules_src).unwrap();
        let lexed = lex(code);
        let mut out = Vec::new();
        for rule in &rules {
            run_rule(rule, "f.rs", &lexed, &mut out);
        }
        out.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    const NET: &str = r#"
[[rule]]
id = "no-std-net"
kind = "forbidden-path"
patterns = ["std::net"]
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn forbidden_path_matches_code_not_prose() {
        let got = findings(
            NET,
            "use std::net::TcpStream;\n// std::net in a comment\nlet s = \"std::net\";\nmy::std::net::x();",
        );
        assert_eq!(got, [(1, "no-std-net".to_string())]);
    }

    #[test]
    fn forbidden_path_test_spans_depend_on_include_tests() {
        let code = "\
#[cfg(test)]
mod tests {
    fn t() { let s = std::net::TcpStream::connect(\"x\"); }
}
";
        // Default: test items are excluded (timing tests may read clocks).
        assert_eq!(findings(NET, code), []);
        // Opt in: the ban reaches into tests too.
        let strict = NET.replace("reason", "include-tests = true\nreason");
        assert_eq!(findings(&strict, code), [(3, "no-std-net".to_string())]);
    }

    const UNWRAP: &str = r#"
[[rule]]
id = "no-unwrap"
kind = "no-unwrap"
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let code = "\
fn live() { x.unwrap(); y.expect(\"m\"); }
#[cfg(test)]
mod tests {
    fn t() { z.unwrap(); }
}
#[test]
fn one() { q.unwrap(); }
fn live2() { r.unwrap(); }
";
        let got = findings(UNWRAP, code);
        assert_eq!(
            got,
            [
                (1, "no-unwrap".to_string()),
                (1, "no-unwrap".to_string()),
                (8, "no-unwrap".to_string()),
            ]
        );
    }

    const ATTR: &str = r#"
[[rule]]
id = "forbid-unsafe"
kind = "crate-attr"
attr = "forbid(unsafe_code)"
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn crate_attr_required() {
        assert_eq!(findings(ATTR, "#![forbid(unsafe_code)]\nfn x() {}"), []);
        assert_eq!(
            findings(ATTR, "//! docs only\nfn x() {}"),
            [(1, "forbid-unsafe".to_string())]
        );
    }

    const INDEX: &str = r#"
[[rule]]
id = "no-index"
kind = "no-index-hot-path"
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn indexing_flagged_but_literals_types_macros_are_not() {
        let code = "\
fn hot(xs: &[u32], i: usize) -> u32 {
    let a = [1u32, 2, 3];
    let v = vec![0u8; 4];
    #[allow(dead_code)]
    let t: [u8; 2] = [0, 1];
    for x in [1, 2] { let _ = x; }
    xs[i] + a[0]
}
#[test]
fn t() { assert_eq!(xs[0], 1); }
";
        let got = findings(INDEX, code);
        assert_eq!(
            got,
            [(7, "no-index".to_string()), (7, "no-index".to_string())]
        );
    }

    #[test]
    fn chained_and_call_result_indexing_flagged() {
        let code = "fn f() { m[0][1]; g()[2]; }";
        assert_eq!(findings(INDEX, code).len(), 3);
    }

    const PAIRED: &str = r#"
[[rule]]
id = "grant-leak"
kind = "paired-call"
acquire = "allow_probe"
release = ["record_probe", "cancel_probe"]
reason = "r"
paths = ["**"]
"#;

    #[test]
    fn paired_call_requires_settlement_in_same_fn() {
        let ok = "\
fn probe(&mut self) {
    if self.m.allow_probe(p, now) {
        let r = send(p);
        self.m.record_probe(p, r.is_ok(), now);
    }
}
";
        assert_eq!(findings(PAIRED, ok), []);
        let leak = "\
fn probe(&mut self) -> bool {
    self.m.allow_probe(p, now)
}
";
        assert_eq!(findings(PAIRED, leak), [(2, "grant-leak".to_string())]);
        // The defining/settling functions themselves are exempt.
        let defs = "\
fn allow_probe(&mut self) -> bool { self.b.allow_probe(now) }
fn cancel_probe(&mut self) { self.inner.allow_probe(p, now); }
";
        assert_eq!(findings(PAIRED, defs), []);
        // Test code is exempt.
        let test = "#[test]\nfn t() { m.allow_probe(p, now); }";
        assert_eq!(findings(PAIRED, test), []);
    }

    #[test]
    fn fn_spans_find_nested_functions() {
        let lexed = lex("fn outer() { fn inner() { a(); } b(); }");
        let spans = fn_spans(&lexed.tokens);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        let a_at = lexed.tokens.iter().position(|t| t.text == "a").unwrap();
        assert_eq!(innermost_fn(&spans, a_at).unwrap().name, "inner");
        let b_at = lexed.tokens.iter().position(|t| t.text == "b").unwrap();
        assert_eq!(innermost_fn(&spans, b_at).unwrap().name, "outer");
    }
}

//! The exploration driver: run a closure under every schedule.

use crate::sched::{current_ctx, Scheduler};
use std::sync::{Arc, Mutex as StdMutex};

/// Serializes models within the process: `cargo test` runs tests on
/// parallel threads, and two concurrent explorations would interleave
/// their thread-local task registrations.
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

/// Outcome of a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules (distinct interleavings) executed.
    pub schedules: u64,
    /// `true` when the decision tree was exhausted (under the configured
    /// preemption bound); `false` when `max_schedules` stopped it early.
    pub complete: bool,
}

/// A schedule that violated an invariant (assertion panic, deadlock, or a
/// runaway schedule), with enough context to replay it by hand.
#[derive(Debug, Clone)]
pub struct ModelFailure {
    /// The panic message or deadlock description.
    pub message: String,
    /// Task ids in the order they were scheduled in the failing run.
    pub trace: Vec<usize>,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule: u64,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule #{} failed: {}\n  schedule trace (task ids): {:?}",
            self.schedule, self.message, self.trace
        )
    }
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum preemptive context switches per schedule (`None` = full
    /// DFS). Most concurrency bugs manifest within 2 preemptions, and the
    /// bound keeps the schedule count polynomial instead of exponential.
    pub preemption_bound: Option<usize>,
    /// Stop exploring (reporting `complete: false`) after this many
    /// schedules.
    pub max_schedules: u64,
    /// Fail any single schedule exceeding this many scheduling decisions
    /// (catches livelocks / unbounded loops in the checked code).
    pub max_steps: usize,
    /// Rotates the order schedulable tasks are tried in at each depth;
    /// the same seed always enumerates the same schedules in the same
    /// order.
    pub seed: u64,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: Some(2),
            max_schedules: 1_000_000,
            max_steps: 100_000,
            seed: 0,
        }
    }
}

impl Builder {
    /// A builder with the given preemption bound.
    pub fn with_preemption_bound(bound: usize) -> Builder {
        Builder {
            preemption_bound: Some(bound),
            ..Builder::default()
        }
    }

    /// Set the exploration seed (schedule enumeration order).
    pub fn seed(mut self, seed: u64) -> Builder {
        self.seed = seed;
        self
    }

    /// Explore every schedule of `f` (depth-first, bounded as
    /// configured). Returns the first failing schedule as `Err`, or a
    /// [`Report`] once the tree is exhausted / the schedule cap is hit.
    pub fn check<F>(&self, f: F) -> Result<Report, ModelFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            current_ctx().is_none(),
            "loom::model may not be nested inside a model task"
        );
        let _serialize = match MODEL_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let sched = Arc::new(Scheduler::new(
            self.preemption_bound,
            self.max_steps,
            self.seed,
        ));
        let f = Arc::new(f);
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules: u64 = 0;
        loop {
            schedules += 1;
            let outcome = sched.run_once(&f, replay);
            if let Some(message) = outcome.failure {
                return Err(ModelFailure {
                    message,
                    trace: outcome.trace,
                    schedule: schedules,
                });
            }
            // Depth-first backtrack: drop exhausted trailing decisions,
            // then advance the deepest one that still has alternatives.
            let mut decisions = outcome.decisions;
            while decisions
                .last()
                .map(|d| d.chosen + 1 >= d.alternatives)
                .unwrap_or(false)
            {
                decisions.pop();
            }
            let Some(last) = decisions.last_mut() else {
                return Ok(Report {
                    schedules,
                    complete: true,
                });
            };
            last.chosen += 1;
            replay = decisions.iter().map(|d| d.chosen).collect();
            if schedules >= self.max_schedules {
                return Ok(Report {
                    schedules,
                    complete: false,
                });
            }
        }
    }
}

/// Explore every schedule of `f` with default bounds, panicking on the
/// first schedule that fails an assertion, deadlocks, or diverges.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match Builder::default().check(f) {
        Ok(report) => report,
        Err(failure) => panic!("loom model failed: {failure}"),
    }
}

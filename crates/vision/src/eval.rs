//! Classifier evaluation: confusion matrices and per-class metrics.
//!
//! The ablations report a single top-1 accuracy; this module provides the
//! detail underneath — which objects get confused with which (relevant to
//! CoIC because a cache hit on a *confusable* pair returns a plausible but
//! wrong annotation, the silent failure the threshold guards against).

use crate::scene::ObjectClass;
use std::collections::BTreeMap;

/// A confusion matrix over a dynamic set of classes.
#[derive(Debug, Clone, Default)]
pub struct ConfusionMatrix {
    /// counts[(truth, predicted)] = occurrences.
    counts: BTreeMap<(u32, u32), u64>,
    total: u64,
}

impl ConfusionMatrix {
    /// Create an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(truth, predicted)` outcome.
    pub fn record(&mut self, truth: ObjectClass, predicted: ObjectClass) {
        *self.counts.entry((truth.0, predicted.0)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total outcomes recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one `(truth, predicted)` cell.
    pub fn count(&self, truth: ObjectClass, predicted: ObjectClass) -> u64 {
        self.counts
            .get(&(truth.0, predicted.0))
            .copied()
            .unwrap_or(0)
    }

    /// Overall top-1 accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let correct: u64 = self
            .counts
            .iter()
            .filter(|(&(t, p), _)| t == p)
            .map(|(_, &n)| n)
            .sum();
        correct as f64 / self.total as f64
    }

    /// Every class seen as truth or prediction, ascending.
    pub fn classes(&self) -> Vec<ObjectClass> {
        let mut set = std::collections::BTreeSet::new();
        for &(t, p) in self.counts.keys() {
            set.insert(t);
            set.insert(p);
        }
        set.into_iter().map(ObjectClass).collect()
    }

    /// Precision for one class: `TP / (TP + FP)`; `None` when the class
    /// was never predicted.
    pub fn precision(&self, class: ObjectClass) -> Option<f64> {
        let tp = self.count(class, class);
        let predicted: u64 = self
            .counts
            .iter()
            .filter(|(&(_, p), _)| p == class.0)
            .map(|(_, &n)| n)
            .sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall for one class: `TP / (TP + FN)`; `None` when the class never
    /// appeared as truth.
    pub fn recall(&self, class: ObjectClass) -> Option<f64> {
        let tp = self.count(class, class);
        let actual: u64 = self
            .counts
            .iter()
            .filter(|(&(t, _), _)| t == class.0)
            .map(|(_, &n)| n)
            .sum();
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// The most frequently confused `(truth, predicted, count)` pairs
    /// (off-diagonal), most common first, at most `k`.
    pub fn top_confusions(&self, k: usize) -> Vec<(ObjectClass, ObjectClass, u64)> {
        let mut off: Vec<_> = self
            .counts
            .iter()
            .filter(|(&(t, p), _)| t != p)
            .map(|(&(t, p), &n)| (ObjectClass(t), ObjectClass(p), n))
            .collect();
        off.sort_by(|a, b| b.2.cmp(&a.2).then(a.0 .0.cmp(&b.0 .0)));
        off.truncate(k);
        off
    }

    /// Render a compact table (for experiment output).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let classes = self.classes();
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "t\\p");
        for c in &classes {
            let _ = write!(out, "{:>6}", c.0);
        }
        out.push('\n');
        for t in &classes {
            let _ = write!(out, "{:>6}", t.0);
            for p in &classes {
                let _ = write!(out, "{:>6}", self.count(*t, *p));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        // Class 0: 3 correct, 1 confused as 1.
        for _ in 0..3 {
            m.record(ObjectClass(0), ObjectClass(0));
        }
        m.record(ObjectClass(0), ObjectClass(1));
        // Class 1: 2 correct.
        for _ in 0..2 {
            m.record(ObjectClass(1), ObjectClass(1));
        }
        m
    }

    #[test]
    fn accuracy_and_counts() {
        let m = matrix();
        assert_eq!(m.total(), 6);
        assert_eq!(m.count(ObjectClass(0), ObjectClass(1)), 1);
        assert!((m.accuracy() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_per_class() {
        let m = matrix();
        // Class 0: predicted 3 times, all correct -> precision 1.
        assert_eq!(m.precision(ObjectClass(0)), Some(1.0));
        // Class 0 truth appears 4 times, 3 correct -> recall 0.75.
        assert_eq!(m.recall(ObjectClass(0)), Some(0.75));
        // Class 1: predicted 3 times (2 TP + 1 FP) -> precision 2/3.
        assert!((m.precision(ObjectClass(1)).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(ObjectClass(1)), Some(1.0));
        // Unseen class: both None.
        assert_eq!(m.precision(ObjectClass(9)), None);
        assert_eq!(m.recall(ObjectClass(9)), None);
    }

    #[test]
    fn top_confusions_ordering() {
        let mut m = matrix();
        m.record(ObjectClass(1), ObjectClass(0));
        m.record(ObjectClass(1), ObjectClass(0));
        let top = m.top_confusions(5);
        assert_eq!(top[0], (ObjectClass(1), ObjectClass(0), 2));
        assert_eq!(top[1], (ObjectClass(0), ObjectClass(1), 1));
    }

    #[test]
    fn table_renders_all_classes() {
        let m = matrix();
        let table = m.to_table();
        assert!(table.contains("t\\p"));
        assert_eq!(table.lines().count(), 3); // header + 2 class rows
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert!(m.classes().is_empty());
        assert!(m.top_confusions(3).is_empty());
    }
}

//! Fixture: socket use in a sans-IO crate. Never compiled.

use std::net::TcpStream; // LINT-EXPECT: no-std-net

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let listener = TcpListener::bind(addr); // LINT-EXPECT: no-std-net
    let _ = listener;
    std::net::TcpStream::connect(addr) // LINT-EXPECT: no-std-net
}

#[cfg(test)]
mod tests {
    #[test]
    fn sockets_in_tests_still_count_here() {
        // The net rule opts in with include-tests = true.
        let _ = std::net::TcpStream::connect("localhost:1"); // LINT-EXPECT: no-std-net
    }
}

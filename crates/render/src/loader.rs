//! Model loading with cost accounting.
//!
//! Figure 2b measures *load latency*: the time from "renderer needs model X"
//! to "model is in memory, ready to draw". On the paper's testbed that is
//! storage read + parse + staging; CoIC removes it on a hit by caching the
//! loaded model at the edge. [`LoadCostModel`] charges virtual time for each
//! stage, while [`load_cmf`] does the real parsing work so the cached object
//! is a genuine, drawable mesh.

use crate::format::{self, CmfError};
use crate::mesh::Mesh;
use serde::{Deserialize, Serialize};

/// A model that has been fetched, parsed, validated and staged.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedModel {
    /// The parsed mesh.
    pub mesh: Mesh,
    /// Size of the CMF source it was parsed from.
    pub source_bytes: u64,
}

/// Parse CMF bytes into a loaded model.
pub fn load_cmf(bytes: &[u8]) -> Result<LoadedModel, CmfError> {
    let mesh = format::decode(bytes)?;
    Ok(LoadedModel {
        mesh,
        source_bytes: bytes.len() as u64,
    })
}

/// Per-tier throughput for the three stages of a model load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadCostModel {
    /// Storage read throughput, bytes/s.
    pub storage_bps: f64,
    /// Parse/validate throughput, bytes/s.
    pub parse_bps: f64,
    /// Staging (upload to renderer memory) throughput, bytes/s.
    pub stage_bps: f64,
    /// Fixed per-load overhead, ns.
    pub overhead_ns: u64,
}

impl LoadCostModel {
    /// Cloud storage node: fast NVMe + server CPU.
    pub const CLOUD: LoadCostModel = LoadCostModel {
        storage_bps: 1.2e9,
        parse_bps: 1.5e9,
        stage_bps: 4.0e9,
        overhead_ns: 1_000_000,
    };

    /// Edge box: SATA-class storage, desktop CPU.
    pub const EDGE: LoadCostModel = LoadCostModel {
        storage_bps: 0.5e9,
        parse_bps: 1.0e9,
        stage_bps: 3.0e9,
        overhead_ns: 500_000,
    };

    /// Mobile device: flash storage, mobile CPU, mobile GPU staging.
    pub const MOBILE: LoadCostModel = LoadCostModel {
        storage_bps: 0.25e9,
        parse_bps: 0.3e9,
        stage_bps: 1.0e9,
        overhead_ns: 3_000_000,
    };

    /// Virtual nanoseconds to read `bytes` from storage.
    pub fn storage_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.storage_bps * 1e9).round() as u64
    }

    /// Virtual nanoseconds to parse `bytes`.
    pub fn parse_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.parse_bps * 1e9).round() as u64
    }

    /// Virtual nanoseconds to stage a parsed model of `bytes`.
    pub fn stage_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.stage_bps * 1e9).round() as u64
    }

    /// Full cold-load time: overhead + read + parse + stage.
    pub fn full_load_ns(&self, bytes: u64) -> u64 {
        self.overhead_ns + self.storage_ns(bytes) + self.parse_ns(bytes) + self.stage_ns(bytes)
    }

    /// Warm-load time when the *parsed* model is already in memory (a CoIC
    /// edge cache hit): only staging remains.
    pub fn warm_load_ns(&self, bytes: u64) -> u64 {
        self.overhead_ns + self.stage_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode;
    use crate::procgen;

    #[test]
    fn load_parses_real_bytes() {
        let mesh = procgen::terrain(24, 5, 0.4);
        let bytes = encode(&mesh);
        let loaded = load_cmf(&bytes).unwrap();
        assert_eq!(loaded.mesh, mesh);
        assert_eq!(loaded.source_bytes, bytes.len() as u64);
    }

    #[test]
    fn load_rejects_corruption() {
        let bytes = encode(&procgen::cube());
        let mut corrupt = bytes.to_vec();
        corrupt[20] ^= 0xFF;
        assert!(load_cmf(&corrupt).is_err());
    }

    #[test]
    fn cold_load_dominates_warm_load() {
        let bytes = 10_000_000u64; // 10 MB model
        for model in [
            LoadCostModel::CLOUD,
            LoadCostModel::EDGE,
            LoadCostModel::MOBILE,
        ] {
            assert!(model.full_load_ns(bytes) > 2 * model.warm_load_ns(bytes));
        }
    }

    #[test]
    fn load_time_scales_with_size() {
        let m = LoadCostModel::EDGE;
        let t1 = m.full_load_ns(1_000_000);
        let t10 = m.full_load_ns(10_000_000);
        let var = (t10 - m.overhead_ns) as f64 / (t1 - m.overhead_ns) as f64;
        assert!((9.9..10.1).contains(&var), "scaling factor {var}");
    }

    #[test]
    fn tiers_ordered_by_speed() {
        let bytes = 5_000_000;
        assert!(LoadCostModel::CLOUD.full_load_ns(bytes) < LoadCostModel::EDGE.full_load_ns(bytes));
        assert!(
            LoadCostModel::EDGE.full_load_ns(bytes) < LoadCostModel::MOBILE.full_load_ns(bytes)
        );
    }
}

//! Exhaustive interleaving exploration of the sharded cache's deferred-
//! touch protocol (build with `--features model-check`).
//!
//! The `model-check` feature reroutes `coic-cache`'s locks and atomics
//! through the in-tree `loom` shim, so every lock acquisition, release,
//! and atomic access inside [`ShardedExactCache`] becomes a scheduling
//! point. The explorer then runs the scenario below under every thread
//! interleaving (bounded preemption) and asserts, in each one, that a
//! drained recency touch never replays against an evicted key — the race
//! this protocol was rewritten to close.

#![cfg(feature = "model-check")]

use coic_cache::{Digest, PolicyKind, ShardedExactCache};
use loom::model::Builder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Keys sized so the single shard holds exactly two entries: every insert
/// beyond the second evicts, keeping maximal pressure on the window
/// between a read-path touch and its write-path replay.
const ENTRY: u64 = 100;
const CAPACITY: u64 = 200;

fn key(tag: u8) -> Digest {
    Digest::of(&[tag])
}

fn touch_drain_scenario() {
    let cache: ShardedExactCache<u64> = ShardedExactCache::new(CAPACITY, PolicyKind::Lru, None, 1);
    cache.insert(key(b'a'), 1, ENTRY, 0);
    cache.insert(key(b'b'), 2, ENTRY, 1);

    let reader_a = {
        let c = cache.clone();
        loom::thread::spawn(move || {
            let _ = c.lookup(&key(b'a'), 2);
        })
    };
    let writer = {
        let c = cache.clone();
        loom::thread::spawn(move || {
            // Evicts the LRU entry (`a`) — racing the reader's touch.
            c.insert(key(b'c'), 3, ENTRY, 3);
        })
    };
    let reader_b = {
        let c = cache.clone();
        loom::thread::spawn(move || {
            let _ = c.lookup(&key(b'b'), 4);
        })
    };
    reader_a.join().unwrap();
    writer.join().unwrap();
    reader_b.join().unwrap();

    // Drain anything still queued, then check the protocol invariant.
    cache.insert(key(b'd'), 4, ENTRY, 5);
    let m = cache.metrics();
    assert_eq!(
        m.touch_dead, 0,
        "touch replayed against an evicted key: {m:?}"
    );
    assert_eq!(
        m.touch_queued, m.touch_replayed,
        "every queued touch must be replayed exactly once: {m:?}"
    );
    // Caches stay structurally sound in every schedule.
    assert!(cache.len() <= 2);
    assert_eq!(m.lookups(), 2, "both lookups accounted: {m:?}");
}

#[test]
fn deferred_touch_drain_never_replays_dead_keys() {
    let report = Builder::default()
        .check(touch_drain_scenario)
        .unwrap_or_else(|failure| {
            panic!("model found a schedule violating the invariant:\n{failure}")
        });
    println!(
        "deferred-touch drain: {} schedules explored (complete: {})",
        report.schedules, report.complete
    );
    assert!(report.complete, "exploration must exhaust the bounded tree");
    assert!(
        report.schedules >= 1_000,
        "expected >= 1000 interleavings, got {}",
        report.schedules
    );
}

#[test]
fn touch_drain_exploration_is_deterministic() {
    let run = |seed: u64| {
        Builder::default()
            .seed(seed)
            .check(touch_drain_scenario)
            .expect("invariant holds")
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(
        a.schedules, b.schedules,
        "same seed must enumerate the same schedules in the same order"
    );
}

#[test]
fn read_path_hit_counters_match_observations_in_every_schedule() {
    // Two readers hammer one present key while a writer churns another:
    // merged stats must equal the sum of per-thread observations no
    // matter how the atomics interleave with the lock operations.
    let report = loom::model(|| {
        let cache: ShardedExactCache<u64> =
            ShardedExactCache::new(CAPACITY, PolicyKind::Lru, None, 1);
        cache.insert(key(b'x'), 7, ENTRY, 0);
        let observed = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let c = cache.clone();
                let observed = Arc::clone(&observed);
                loom::thread::spawn(move || {
                    if c.lookup(&key(b'x'), 1).is_some() {
                        observed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        let s = cache.metrics();
        assert_eq!(s.hits, observed.load(Ordering::Relaxed));
        assert_eq!(s.hits, 2, "the key is present: both lookups must hit");
        assert_eq!(s.misses, 0);
    });
    println!(
        "read-path counters: {} schedules explored",
        report.schedules
    );
    assert!(report.complete);
}

// ---------------------------------------------------------------------
// Snapshot ANN cache: swap/journal handoff.

use coic_cache::{AnnFamily, SnapshotApproxCache};
use coic_vision::features::FeatureVec;

fn axis(i: usize) -> FeatureVec {
    let mut v = vec![0.0f32; 4];
    v[i] = 1.0;
    FeatureVec::new(v)
}

/// Concurrent inserts and a racing `maintain` against lock-free lookups
/// on [`SnapshotApproxCache`]: in every interleaving, (a) an entry that
/// was inserted before the race is visible to every lookup — whether it
/// is answered from the immutable snapshot or from the journal suffix the
/// fold preserved (no lost inserts, no torn snapshot/journal handoff) —
/// and (b) after the dust settles a final fold accounts for every insert
/// exactly once.
fn snapshot_handoff_scenario() {
    let cache: SnapshotApproxCache<u64> =
        SnapshotApproxCache::new(4096, 0.1, AnnFamily::Linear, 4, 2);
    cache.insert(axis(0), 10, 64, 0);
    cache.maintain(0); // axis(0) lives in the snapshot proper

    let w1 = {
        let c = cache.clone();
        loom::thread::spawn(move || {
            c.insert(axis(1), 11, 64, 1);
        })
    };
    let folder = {
        let c = cache.clone();
        loom::thread::spawn(move || {
            let _ = c.maintain(2);
        })
    };
    let reader = {
        let c = cache.clone();
        loom::thread::spawn(move || {
            // Pre-race entry: visible in EVERY schedule, from whichever
            // side of the snapshot/journal handoff it currently lives on.
            assert!(
                c.lookup(&axis(0), 3).is_hit(),
                "pre-race insert vanished mid-handoff"
            );
        })
    };
    w1.join().unwrap();
    folder.join().unwrap();
    reader.join().unwrap();

    // Quiesced: fold the remainder and check nothing was lost or doubled.
    cache.maintain(4);
    assert_eq!(
        cache.journal_depth(),
        0,
        "final fold must drain the journal"
    );
    assert_eq!(cache.len(), 2, "one prefill + one racing insert");
    assert!(cache.lookup(&axis(0), 5).is_hit());
    assert!(cache.lookup(&axis(1), 5).is_hit(), "racing insert lost");
    assert!(
        !cache.lookup(&axis(2), 5).is_hit(),
        "phantom entry appeared"
    );
}

#[test]
fn snapshot_swap_and_journal_handoff_lose_nothing() {
    let report = Builder::default()
        .check(snapshot_handoff_scenario)
        .unwrap_or_else(|failure| {
            panic!("model found a schedule violating the invariant:\n{failure}")
        });
    println!(
        "snapshot handoff: {} schedules explored (complete: {})",
        report.schedules, report.complete
    );
    assert!(report.complete, "exploration must exhaust the bounded tree");
}

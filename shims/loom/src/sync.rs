//! Shimmed synchronization primitives.
//!
//! Inside a [`crate::model`] run, every operation is a scheduling point
//! explored by the controller; outside, operations delegate straight to
//! `std::sync` (checking one thread-local per call). The lock API matches
//! the in-tree `parking_lot` shim — non-poisoning `lock()` / `read()` /
//! `write()` returning guards directly — so production code can swap
//! between the two behind a feature-gated facade module.

use crate::sched::{current_ctx, Op, ResourceKind, TaskCtx};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;

pub use std::sync::Arc;

/// Lazily bound model resource id, re-registered once per schedule.
#[derive(Debug, Default)]
struct ResourceTag {
    bound: StdMutex<Option<(u64, usize)>>,
}

impl ResourceTag {
    const fn new() -> ResourceTag {
        ResourceTag {
            bound: StdMutex::new(None),
        }
    }

    /// The resource id for the current schedule, registering on first use.
    fn id(&self, ctx: &TaskCtx, kind: ResourceKind) -> usize {
        let generation = ctx.sched.generation();
        let mut bound = match self.bound.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match *bound {
            Some((generation_bound, id)) if generation_bound == generation => id,
            _ => {
                let id = ctx.sched.register_resource(kind);
                *bound = Some((generation, id));
                id
            }
        }
    }
}

// ------------------------------------------------------------------ mutex --

/// Mutual exclusion lock, model-checked inside [`crate::model`] runs.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    tag: ResourceTag,
    data: StdMutex<T>,
}

/// Guard for [`Mutex`]; releasing it is a scheduling point in a model.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    release: Option<(TaskCtx, usize)>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            tag: ResourceTag::new(),
            data: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.data.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn data_guard(&self) -> std::sync::MutexGuard<'_, T> {
        match self.data.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                unreachable!("model granted a mutex that is actually held")
            }
        }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current_ctx() {
            Some(ctx) => {
                let r = self.tag.id(&ctx, ResourceKind::Mutex);
                ctx.sched.op_point(ctx.id, Op::MutexLock(r));
                MutexGuard {
                    inner: Some(self.data_guard()),
                    release: Some((ctx, r)),
                }
            }
            None => MutexGuard {
                inner: Some(match self.data.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }),
                release: None,
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match current_ctx() {
            Some(ctx) => {
                let r = self.tag.id(&ctx, ResourceKind::Mutex);
                if ctx.sched.op_point(ctx.id, Op::MutexTryLock(r)) {
                    Some(MutexGuard {
                        inner: Some(self.data_guard()),
                        release: Some((ctx, r)),
                    })
                } else {
                    None
                }
            }
            None => match self.data.try_lock() {
                Ok(g) => Some(MutexGuard {
                    inner: Some(g),
                    release: None,
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: Some(p.into_inner()),
                    release: None,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.data.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model-level release point, so
        // the next task the controller schedules can actually acquire it.
        self.inner.take();
        if let Some((ctx, r)) = self.release.take() {
            ctx.sched.op_point(ctx.id, Op::MutexUnlock(r));
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::Mutex { .. }")
    }
}

// ----------------------------------------------------------------- rwlock --

/// Reader-writer lock, model-checked inside [`crate::model`] runs.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    tag: ResourceTag,
    data: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    release: Option<(TaskCtx, usize)>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    release: Option<(TaskCtx, usize)>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            tag: ResourceTag::new(),
            data: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.data.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match current_ctx() {
            Some(ctx) => {
                let r = self.tag.id(&ctx, ResourceKind::Rw);
                ctx.sched.op_point(ctx.id, Op::RwRead(r));
                RwLockReadGuard {
                    inner: Some(match self.data.try_read() {
                        Ok(g) => g,
                        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                        Err(std::sync::TryLockError::WouldBlock) => {
                            unreachable!("model granted a read on a write-held rwlock")
                        }
                    }),
                    release: Some((ctx, r)),
                }
            }
            None => RwLockReadGuard {
                inner: Some(match self.data.read() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }),
                release: None,
            },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match current_ctx() {
            Some(ctx) => {
                let r = self.tag.id(&ctx, ResourceKind::Rw);
                ctx.sched.op_point(ctx.id, Op::RwWrite(r));
                RwLockWriteGuard {
                    inner: Some(match self.data.try_write() {
                        Ok(g) => g,
                        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                        Err(std::sync::TryLockError::WouldBlock) => {
                            unreachable!("model granted a write on a held rwlock")
                        }
                    }),
                    release: Some((ctx, r)),
                }
            }
            None => RwLockWriteGuard {
                inner: Some(match self.data.write() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }),
                release: None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.data.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((ctx, r)) = self.release.take() {
            ctx.sched.op_point(ctx.id, Op::RwUnlockRead(r));
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((ctx, r)) = self.release.take() {
            ctx.sched.op_point(ctx.id, Op::RwUnlockWrite(r));
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::RwLock { .. }")
    }
}

// ---------------------------------------------------------------- atomics --

/// Shimmed atomic integer/bool types; every operation is a scheduling
/// point inside a model.
pub mod atomic {
    use crate::sched::{current_ctx, Op};

    pub use std::sync::atomic::Ordering;

    fn hook() {
        if let Some(ctx) = current_ctx() {
            ctx.sched.op_point(ctx.id, Op::Atomic);
        }
    }

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Create a new atomic holding `value`.
                pub const fn new(value: $ty) -> $name {
                    $name {
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                /// Atomic load (a scheduling point inside a model).
                pub fn load(&self, order: Ordering) -> $ty {
                    hook();
                    self.inner.load(order)
                }

                /// Atomic store (a scheduling point inside a model).
                pub fn store(&self, value: $ty, order: Ordering) {
                    hook();
                    self.inner.store(value, order)
                }

                /// Atomic swap (a scheduling point inside a model).
                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    hook();
                    self.inner.swap(value, order)
                }

                /// Atomic compare-exchange (a scheduling point inside a model).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    hook();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Consume the atomic, returning the inner value.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! shim_atomic_int {
        ($name:ident) => {
            impl $name {
                /// Atomic add, returning the previous value (a scheduling
                /// point inside a model).
                pub fn fetch_add(
                    &self,
                    value: <Self as crate::sync::atomic::Primitive>::Int,
                    order: Ordering,
                ) -> <Self as crate::sync::atomic::Primitive>::Int {
                    hook();
                    self.inner.fetch_add(value, order)
                }

                /// Atomic subtract, returning the previous value (a
                /// scheduling point inside a model).
                pub fn fetch_sub(
                    &self,
                    value: <Self as crate::sync::atomic::Primitive>::Int,
                    order: Ordering,
                ) -> <Self as crate::sync::atomic::Primitive>::Int {
                    hook();
                    self.inner.fetch_sub(value, order)
                }

                /// Atomic max, returning the previous value (a scheduling
                /// point inside a model).
                pub fn fetch_max(
                    &self,
                    value: <Self as crate::sync::atomic::Primitive>::Int,
                    order: Ordering,
                ) -> <Self as crate::sync::atomic::Primitive>::Int {
                    hook();
                    self.inner.fetch_max(value, order)
                }
            }
        };
    }

    /// Maps each shimmed atomic to its primitive integer type.
    pub trait Primitive {
        /// The primitive the atomic wraps.
        type Int;
    }

    shim_atomic!(
        /// Shimmed `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    shim_atomic!(
        /// Shimmed `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    shim_atomic!(
        /// Shimmed `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    shim_atomic!(
        /// Shimmed `AtomicBool`.
        AtomicBool,
        AtomicBool,
        bool
    );

    impl Primitive for AtomicU64 {
        type Int = u64;
    }
    impl Primitive for AtomicU32 {
        type Int = u32;
    }
    impl Primitive for AtomicUsize {
        type Int = usize;
    }

    shim_atomic_int!(AtomicU64);
    shim_atomic_int!(AtomicU32);
    shim_atomic_int!(AtomicUsize);

    impl AtomicBool {
        /// Atomic logical-or, returning the previous value (a scheduling
        /// point inside a model).
        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            hook();
            self.inner.fetch_or(value, order)
        }
    }
}

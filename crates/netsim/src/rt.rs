//! Real transport: length-prefixed, checksummed frames over TCP.
//!
//! The same client/edge/cloud state machines that run on the simulator can
//! be deployed over actual sockets for live demos and loopback integration
//! tests. Connection handling is thread-per-connection with std
//! channels — appropriate for the handful of nodes in a CoIC deployment and
//! free of async-runtime dependencies (the guides recommend plain blocking
//! IO when you are not multiplexing thousands of connections).
//!
//! Wire format: `u32` big-endian payload length, `u32` big-endian CRC-32
//! (IEEE) of the payload, then the payload. Frames larger than
//! [`MAX_FRAME`] are rejected on both send and receive so a corrupt or
//! malicious peer cannot trigger unbounded allocation, and the receive
//! path allocates incrementally so a lying length prefix cannot reserve
//! more memory than the peer actually transmits.
//!
//! Fault tolerance: connections support read/write deadlines
//! ([`FrameConn::set_read_deadline`]), every error classifies into the
//! [`FaultError`] taxonomy, [`FrameServer`] shuts down gracefully (its
//! accept thread and live connections are torn down on drop), and
//! [`FaultProxy`] provides deterministic, seedable fault injection between
//! any client and server for chaos testing.

use bytes::Bytes;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a single frame's payload (256 MiB) — larger than any CoIC
/// message (the biggest are multi-megabyte 3D models) but small enough to
/// bound allocation on a corrupt length prefix.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Receive-path chunk size: the largest allocation made before any payload
/// byte has actually arrived.
const RECV_CHUNK: usize = 64 * 1024;

/// Frame header: length (4) + CRC-32 (4).
const HDR_LEN: usize = 8;

// --- CRC-32 (IEEE 802.3), table-driven ---------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, as carried in the frame header.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- error taxonomy ----------------------------------------------------

/// Coarse failure classification used by retry/fallback logic upstack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultError {
    /// A read or write deadline expired.
    Timeout,
    /// The peer closed or the connection otherwise broke.
    Closed,
    /// Payload failed its checksum.
    Corrupt,
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Timeout => write!(f, "timeout"),
            FaultError::Closed => write!(f, "closed"),
            FaultError::Corrupt => write!(f, "corrupt"),
            FaultError::Oversized => write!(f, "oversized"),
        }
    }
}

/// Errors surfaced by the frame transport.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// A read or write deadline expired. The stream may be mid-frame and
    /// must be considered desynchronized; reconnect rather than retrying
    /// on the same connection.
    Timeout,
    /// Payload bytes did not match the header checksum.
    Corrupt {
        /// Checksum the sender declared.
        expected: u32,
        /// Checksum of the bytes actually received.
        actual: u32,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized(u32),
}

impl FrameError {
    /// Classify into the coarse [`FaultError`] taxonomy.
    pub fn fault(&self) -> FaultError {
        match self {
            FrameError::Timeout => FaultError::Timeout,
            FrameError::Corrupt { .. } => FaultError::Corrupt,
            FrameError::Oversized(_) => FaultError::Oversized,
            FrameError::Closed => FaultError::Closed,
            FrameError::Io(e) => match e.kind() {
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => FaultError::Timeout,
                _ => FaultError::Closed,
            },
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Timeout => write!(f, "deadline expired"),
            FrameError::Corrupt { expected, actual } => {
                write!(f, "corrupt frame: crc {actual:#010x} != {expected:#010x}")
            }
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => FrameError::Timeout,
            _ => FrameError::Io(e),
        }
    }
}

// --- framed connection -------------------------------------------------

/// A framed, blocking TCP connection.
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Wrap an existing stream. Disables Nagle so small request/response
    /// frames are not delayed — CoIC descriptor queries are latency-bound.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(FrameConn { stream })
    }

    /// Connect to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// Connect with a bound on how long connection establishment may take.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Self> {
        Self::new(TcpStream::connect_timeout(addr, timeout)?)
    }

    /// Bound how long [`FrameConn::recv`] may block. `None` blocks forever.
    /// An expired deadline surfaces as [`FrameError::Timeout`] and leaves
    /// the stream desynchronized (a frame may be partially read).
    pub fn set_read_deadline(&self, deadline: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(deadline)
    }

    /// Bound how long [`FrameConn::send`] may block on a full socket
    /// buffer. `None` blocks forever.
    pub fn set_write_deadline(&self, deadline: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(deadline)
    }

    /// Clone the underlying socket so one thread can read while another
    /// writes.
    pub fn try_clone(&self) -> io::Result<FrameConn> {
        Ok(FrameConn {
            stream: self.stream.try_clone()?,
        })
    }

    /// Shut down both directions, unblocking any thread inside
    /// [`FrameConn::recv`].
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Send one frame.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        let len = payload.len();
        if len > MAX_FRAME as usize {
            return Err(FrameError::Oversized(len.min(u32::MAX as usize) as u32));
        }
        let mut hdr = [0u8; HDR_LEN];
        hdr[..4].copy_from_slice(&(len as u32).to_be_bytes());
        hdr[4..].copy_from_slice(&crc32(payload).to_be_bytes());
        self.stream.write_all(&hdr)?;
        self.stream.write_all(payload)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receive one frame. Returns [`FrameError::Closed`] on clean EOF at a
    /// frame boundary, [`FrameError::Timeout`] if a read deadline expires,
    /// and [`FrameError::Corrupt`] on checksum mismatch.
    pub fn recv(&mut self) -> Result<Bytes, FrameError> {
        let mut hdr = [0u8; HDR_LEN];
        match self.stream.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_be_bytes(hdr[..4].try_into().unwrap());
        let expected = u32::from_be_bytes(hdr[4..].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        // Allocate incrementally: a lying length prefix can only cost
        // RECV_CHUNK bytes beyond what the peer actually transmits.
        let len = len as usize;
        let mut buf = Vec::with_capacity(len.min(RECV_CHUNK));
        while buf.len() < len {
            let old = buf.len();
            let n = (len - old).min(RECV_CHUNK);
            buf.resize(old + n, 0);
            if let Err(e) = self.stream.read_exact(&mut buf[old..]) {
                return Err(e.into());
            }
        }
        let actual = crc32(&buf);
        if actual != expected {
            return Err(FrameError::Corrupt { expected, actual });
        }
        Ok(Bytes::from(buf))
    }

    /// Local socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Remote socket address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }
}

// --- sans-IO framing ---------------------------------------------------

/// Encode one frame (header + payload) into a fresh buffer without touching
/// a socket. This is the wire image [`FrameConn::send`] produces; the
/// event-loop driver queues these for coalesced writes.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let len = payload.len();
    if len > MAX_FRAME as usize {
        return Err(FrameError::Oversized(len.min(u32::MAX as usize) as u32));
    }
    let mut out = Vec::with_capacity(HDR_LEN + len);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental, sans-IO frame decoder.
///
/// Feed raw bytes in whatever fragments the transport produced
/// ([`FrameDecoder::push`]) and pull complete frames out
/// ([`FrameDecoder::next_frame`]). The decoder enforces the same
/// invariants as [`FrameConn::recv`] — [`MAX_FRAME`] before any payload
/// allocation, CRC-32 verification on completion — and buffers at most one
/// partial frame plus any not-yet-consumed trailing bytes, so a lying
/// length prefix cannot reserve more memory than the peer actually
/// transmits ([`RECV_CHUNK`]-granular reservation).
///
/// A decoder error is sticky: the stream is desynchronized and the
/// connection must be dropped, matching the blocking path's
/// reconnect-on-error contract.
#[derive(Default)]
pub struct FrameDecoder {
    /// Unconsumed raw bytes (header fragments and payload tails).
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed prefix is compacted lazily.
    pos: usize,
    /// Header of the frame currently being assembled, if parsed.
    pending: Option<(usize, u32)>,
    /// Set once a framing error is surfaced; further pushes are rejected.
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder at a frame boundary with no buffered bytes.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed raw transport bytes into the decoder.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps steady-state memory at one partial
        // frame rather than the whole connection history.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= RECV_CHUNK) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete frame, if one is available.
    ///
    /// Returns `Ok(None)` when more bytes are needed, and a sticky
    /// [`FrameError`] ([`FrameError::Oversized`] or [`FrameError::Corrupt`])
    /// when the stream is unrecoverable.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Closed);
        }
        if self.pending.is_none() {
            if self.buffered() < HDR_LEN {
                return Ok(None);
            }
            let hdr = &self.buf[self.pos..self.pos + HDR_LEN];
            let len = u32::from_be_bytes(hdr[..4].try_into().unwrap());
            let expected = u32::from_be_bytes(hdr[4..].try_into().unwrap());
            if len > MAX_FRAME {
                self.poisoned = true;
                return Err(FrameError::Oversized(len));
            }
            self.pos += HDR_LEN;
            self.pending = Some((len as usize, expected));
        }
        let (len, expected) = self.pending.unwrap();
        if self.buffered() < len {
            return Ok(None);
        }
        let payload = Bytes::from(self.buf[self.pos..self.pos + len].to_vec());
        self.pos += len;
        self.pending = None;
        let actual = crc32(&payload);
        if actual != expected {
            self.poisoned = true;
            return Err(FrameError::Corrupt { expected, actual });
        }
        Ok(Some(payload))
    }
}

// --- shared listener plumbing ------------------------------------------

/// Registry of live per-connection sockets plus a stop flag, shared
/// between an accept loop and `shutdown()`.
struct ListenerShared {
    stop: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ListenerShared {
    fn new() -> Arc<Self> {
        Arc::new(ListenerShared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
        })
    }

    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().unwrap().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().unwrap().remove(&id);
    }

    /// Set the stop flag, sever every live connection, and poke the accept
    /// loop awake with a throwaway connection.
    fn initiate_shutdown(&self, addr: SocketAddr) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, conn) in self.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    }
}

/// A running frame server. Dropping the handle (or calling
/// [`FrameServer::shutdown`]) stops the accept loop, severs every live
/// connection, and joins the accept thread, so a dropped server really is
/// gone — chaos tests rely on that to kill an edge mid-workload.
pub struct FrameServer {
    addr: SocketAddr,
    shared: Arc<ListenerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Bind `addr` and serve each connection on its own thread with
    /// `handler`. The handler receives each inbound frame and returns the
    /// response frame to send back (simple RPC). Returning `None` closes
    /// the connection.
    pub fn spawn<A, F>(addr: A, handler: F) -> io::Result<FrameServer>
    where
        A: ToSocketAddrs,
        F: Fn(Bytes) -> Option<Vec<u8>> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let handler = Arc::new(handler);
        let shared = ListenerShared::new();
        let shared2 = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("coic-frame-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if shared2.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { break };
                    let Some(id) = shared2.register(&stream) else {
                        continue;
                    };
                    let h = handler.clone();
                    let sh = shared2.clone();
                    let _ = std::thread::Builder::new()
                        .name("coic-frame-conn".into())
                        .spawn(move || {
                            if let Ok(mut fc) = FrameConn::new(stream) {
                                while let Ok(frame) = fc.recv() {
                                    match h(frame) {
                                        Some(resp) => {
                                            if fc.send(&resp).is_err() {
                                                break;
                                            }
                                        }
                                        None => break,
                                    }
                                }
                            }
                            sh.deregister(id);
                        });
                }
            })?;
        Ok(FrameServer {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, sever live connections, and join the accept thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            self.shared.initiate_shutdown(self.addr);
            let _ = t.join();
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// --- deterministic fault injection -------------------------------------

/// What [`FaultProxy`] may do to traffic, expressed as per-frame
/// probabilities evaluated by a deterministic hash of
/// `(seed, connection, direction, frame index)` — two runs with the same
/// plan and workload shape make identical decisions regardless of thread
/// scheduling.
///
/// At most one fault fires per frame, checked in priority order:
/// kill > drop > corrupt > delay.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability a frame is silently dropped (the receiver must rely on
    /// its read deadline).
    pub drop_frame: f64,
    /// Probability a frame's payload is truncated: the declared length is
    /// kept but the second half of the payload is zero-filled, so framing
    /// stays synchronized and the receiver sees [`FrameError::Corrupt`].
    pub truncate_frame: f64,
    /// Probability a frame is delayed by [`FaultPlan::delay_ms`] before
    /// forwarding.
    pub delay_frame: f64,
    /// Delay applied to delayed frames.
    pub delay_ms: u64,
    /// Probability the whole connection is severed at this frame.
    pub kill_conn: f64,
    /// Blackhole: at client→server frame index `.0` of each connection,
    /// stall forwarding in that direction for `.1` milliseconds (models a
    /// routing brownout; TCP delivers everything afterwards).
    pub blackhole: Option<(u64, u64)>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_frame: 0.0,
            truncate_frame: 0.0,
            delay_frame: 0.0,
            delay_ms: 0,
            kill_conn: 0.0,
            blackhole: None,
        }
    }
}

impl FaultPlan {
    /// A plan that forwards everything untouched.
    pub fn transparent(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }
}

/// Event counters for a [`FaultProxy`]. Snapshot with
/// [`FaultStats::snapshot`]; equal snapshots across runs demonstrate
/// deterministic injection.
#[derive(Default)]
pub struct FaultStats {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
    conns_killed: AtomicU64,
    blackholes: AtomicU64,
    conns_opened: AtomicU64,
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Frames forwarded unmodified (delayed frames count here too).
    pub forwarded: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames forwarded with a corrupted payload.
    pub truncated: u64,
    /// Frames forwarded late.
    pub delayed: u64,
    /// Connections severed mid-stream.
    pub conns_killed: u64,
    /// Blackhole stalls applied.
    pub blackholes: u64,
    /// Connections accepted by the proxy.
    pub conns_opened: u64,
}

impl FaultStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            forwarded: self.forwarded.load(Ordering::SeqCst),
            dropped: self.dropped.load(Ordering::SeqCst),
            truncated: self.truncated.load(Ordering::SeqCst),
            delayed: self.delayed.load(Ordering::SeqCst),
            conns_killed: self.conns_killed.load(Ordering::SeqCst),
            blackholes: self.blackholes.load(Ordering::SeqCst),
            conns_opened: self.conns_opened.load(Ordering::SeqCst),
        }
    }
}

/// Fault decision for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    Forward,
    Drop,
    Truncate,
    Delay,
    Kill,
}

/// SplitMix64-style avalanche over the decision coordinates; yields a
/// uniform f64 in [0, 1).
fn fault_roll(seed: u64, conn: u64, dir: u64, frame: u64) -> f64 {
    let mut z = seed
        .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(dir.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(frame.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    fn decide(&self, conn: u64, dir: u64, frame: u64) -> FaultAction {
        let roll = fault_roll(self.seed, conn, dir, frame);
        // One roll, fixed priority bands: [0,kill) kill, [kill,kill+drop)
        // drop, and so on. A single roll keeps decisions independent of
        // evaluation order.
        let mut edge = self.kill_conn;
        if roll < edge {
            return FaultAction::Kill;
        }
        edge += self.drop_frame;
        if roll < edge {
            return FaultAction::Drop;
        }
        edge += self.truncate_frame;
        if roll < edge {
            return FaultAction::Truncate;
        }
        edge += self.delay_frame;
        if roll < edge {
            return FaultAction::Delay;
        }
        FaultAction::Forward
    }
}

/// A deterministic fault-injecting TCP proxy operating at frame
/// granularity. Point a client at [`FaultProxy::local_addr`] and the proxy
/// relays to `upstream`, applying the [`FaultPlan`] to each frame in each
/// direction independently.
pub struct FaultProxy {
    addr: SocketAddr,
    stats: Arc<FaultStats>,
    shared: Arc<ListenerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral local port and relay to `upstream` under
    /// `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        let stats = Arc::new(FaultStats::default());
        let shared = ListenerShared::new();
        let (shared2, stats2) = (shared.clone(), stats.clone());
        let accept_thread = std::thread::Builder::new()
            .name("coic-fault-accept".into())
            .spawn(move || {
                let mut conn_index = 0u64;
                for conn in listener.incoming() {
                    if shared2.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { break };
                    let Ok(server) = TcpStream::connect(upstream) else {
                        // Upstream is down: drop the client so it sees
                        // Closed rather than a hang.
                        continue;
                    };
                    stats2.conns_opened.fetch_add(1, Ordering::SeqCst);
                    let idx = conn_index;
                    conn_index += 1;
                    for (dir, from, to) in [
                        (0u64, client.try_clone(), server.try_clone()),
                        (1u64, server.try_clone(), client.try_clone()),
                    ] {
                        let (Ok(from), Ok(to)) = (from, to) else {
                            continue;
                        };
                        let reg = shared2.register(&from);
                        let sh = shared2.clone();
                        let (plan, stats) = (plan.clone(), stats2.clone());
                        let _ = std::thread::Builder::new()
                            .name("coic-fault-pump".into())
                            .spawn(move || {
                                pump_frames(from, to, plan, idx, dir, stats);
                                if let Some(id) = reg {
                                    sh.deregister(id);
                                }
                            });
                    }
                }
            })?;
        Ok(FaultProxy {
            addr: local,
            stats,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live event counters.
    pub fn stats(&self) -> FaultStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop the proxy and sever all relayed connections. Idempotent; also
    /// invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            self.shared.initiate_shutdown(self.addr);
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read a raw frame (header + payload) without checksum validation — the
/// proxy relays opaque bytes so it can corrupt them.
fn read_raw_frame(stream: &mut TcpStream) -> io::Result<(u32, u32, Vec<u8>)> {
    let mut hdr = [0u8; HDR_LEN];
    stream.read_exact(&mut hdr)?;
    let len = u32::from_be_bytes(hdr[..4].try_into().unwrap());
    let crc = u32::from_be_bytes(hdr[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized"));
    }
    let len = len as usize;
    let mut buf = Vec::with_capacity(len.min(RECV_CHUNK));
    while buf.len() < len {
        let old = buf.len();
        let n = (len - old).min(RECV_CHUNK);
        buf.resize(old + n, 0);
        stream.read_exact(&mut buf[old..])?;
    }
    Ok((len as u32, crc, buf))
}

fn write_raw_frame(stream: &mut TcpStream, len: u32, crc: u32, payload: &[u8]) -> io::Result<()> {
    let mut hdr = [0u8; HDR_LEN];
    hdr[..4].copy_from_slice(&len.to_be_bytes());
    hdr[4..].copy_from_slice(&crc.to_be_bytes());
    stream.write_all(&hdr)?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Relay frames `from` → `to`, applying `plan` per frame.
fn pump_frames(
    mut from: TcpStream,
    mut to: TcpStream,
    plan: FaultPlan,
    conn: u64,
    dir: u64,
    stats: Arc<FaultStats>,
) {
    let mut frame_idx = 0u64;
    while let Ok((len, crc, mut payload)) = read_raw_frame(&mut from) {
        if dir == 0 {
            if let Some((at, ms)) = plan.blackhole {
                if frame_idx == at {
                    stats.blackholes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
        match plan.decide(conn, dir, frame_idx) {
            FaultAction::Kill => {
                stats.conns_killed.fetch_add(1, Ordering::SeqCst);
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                break;
            }
            FaultAction::Drop => {
                stats.dropped.fetch_add(1, Ordering::SeqCst);
            }
            FaultAction::Truncate => {
                stats.truncated.fetch_add(1, Ordering::SeqCst);
                let half = payload.len() / 2;
                for b in &mut payload[half..] {
                    *b = 0;
                }
                // Keep the original CRC: unless the payload was empty the
                // receiver now sees a checksum mismatch.
                if write_raw_frame(&mut to, len, crc, &payload).is_err() {
                    break;
                }
            }
            FaultAction::Delay => {
                stats.delayed.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(plan.delay_ms));
                if write_raw_frame(&mut to, len, crc, &payload).is_err() {
                    break;
                }
                stats.forwarded.fetch_add(1, Ordering::SeqCst);
            }
            FaultAction::Forward => {
                if write_raw_frame(&mut to, len, crc, &payload).is_err() {
                    break;
                }
                stats.forwarded.fetch_add(1, Ordering::SeqCst);
            }
        }
        frame_idx += 1;
    }
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_reassembles_frames_across_arbitrary_fragmentation() {
        let frames: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![7u8; 200_000]];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f).unwrap());
        }
        // 1-byte trickle.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f.to_vec());
            }
        }
        assert_eq!(got, frames);
        // One jumbo push.
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f.to_vec());
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_and_corrupt_and_stays_poisoned() {
        let mut dec = FrameDecoder::new();
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        hdr.extend_from_slice(&0u32.to_be_bytes());
        dec.push(&hdr);
        assert!(matches!(dec.next_frame(), Err(FrameError::Oversized(_))));
        assert!(dec.next_frame().is_err());

        let mut dec = FrameDecoder::new();
        let mut frame = encode_frame(b"payload").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        dec.push(&frame);
        assert!(matches!(dec.next_frame(), Err(FrameError::Corrupt { .. })));
    }

    #[test]
    fn encode_frame_matches_frame_conn_wire_image() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| Some(frame.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"wire image probe").unwrap();
        let echoed = conn.recv().unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(&echoed).unwrap());
        assert_eq!(dec.next_frame().unwrap().unwrap(), echoed);
    }

    #[test]
    fn echo_round_trip() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| Some(frame.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"hello coic").unwrap();
        let back = conn.recv().unwrap();
        assert_eq!(&back[..], b"hello coic");
    }

    #[test]
    fn multiple_frames_in_order() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| {
            let mut v = frame.to_vec();
            v.push(b'!');
            Some(v)
        })
        .unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        for i in 0..50u8 {
            conn.send(&[i]).unwrap();
            let back = conn.recv().unwrap();
            assert_eq!(&back[..], &[i, b'!']);
        }
    }

    #[test]
    fn empty_frame_is_legal() {
        let server = FrameServer::spawn("127.0.0.1:0", |frame| {
            assert!(frame.is_empty());
            Some(vec![1, 2, 3])
        })
        .unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"").unwrap();
        assert_eq!(&conn.recv().unwrap()[..], &[1, 2, 3]);
    }

    #[test]
    fn server_closing_yields_closed() {
        let server = FrameServer::spawn("127.0.0.1:0", |_frame| None).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        conn.send(b"bye").unwrap();
        match conn.recv() {
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => {}
            other => panic!("expected close, got {other:?}"),
        }
    }

    #[test]
    fn oversized_send_rejected_locally() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        // Don't allocate 256 MiB; fake it with a small-but-over-limit check
        // via the length validation path by constructing a vec of exactly
        // MAX_FRAME + 1 would be expensive — instead validate the error type
        // with a crafted header through a raw socket.
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        // Receiving side: our own client should reject a bogus header too.
        conn.send(b"ok").unwrap();
        let _ = conn.recv().unwrap();
    }

    #[test]
    fn oversized_header_cannot_cause_huge_allocation() {
        // A peer that declares an in-range but dishonest length only costs
        // RECV_CHUNK of allocation before the read deadline fires.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Declare 64 MiB but send only 10 bytes, then stall.
            let mut hdr = [0u8; HDR_LEN];
            hdr[..4].copy_from_slice(&(64u32 * 1024 * 1024).to_be_bytes());
            s.write_all(&hdr).unwrap();
            s.write_all(&[0u8; 10]).unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let mut conn = FrameConn::connect(addr).unwrap();
        conn.set_read_deadline(Some(Duration::from_millis(50)))
            .unwrap();
        match conn.recv() {
            Err(FrameError::Timeout) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn read_deadline_yields_timeout() {
        // A server that never answers: recv must not hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (_s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let mut conn = FrameConn::connect(addr).unwrap();
        conn.set_read_deadline(Some(Duration::from_millis(40)))
            .unwrap();
        let start = std::time::Instant::now();
        match conn.recv() {
            Err(e @ FrameError::Timeout) => assert_eq!(e.fault(), FaultError::Timeout),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "deadline ignored"
        );
        hold.join().unwrap();
    }

    #[test]
    fn corrupt_payload_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let payload = b"immersive";
            let mut hdr = [0u8; HDR_LEN];
            hdr[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
            hdr[4..].copy_from_slice(&(crc32(payload) ^ 0xFFFF).to_be_bytes());
            s.write_all(&hdr).unwrap();
            s.write_all(payload).unwrap();
        });
        let mut conn = FrameConn::connect(addr).unwrap();
        match conn.recv() {
            Err(e @ FrameError::Corrupt { .. }) => assert_eq!(e.fault(), FaultError::Corrupt),
            other => panic!("expected corrupt, got {other:?}"),
        }
        writer.join().unwrap();
    }

    #[test]
    fn large_frame_round_trips() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let mut conn = FrameConn::connect(server.local_addr()).unwrap();
        let big = vec![0xabu8; 3 * 1024 * 1024];
        conn.send(&big).unwrap();
        let back = conn.recv().unwrap();
        assert_eq!(back.len(), big.len());
        assert!(back.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn concurrent_clients() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut conn = FrameConn::connect(addr).unwrap();
                    for j in 0..20u8 {
                        let msg = [i as u8, j];
                        conn.send(&msg).unwrap();
                        assert_eq!(&conn.recv().unwrap()[..], &msg);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn graceful_shutdown_unblocks_clients_and_frees_port() {
        let mut server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let addr = server.local_addr();
        let mut conn = FrameConn::connect(addr).unwrap();
        conn.send(b"ping").unwrap();
        conn.recv().unwrap();
        // A blocked reader must be unblocked by shutdown, not hang.
        let reader = std::thread::spawn(move || conn.recv().is_err());
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        assert!(reader.join().unwrap(), "reader should observe an error");
        // The port is free again: a new server can bind it.
        drop(server);
        let rebound = FrameServer::spawn(addr, |f| Some(f.to_vec()));
        assert!(rebound.is_ok(), "port not released after shutdown");
    }

    #[test]
    fn drop_kills_server() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let addr = server.local_addr();
        drop(server);
        // New connections are refused (or immediately severed).
        match FrameConn::connect(addr) {
            Err(_) => {}
            Ok(mut c) => {
                c.set_read_deadline(Some(Duration::from_millis(100)))
                    .unwrap();
                let _ = c.send(b"x");
                assert!(c.recv().is_err(), "dead server answered");
            }
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn transparent_proxy_relays() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::transparent(1)).unwrap();
        let mut conn = FrameConn::connect(proxy.local_addr()).unwrap();
        for i in 0..10u8 {
            conn.send(&[i; 5]).unwrap();
            assert_eq!(&conn.recv().unwrap()[..], &[i; 5]);
        }
        let s = proxy.stats();
        assert_eq!(s.forwarded, 20); // 10 each way
        assert_eq!(s.dropped + s.truncated + s.conns_killed, 0);
    }

    #[test]
    fn proxy_truncation_surfaces_as_corrupt() {
        let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
        let plan = FaultPlan {
            seed: 7,
            truncate_frame: 1.0,
            ..FaultPlan::default()
        };
        let proxy = FaultProxy::spawn(server.local_addr(), plan).unwrap();
        let mut conn = FrameConn::connect(proxy.local_addr()).unwrap();
        // Every frame is corrupted, so the server drops the connection and
        // the client sees Corrupt or Closed — never a clean response.
        let _ = conn.send(b"immersion on the edge");
        match conn.recv() {
            Err(e) => assert!(
                matches!(e.fault(), FaultError::Corrupt | FaultError::Closed),
                "unexpected {e:?}"
            ),
            Ok(_) => panic!("corrupted traffic produced a clean reply"),
        }
        assert!(proxy.stats().truncated >= 1);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        // Two identical runs against the same plan must produce identical
        // event counts.
        let run = || {
            let server = FrameServer::spawn("127.0.0.1:0", |f| Some(f.to_vec())).unwrap();
            let plan = FaultPlan {
                seed: 42,
                drop_frame: 0.2,
                delay_frame: 0.2,
                delay_ms: 1,
                ..FaultPlan::default()
            };
            let proxy = FaultProxy::spawn(server.local_addr(), plan).unwrap();
            let mut conn = FrameConn::connect(proxy.local_addr()).unwrap();
            conn.set_read_deadline(Some(Duration::from_millis(100)))
                .unwrap();
            let mut answered = 0u32;
            for i in 0..40u8 {
                if conn.send(&[i]).is_err() {
                    break;
                }
                if conn.recv().is_ok() {
                    answered += 1;
                }
            }
            (answered, proxy.stats())
        };
        let (a1, s1) = run();
        let (a2, s2) = run();
        assert_eq!(s1, s2, "fault decisions diverged between runs");
        assert_eq!(a1, a2);
        assert!(s1.dropped > 0, "plan should have dropped something");
    }
}

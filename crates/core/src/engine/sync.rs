//! Sync-primitive facade for the orchestration engine.
//!
//! Normal builds re-export `parking_lot`'s `Mutex` and `std` atomics —
//! identical codegen to using them directly. Under the `model-check`
//! feature the same names resolve to the in-tree `loom` shim, making
//! every lock and atomic operation in [`super::breaker`] and
//! [`super::flight`] a scheduling point for the exhaustive interleaving
//! explorer (`crates/core/tests/model.rs`). Engine code must reach locks
//! and atomics through this module so the model checker sees every
//! synchronization point.

#[cfg(not(feature = "model-check"))]
pub(crate) use parking_lot::Mutex;
#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "model-check")]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "model-check")]
pub(crate) use loom::sync::Mutex;
